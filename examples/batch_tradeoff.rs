//! The batch-size / contig-quality / memory-footprint trade-off (§4.4, Table 1 and
//! the GPU-capacity analysis of §6.6).
//!
//! Processing the reads in smaller batches shrinks the peak memory footprint
//! (that is what lets NMP-PaK assemble a full genome on one node, and what a GPU's
//! 40–80 GB forces), but batches that are too small fragment the assembly and
//! degrade N50.
//!
//! ```text
//! cargo run --release --example batch_tradeoff
//! ```

use nmp_pak::core::workload::Workload;
use nmp_pak::pakman::{BatchAssembler, PakmanConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::synthesize("batch-study", 120_000, 35.0, 0.002, 99)?;
    println!(
        "workload: genome {} bp, {} reads\n",
        workload.genome_length().unwrap_or(0),
        workload.reads.len()
    );

    let config = PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        threads: 4,
        ..PakmanConfig::default()
    };

    println!(
        "{:<12}{:>10}{:>14}{:>16}{:>20}",
        "batch size", "N50", "contigs", "total bases", "peak batch footprint"
    );
    for fraction in [0.01, 0.03, 0.05, 0.10, 0.25, 1.0] {
        let output = BatchAssembler::new(config, fraction).assemble(&workload.reads)?;
        println!(
            "{:<12}{:>10}{:>14}{:>16}{:>17} MiB",
            format!("{:.0}%", fraction * 100.0),
            output.stats.n50,
            output.stats.contig_count,
            output.stats.total_length,
            output.peak_batch_footprint.peak_bytes() / (1 << 20),
        );
    }

    println!(
        "\nSmaller batches cut the peak footprint roughly in proportion, but below a few\n\
         percent of the input the contig quality collapses — the paper's Table 1 shows the\n\
         same collapse at the batch sizes an 80 GB GPU would force for a human genome."
    );
    Ok(())
}
