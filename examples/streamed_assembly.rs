//! File-streamed assembly: generate a FASTQ file, then assemble it through the
//! bounded-memory [`ReadSource`] ingestion path with the k-deep pipelined batch
//! schedule — the full read set is never materialized.
//!
//! This is the CI smoke test for the streaming API: it exits non-zero if the
//! streamed assembly diverges from the in-memory path or the in-flight read
//! budget is not respected.
//!
//! ```text
//! cargo run --release --example streamed_assembly
//! ```

use nmp_pak::genome::fasta::write_fastq;
use nmp_pak::genome::{
    FastaFastqSource, ReadChunk, ReadSimulator, ReferenceGenome, SequencerConfig,
};
use nmp_pak::pakman::{BatchAssembler, BatchSchedule, PakmanConfig};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Sequence a synthetic 60 kbp genome at 25x and persist it as FASTQ —
    //    the stand-in for a real sequencing run's output file.
    let genome = ReferenceGenome::builder().length(60_000).seed(41).build()?;
    let reads = ReadSimulator::new(SequencerConfig {
        coverage: 25.0,
        substitution_error_rate: 0.001,
        seed: 17,
        ..SequencerConfig::default()
    })
    .simulate(&genome)?;
    let fastq_path = std::env::temp_dir().join("nmp_pak_streamed_assembly.fastq");
    write_fastq(BufWriter::new(File::create(&fastq_path)?), &reads)?;
    let file_bytes = std::fs::metadata(&fastq_path)?.len();
    println!(
        "wrote {} reads ({} KB FASTQ) to {}",
        reads.len(),
        file_bytes / 1024,
        fastq_path.display()
    );

    // 2. Stream the file back through the batch scheduler: 8 batches of
    //    FASTQ records, fronts of up to 3 batches overlapping each compaction,
    //    and at most ~2 batches of reads admitted at any instant. The
    //    bit-identity check against the slice path below compares the same
    //    batch boundaries, so the read count must split into 8 equal chunks.
    assert_eq!(
        reads.len() % 8,
        0,
        "workload must divide into 8 equal batches"
    );
    let chunk_reads = reads.len() / 8;
    let chunk_bytes = ReadChunk::Borrowed(&reads[..chunk_reads]).approx_read_bytes();
    let budget = 2 * chunk_bytes;
    let config = PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 100,
        threads: 2,
        ..PakmanConfig::default()
    };
    let assembler = BatchAssembler::with_schedule(
        config,
        1.0 / 8.0,
        BatchSchedule::Pipelined {
            depth: 3,
            max_inflight_bytes: Some(budget),
        },
    );
    let source = FastaFastqSource::open(&fastq_path)?.with_chunk_reads(chunk_reads);
    let streamed = assembler.assemble_source(source)?;
    println!(
        "streamed: {} batches, {} contigs, N50 = {}, total {} bases",
        streamed.batch_compaction.len(),
        streamed.stats.contig_count,
        streamed.stats.n50,
        streamed.stats.total_length
    );
    println!(
        "in-flight reads: peak {} KB vs budget {} KB (whole set ~{} KB)",
        streamed.peak_inflight_read_bytes / 1024,
        budget / 1024,
        ReadChunk::Borrowed(&reads[..]).approx_read_bytes() / 1024
    );

    // 3. The smoke assertions CI relies on: bounded ingestion and bit-identical
    //    output to the in-memory slice path over the same batch boundaries.
    assert!(!streamed.contigs.is_empty(), "assembly produced no contigs");
    assert!(
        streamed.peak_inflight_read_bytes <= budget + chunk_bytes,
        "in-flight reads {} exceeded budget {budget} + one staged chunk {chunk_bytes}",
        streamed.peak_inflight_read_bytes
    );
    let in_memory = assembler.assemble(&reads)?;
    assert_eq!(
        streamed.contigs, in_memory.contigs,
        "streamed and in-memory assemblies must be bit-identical"
    );
    println!("ok: bounded ingestion, bit-identical to the in-memory path");

    std::fs::remove_file(&fastq_path).ok();
    Ok(())
}
