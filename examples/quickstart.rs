//! Quickstart: assemble a small synthetic genome end to end and simulate the
//! Iterative Compaction phase on the NMP-PaK hardware — then do the same from
//! a FASTQ file through the streaming `ReadSource` ingestion path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nmp_pak::core::assembler::NmpPakAssembler;
use nmp_pak::core::backend::BackendId;
use nmp_pak::core::workload::Workload;
use nmp_pak::genome::{fasta::write_fastq, FastaFastqSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a workload: a synthetic 100 kbp genome sequenced at 30x with 100 bp reads.
    let workload = Workload::small(42)?;
    println!(
        "workload: {} — genome {} bp, {} reads",
        workload.name,
        workload.genome_length().unwrap_or(0),
        workload.reads.len()
    );

    // 2. Run the software pipeline and simulate compaction on the NMP hardware.
    let assembler = NmpPakAssembler::default();
    let run = assembler.run(&workload, BackendId::NMP_PAK)?;

    // 3. Assembly quality.
    let stats = &run.assembly.stats;
    println!(
        "assembly: {} contigs, {} bases total, N50 = {}, largest = {}",
        stats.contig_count, stats.total_length, stats.n50, stats.largest_contig
    );
    println!(
        "compaction: {} iterations, {} -> {} MacroNodes ({}x reduction)",
        run.assembly.compaction.iteration_count(),
        run.assembly.compaction.initial_nodes,
        run.assembly.compaction.final_nodes,
        run.assembly.compaction.reduction_factor() as u64,
    );

    // 4. Hardware results for the accelerated phase.
    let hw = &run.backend_result;
    println!(
        "NMP-PaK compaction: {:.3} ms simulated, {:.1}% of peak DRAM bandwidth",
        hw.runtime_ns / 1e6,
        hw.bandwidth_utilization() * 100.0
    );
    if let Some(comm) = hw.comm {
        println!(
            "TransferNode routing: {:.1}% intra-DIMM, {:.1}% inter-DIMM",
            comm.intra_dimm_fraction() * 100.0,
            comm.inter_dimm_fraction() * 100.0
        );
    }

    // 5. Compare against the CPU baseline on the same trace.
    let cpu = assembler.run(&workload, BackendId::CPU_BASELINE)?;
    println!(
        "speedup over the CPU baseline: {:.1}x",
        cpu.backend_result.runtime_ns / hw.runtime_ns
    );

    // 6. The same assembly, file-streamed: persist the reads as FASTQ and run
    //    them back through the streaming ReadSource ingestion path (records are
    //    parsed incrementally — a real sequencing run's file works the same way).
    let fastq_path = std::env::temp_dir().join("nmp_pak_quickstart.fastq");
    write_fastq(
        std::io::BufWriter::new(std::fs::File::create(&fastq_path)?),
        &workload.reads,
    )?;
    let from_file =
        assembler.run_source(FastaFastqSource::open(&fastq_path)?, BackendId::NMP_PAK)?;
    println!(
        "file-streamed assembly from {}: {} contigs, N50 = {} (identical to in-memory: {})",
        fastq_path.display(),
        from_file.assembly.stats.contig_count,
        from_file.assembly.stats.n50,
        from_file.assembly.contigs == run.assembly.contigs
    );
    std::fs::remove_file(&fastq_path).ok();
    Ok(())
}
