//! Head-to-head backend comparison on one workload: every execution configuration of
//! Fig. 12 (CPU baseline with/without software optimizations, GPU, CPU-PaK, NMP-PaK
//! and the ideal variants) replaying the same Iterative Compaction trace.
//!
//! ```text
//! cargo run --release --example nmp_vs_cpu
//! ```

use nmp_pak::core::assembler::NmpPakAssembler;
use nmp_pak::core::backend::BackendId;
use nmp_pak::core::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::small(7)?;
    let assembler = NmpPakAssembler::default();
    let (assembly, results) = assembler.run_all_backends(&workload)?;

    println!(
        "workload: {} bp genome, {} reads; compaction {} iterations over {} MacroNodes\n",
        workload.genome_length().unwrap_or(0),
        workload.reads.len(),
        assembly.compaction.iteration_count(),
        assembly.compaction.initial_nodes
    );

    let baseline = results
        .iter()
        .find(|r| r.backend == BackendId::CPU_BASELINE)
        .expect("baseline simulated");

    println!(
        "{:<22}{:>14}{:>12}{:>12}{:>12}",
        "backend", "runtime (ms)", "speedup", "BW util", "GB moved"
    );
    for result in &results {
        println!(
            "{:<22}{:>14.3}{:>11.2}x{:>11.1}%{:>12.3}",
            result.label,
            result.runtime_ns / 1e6,
            result.speedup_over(baseline),
            result.bandwidth_utilization() * 100.0,
            result.traffic.total_bytes() as f64 / 1e9,
        );
    }

    let nmp = results
        .iter()
        .find(|r| r.backend == BackendId::NMP_PAK)
        .expect("NMP simulated");
    if let Some(comm) = nmp.comm {
        println!(
            "\nNMP TransferNode routing: {:.1}% same PE, {:.1}% cross-PE same DIMM, {:.1}% cross-DIMM",
            100.0 * comm.same_pe as f64 / comm.total().max(1) as f64,
            100.0 * comm.cross_pe_same_dimm as f64 / comm.total().max(1) as f64,
            100.0 * comm.cross_dimm as f64 / comm.total().max(1) as f64,
        );
    }
    Ok(())
}
