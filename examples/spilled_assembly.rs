//! External-memory assembly: generate a FASTQ file, stream it back through the
//! double-buffered [`PrefetchSource`] adapter, and count k-mers under a fixed
//! resident-byte budget — the counter spills sorted runs to disk and merges
//! them back, so the workload size no longer bounds the counting RAM.
//!
//! This is the CI smoke test for the spill path: it exits non-zero if the
//! budget-capped assembly diverges from the unconstrained in-memory run, if
//! the budget produced no disk traffic, or if the contig stream written by
//! [`write_contigs_fasta`] disagrees with the collected contigs.
//!
//! ```text
//! cargo run --release --example spilled_assembly
//! NMP_PAK_SPILL_GENOME_LENGTH=100000000 \
//!     cargo run --release --example spilled_assembly   # the 100 Mbp+ workload
//! NMP_PAK_SPILL_BUDGET_BYTES=65536 \
//!     cargo run --release --example spilled_assembly   # tiny cap, heavy spilling
//! ```

use nmp_pak::genome::fasta::write_fastq;
use nmp_pak::genome::{
    FastaFastqSource, PrefetchSource, ReadSimulator, ReadSource, ReferenceGenome, SequencerConfig,
};
use nmp_pak::pakman::{write_contigs_fasta, PakmanAssembler, PakmanConfig, SpillConfig};
use std::fs::File;
use std::io::BufWriter;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} must be a number"))
        })
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Sequence a synthetic genome at 25x and persist it as FASTQ. The
    //    default 200 kbp keeps the smoke run fast; NMP_PAK_SPILL_GENOME_LENGTH
    //    scales the same flow to the paper's 100 Mbp+ regime.
    let genome_length = env_u64("NMP_PAK_SPILL_GENOME_LENGTH", 200_000) as usize;
    let budget_bytes = env_u64("NMP_PAK_SPILL_BUDGET_BYTES", 512 * 1024);
    let genome = ReferenceGenome::builder()
        .length(genome_length)
        .seed(83)
        .build()?;
    let reads = ReadSimulator::new(SequencerConfig {
        coverage: 25.0,
        substitution_error_rate: 0.001,
        seed: 29,
        ..SequencerConfig::default()
    })
    .simulate(&genome)?;
    let fastq_path = std::env::temp_dir().join("nmp_pak_spilled_assembly.fastq");
    write_fastq(BufWriter::new(File::create(&fastq_path)?), &reads)?;
    println!(
        "wrote {} reads ({} KB FASTQ) for a {} kbp genome to {}",
        reads.len(),
        std::fs::metadata(&fastq_path)?.len() / 1024,
        genome_length / 1000,
        fastq_path.display()
    );

    // 2. Stream the file back through the prefetching adapter: a dedicated
    //    worker thread parses the next chunk while the pipeline consumes the
    //    current one (two-slot double buffer), and the counter runs under the
    //    fixed resident-byte cap.
    let config = PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 100,
        threads: 4,
        spill: SpillConfig::bounded(budget_bytes),
        ..PakmanConfig::default()
    };
    let file_source = FastaFastqSource::open(&fastq_path)?.with_chunk_reads(4_096);
    println!(
        "source size hint: ~{} KB of bases",
        file_source.bases_hint().unwrap_or(0) / 1024
    );
    let source = PrefetchSource::new(file_source);
    let spilled = PakmanAssembler::new(config).assemble_source(source)?;
    let telemetry = spilled
        .spill
        .expect("a bounded budget records spill telemetry");
    println!(
        "spilled: {} contigs, N50 = {}, total {} bases",
        spilled.stats.contig_count, spilled.stats.n50, spilled.stats.total_length
    );
    println!(
        "spill telemetry: budget {} KB, spilled {} KB in {} runs, {} merge pass(es), \
         peak resident {} KB",
        telemetry.budget_bytes / 1024,
        telemetry.bytes_spilled / 1024,
        telemetry.runs_written,
        telemetry.merge_passes,
        telemetry.peak_resident_bytes / 1024,
    );

    // 3. The smoke assertions CI relies on: the budget produced real disk
    //    traffic and the capped assembly is bit-identical to the unconstrained
    //    in-memory run on the same reads.
    assert!(!spilled.contigs.is_empty(), "assembly produced no contigs");
    assert!(
        telemetry.bytes_spilled > 0,
        "the {budget_bytes}-byte budget moved no data to disk"
    );
    assert!(
        telemetry.merge_passes >= 1,
        "spilled counting must merge runs back"
    );
    let in_memory = PakmanAssembler::new(PakmanConfig {
        spill: SpillConfig::in_memory(),
        ..config
    })
    .assemble(&reads)?;
    assert_eq!(
        spilled.contigs, in_memory.contigs,
        "budget-capped and in-memory assemblies must be bit-identical"
    );
    assert_eq!(
        spilled.kmer_stats, in_memory.kmer_stats,
        "budget-capped and in-memory k-mer statistics must be bit-identical"
    );
    println!("ok: spilled to disk, bit-identical to the unconstrained run");

    // 4. Stream the contigs to FASTA without re-materializing them: the
    //    streaming writer walks the graph once, emitting records as they are
    //    spelled.
    let contig_path = std::env::temp_dir().join("nmp_pak_spilled_contigs.fasta");
    let mut writer = BufWriter::new(File::create(&contig_path)?);
    let written = write_contigs_fasta(&spilled.graph, config.min_contig_length, &mut writer)?;
    drop(writer);
    assert_eq!(
        written,
        spilled.contigs.len(),
        "the streamed FASTA writer must emit exactly the collected contigs"
    );
    println!(
        "streamed {written} contigs to {} ({} KB)",
        contig_path.display(),
        std::fs::metadata(&contig_path)?.len() / 1024
    );

    std::fs::remove_file(&fastq_path).ok();
    std::fs::remove_file(&contig_path).ok();
    Ok(())
}
