//! Assembly-as-a-service: three tenants sharing one job server.
//!
//! Starts an [`AssemblyServer`] with two workers and a global memory cap, then
//! submits three concurrent jobs — a file-streamed FASTQ assembly, a
//! server-side synthetic workload, and a low-priority job that is cancelled
//! mid-run — and watches their progress-event streams.
//!
//! This is the CI smoke test for the server API: it exits non-zero if a job's
//! contigs diverge from a one-shot [`PakmanAssembler`] run over the same
//! reads, if the cancelled job completes anyway, or if the shared ledger does
//! not return to zero after shutdown.
//!
//! ```text
//! cargo run --release --example job_server
//! ```

use nmp_pak::genome::fasta::write_fastq;
use nmp_pak::genome::{ReadSimulator, ReferenceGenome, SequencerConfig, SyntheticSource};
use nmp_pak::pakman::{PakmanAssembler, PakmanConfig, PakmanError};
use nmp_pak::server::{AssemblyServer, JobEvent, JobInput, JobPriority, JobSpec, ServerConfig};
use std::fs::File;
use std::io::BufWriter;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        threads: 2,
        ..PakmanConfig::default()
    };

    // 1. A sequencing run persisted as FASTQ — tenant A's input file.
    let genome_a = ReferenceGenome::builder().length(40_000).seed(41).build()?;
    let sequencer_a = SequencerConfig {
        coverage: 20.0,
        substitution_error_rate: 0.001,
        seed: 17,
        ..SequencerConfig::default()
    };
    let reads_a = ReadSimulator::new(sequencer_a).simulate(&genome_a)?;
    let fastq_path = std::env::temp_dir().join("nmp_pak_job_server.fastq");
    write_fastq(BufWriter::new(File::create(&fastq_path)?), &reads_a)?;

    // Tenant B's synthetic workload, described by spec (generated server-side).
    let sequencer_b = SequencerConfig {
        coverage: 15.0,
        substitution_error_rate: 0.0,
        seed: 5,
        ..SequencerConfig::default()
    };

    // 2. One server, two workers, one global ledger: every job's stages share
    //    the same pool and the same memory accounting.
    let server = AssemblyServer::start(ServerConfig {
        workers: 2,
        memory_cap_bytes: Some(256 << 20),
    });

    let job_a = server.submit(
        JobSpec::new(
            JobInput::File {
                path: fastq_path.clone(),
            },
            config,
        )
        .with_priority(JobPriority::High),
    )?;
    let job_b = server.submit(JobSpec::new(
        JobInput::Synthetic {
            genome_length: 30_000,
            genome_seed: 7,
            sequencer: sequencer_b,
        },
        config,
    ))?;
    let job_c = server.submit(
        JobSpec::new(
            JobInput::Synthetic {
                genome_length: 50_000,
                genome_seed: 3,
                sequencer: sequencer_b,
            },
            config,
        )
        .with_priority(JobPriority::Low),
    )?;
    println!(
        "submitted {} (file, high), {} (synthetic, normal), {} (synthetic, low — will cancel)",
        job_a.id(),
        job_b.id(),
        job_c.id()
    );

    // 3. Cancel tenant C at its first compaction iteration: the stage observes
    //    the flag at the next between-iterations checkpoint and unwinds.
    loop {
        let event = job_c.events().recv_timeout(Duration::from_secs(120))?;
        match event {
            JobEvent::CompactionIteration {
                iteration,
                alive_nodes,
            } => {
                println!(
                    "{}: cancelling at iteration {iteration} ({alive_nodes} nodes alive)",
                    job_c.id()
                );
                job_c.cancel();
                break;
            }
            JobEvent::Done { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. } => {
                return Err("job C terminated before it could be cancelled".into());
            }
            _ => {}
        }
    }
    let cancelled_id = job_c.id();
    let cancelled = job_c.join();
    assert!(
        matches!(cancelled, Err(PakmanError::Cancelled { .. })),
        "cancelled job must resolve to Cancelled, got {cancelled:?}"
    );
    println!("{cancelled_id}: cancelled cleanly");

    // 4. Tenants A and B complete; their event streams carry the pipeline's
    //    own telemetry.
    let out_a = job_a.join()?;
    let out_b = job_b.join()?;
    for (name, out) in [("job-0", &out_a), ("job-1", &out_b)] {
        println!(
            "{name}: {} contigs, N50 = {}, total {} bases, {} compaction iterations",
            out.stats.contig_count,
            out.stats.n50,
            out.stats.total_length,
            out.compaction_profile.iterations.len()
        );
    }

    // 5. The determinism contract: multi-tenant scheduling is observation plus
    //    ordering, never a change to the computation — each job's contigs are
    //    bit-identical to a one-shot assembler run over the same reads.
    let assembler = PakmanAssembler::new(config);
    let one_shot_a = assembler.assemble(&reads_a)?;
    assert_eq!(
        out_a.contigs, one_shot_a.contigs,
        "file-streamed job diverged from the one-shot run"
    );
    let genome_b = ReferenceGenome::builder().length(30_000).seed(7).build()?;
    let one_shot_b = assembler.assemble_source(SyntheticSource::new(genome_b, sequencer_b)?)?;
    assert_eq!(
        out_b.contigs, one_shot_b.contigs,
        "synthetic job diverged from the one-shot run"
    );
    println!("ok: both surviving jobs bit-identical to one-shot assemblies");

    // 6. Clean shutdown: the cancelled job's reservation (and every chained
    //    budget) was released, so the shared ledger drains to zero.
    assert_eq!(server.ledger().used(), 0, "ledger must drain to zero");
    server.shutdown();
    println!("ok: server shut down with an empty ledger");

    std::fs::remove_file(&fastq_path).ok();
    Ok(())
}
