//! Sharded subgraph execution: assemble the same workload on the single graph
//! and on owner-computes shards mapped onto NMP channels, verify the outputs
//! are bit-identical, and print the *measured* per-shard load and inter-shard
//! mailbox traffic the hardware model consumes.
//!
//! This is the CI smoke test for the sharded execution model: it exits
//! non-zero if any shard count changes a single output bit, if the mailbox
//! moves no cross-shard traffic, or if the channel model sees no bridge bytes.
//!
//! ```text
//! cargo run --release --example sharded_assembly
//! ```

use nmp_pak::core::backend::SystemConfig;
use nmp_pak::genome::{ReadSimulator, ReferenceGenome, SequencerConfig};
use nmp_pak::nmphw::{NetworkModel, NmpSystem};
use nmp_pak::pakman::{PakmanAssembler, PakmanConfig, ShardConfig, ShardSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 40 kbp workload at 25x.
    let genome = ReferenceGenome::builder().length(40_000).seed(23).build()?;
    let reads = ReadSimulator::new(SequencerConfig {
        coverage: 25.0,
        substitution_error_rate: 0.001,
        seed: 29,
        ..SequencerConfig::default()
    })
    .simulate(&genome)?;
    let config = |shards: ShardConfig| PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 100,
        threads: 2,
        record_trace: false,
        shards,
        ..PakmanConfig::default()
    };

    // 2. The single-graph reference.
    let single = PakmanAssembler::new(config(ShardConfig::single())).assemble(&reads)?;
    println!(
        "single graph: {} contigs, N50 {}, {} -> {} MacroNodes over {} iterations",
        single.contigs.len(),
        single.stats.n50,
        single.compaction.initial_nodes,
        single.compaction.final_nodes,
        single.compaction.iteration_count(),
    );

    // 3. Sharded runs: 2 shards and one shard per channel of the paper's
    //    8-channel system. Output must not change by a single bit.
    let system_config = SystemConfig::default();
    let nmp_system = NmpSystem::new(system_config.nmp, system_config.dram, system_config.cpu);
    for shards in [ShardConfig::per_channel(2), ShardConfig::default_channels()] {
        let sharded = PakmanAssembler::new(config(shards)).assemble(&reads)?;
        assert_eq!(sharded.contigs, single.contigs, "contigs diverged");
        assert_eq!(sharded.stats, single.stats, "assembly stats diverged");
        assert_eq!(
            sharded.compaction, single.compaction,
            "compaction stats diverged"
        );
        let telemetry = sharded
            .sharding
            .expect("sharded runs record shard telemetry");
        assert!(
            telemetry.total_cross_shard_bytes() > 0,
            "sharded execution must route cross-shard mailbox traffic"
        );
        println!(
            "\n{} shards: bit-identical ✓   per-shard alive (final): {:?}",
            telemetry.shard_count, telemetry.final_alive_per_shard,
        );
        println!(
            "  P1 load imbalance {:.3}, mailbox {} B/iter avg, {:.1}% cross-shard",
            telemetry.load_imbalance(),
            telemetry.total_mailbox_bytes() / telemetry.mailbox.len().max(1) as u64,
            telemetry.cross_shard_fraction() * 100.0,
        );

        // 4. Fold the measured telemetry onto the NMP channel model: this is
        //    what replaces the uniform-load assumption in the cost models.
        let channel_load = nmp_system.channel_load_from_sharding(&telemetry);
        println!(
            "  channels: imbalance {:.3}, bridge traffic {} B ({:.1}% of mailbox bytes)",
            channel_load.imbalance(),
            channel_load.cross_channel_bytes,
            channel_load.cross_channel_fraction() * 100.0,
        );
        if telemetry.shard_count > 1 {
            assert!(
                channel_load.cross_channel_bytes > 0,
                "multi-channel mapping must see bridge traffic"
            );
        }
    }

    // 5. The async schedule: no all-shards barrier, eager bounded mailbox
    //    flushes — verified-equivalent, so the contigs still must not change
    //    by a single bit, and the flush ledger must match lock-step's.
    let async_config = PakmanConfig {
        shard_schedule: ShardSchedule::Async,
        ..config(ShardConfig::default_channels())
    };
    let lockstep = PakmanAssembler::new(config(ShardConfig::default_channels()))
        .assemble(&reads)?
        .sharding
        .expect("sharded runs record shard telemetry");
    let asynchronous = PakmanAssembler::new(async_config).assemble(&reads)?;
    assert_eq!(
        asynchronous.contigs, single.contigs,
        "async contigs diverged"
    );
    assert_eq!(
        asynchronous.stats, single.stats,
        "async assembly stats diverged"
    );
    let telemetry = asynchronous
        .sharding
        .expect("sharded runs record shard telemetry");
    assert_eq!(
        telemetry.flushes, lockstep.flushes,
        "async flush ledger diverged from lock-step"
    );
    println!(
        "\nasync schedule at {} shards: bit-identical ✓   {} mailbox flushes (ledger = lock-step)",
        telemetry.shard_count,
        telemetry.flushes.len(),
    );
    println!(
        "  critical path from measured rounds: barriered {:.3} ms, barrier-free {:.3} ms ({:.2}x)",
        telemetry.lockstep_critical_path_nanos() as f64 / 1e6,
        telemetry.async_critical_path_nanos() as f64 / 1e6,
        telemetry.lockstep_critical_path_nanos() as f64
            / telemetry.async_critical_path_nanos().max(1) as f64,
    );

    // 6. Project the measured run onto small clusters: the network model
    //    charges the per-flush ledger over the modeled interconnect.
    let network = NetworkModel::default();
    let base_ns = telemetry.async_critical_path_nanos() as f64;
    for nodes in [2usize, 4, 8] {
        let projection = network.project_multinode(&telemetry, nodes, base_ns);
        println!(
            "  {} nodes: projected speedup {:.2}x, {:.1}% of mailbox bytes cross nodes",
            nodes,
            projection.speedup(),
            projection.cross_node_fraction() * 100.0,
        );
        assert!(
            projection.cross_node_bytes > 0,
            "multi-node folding must see cross-node traffic"
        );
    }

    println!("\nsharded execution verified: all shard counts and schedules bit-identical");
    Ok(())
}
