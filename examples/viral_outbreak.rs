//! De novo assembly of an "unknown virus" — the motivating scenario of the paper's
//! introduction: reads sampled from an uncharacterized genome are assembled without
//! any reference, and the resulting contigs are compared back against the (hidden)
//! truth to measure how much of the virus was recovered.
//!
//! ```text
//! cargo run --release --example viral_outbreak
//! ```

use nmp_pak::genome::{fasta, ReadSimulator, ReferenceGenome, RepeatSpec, SequencerConfig};
use nmp_pak::pakman::{PakmanAssembler, PakmanConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "unknown virus": a 150 kbp genome with some internal repeat structure
    // (about the size of a herpesvirus). In a real outbreak this sequence is unknown;
    // here it is generated so we can grade the assembly afterwards.
    let virus = ReferenceGenome::builder()
        .length(150_000)
        .gc_content(0.45)
        .repeats(vec![RepeatSpec::new(250, 6), RepeatSpec::new(90, 15)])
        .seed(2026)
        .name("novel_virus_isolate_1")
        .build()?;

    // Sequence the patient sample: short reads, 60x coverage, 0.3% error rate.
    let reads = ReadSimulator::new(SequencerConfig {
        read_length: 100,
        coverage: 60.0,
        substitution_error_rate: 0.003,
        seed: 7,
        ..SequencerConfig::default()
    })
    .simulate(&virus)?;
    println!(
        "sequenced {} reads ({} bases)",
        reads.len(),
        reads.len() * 100
    );

    // Assemble de novo: no reference genome is consulted.
    let output = PakmanAssembler::new(PakmanConfig {
        k: 25,
        min_kmer_count: 3,
        threads: 4,
        ..PakmanConfig::default()
    })
    .assemble(&reads)?;

    println!(
        "assembled {} contigs, total {} bases, N50 = {}",
        output.stats.contig_count, output.stats.total_length, output.stats.n50
    );
    println!(
        "phase shares (A-E): {:?}",
        output
            .timings
            .shares()
            .map(|s| format!("{:.0}%", s * 100.0))
    );

    // Grade the assembly: how much of the hidden virus genome do the contigs cover?
    let covered = coverage_estimate(
        &virus,
        &output.contigs.iter().map(|c| c.len()).collect::<Vec<_>>(),
    );
    println!("estimated genome recovery: {:.1}%", covered * 100.0);

    // Write the contigs to FASTA, as a real pipeline would hand them to annotation.
    let records: Vec<fasta::FastaRecord> = output
        .contigs
        .iter()
        .enumerate()
        .take(25)
        .map(|(i, c)| fasta::FastaRecord {
            name: format!("contig_{i} length={}", c.len()),
            sequence: c.sequence.clone(),
        })
        .collect();
    let path = std::env::temp_dir().join("novel_virus_contigs.fasta");
    let file = std::fs::File::create(&path)?;
    fasta::write_fasta(std::io::BufWriter::new(file), &records, 80)?;
    println!(
        "wrote the {} longest contigs to {}",
        records.len(),
        path.display()
    );
    Ok(())
}

/// First-order recovery estimate: assembled bases capped at the genome length.
fn coverage_estimate(genome: &ReferenceGenome, contig_lengths: &[usize]) -> f64 {
    let assembled: usize = contig_lengths.iter().sum();
    (assembled.min(genome.len())) as f64 / genome.len() as f64
}
