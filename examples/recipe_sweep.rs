//! Compose and run a custom scenario-sweep recipe with the combinator DSL:
//! cross a shard axis with a thread axis, filter out the oversubscribed
//! corner, gate the result on assembly quality and the measured cross-shard
//! mailbox traffic, and print the per-cell matrix.
//!
//! Exits non-zero if any gate is violated — the same contract as
//! `experiments sweep <recipe>`.
//!
//! ```text
//! cargo run --release --example recipe_sweep
//! ```

use nmp_pak::recipe::{
    metric, Axis, CellSelector, Executor, Filter, Gate, Grid, Recipe, ScenarioSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 3x2 grid over one 10 kbp workload: shards x threads, minus the
    //    cell where shards would exceed threads x 4 (a demonstrative guard).
    let recipe = Recipe {
        name: "custom-shard-sweep".to_string(),
        description: "shards x threads over one tiny workload".to_string(),
        base: ScenarioSpec {
            genome_length: 10_000,
            coverage: 15.0,
            ..ScenarioSpec::default()
        },
        grid: Grid::axis(Axis::shards(&[1, 4, 8]))
            .cross(Grid::axis(Axis::threads(&[1, 4])))
            .filter(Filter::new("skip shards > threads*4", |s| {
                s.shards <= s.threads * 4
            })),
        gates: vec![
            Gate::at_least(metric::N50, 1.0),
            Gate::at_least(metric::CROSS_SHARD_BYTES, 1.0).on(CellSelector::sharded()),
        ],
    };

    // 2. Enumerate deterministically, then execute every cell in-process.
    let cells = recipe.scenarios()?;
    println!("recipe enumerates {} cells:", cells.len());
    for spec in &cells {
        println!("  {}", spec.label());
    }

    let report = Executor::local().run(&recipe)?;

    // 3. The per-cell matrix: every cell is bit-identical to a one-shot
    //    PakmanAssembler run with the same configuration.
    println!("\nper-cell results:");
    for cell in &report.cells {
        println!(
            "  sh{} t{}: n50={} contigs={} cross_shard_bytes={}",
            cell.spec.shards,
            cell.spec.threads,
            cell.metric(metric::N50).unwrap_or(0.0),
            cell.metric(metric::CONTIGS).unwrap_or(0.0),
            cell.metric(metric::CROSS_SHARD_BYTES).unwrap_or(0.0),
        );
    }

    // 4. Gate verdicts decide the exit code.
    println!("\ngates:");
    for gate in &report.gates {
        let verdict = if gate.passed { "PASS" } else { "FAIL" };
        println!("  [{verdict}] {}", gate.description);
    }
    if !report.passed() {
        eprintln!("FAIL: sweep gates violated");
        std::process::exit(1);
    }
    println!("\nOK: all gates held");
    Ok(())
}
