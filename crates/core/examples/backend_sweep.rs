//! End-to-end smoke of the public API surface: build a workload, stream it
//! through the k-deep pipelined batch scheduler, then sweep every registered
//! execution backend over the recorded compaction trace — the paper's seven,
//! the PANDA-style in-DRAM bitwise research backend, and a custom GPU
//! registered next to them.
//!
//! ```text
//! cargo run --release -p nmp-pak-core --example backend_sweep
//! ```

use nmp_pak_core::assembler::NmpPakAssembler;
use nmp_pak_core::backend::{BackendId, BackendRegistry, GpuBackend, SimulationContext};
use nmp_pak_core::workload::Workload;
use nmp_pak_pakman::{BatchAssembler, BatchSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::tiny(7)?;
    let assembler = NmpPakAssembler::default();
    println!(
        "workload: {} — genome {} bp, {} reads",
        workload.name,
        workload.genome_length().unwrap_or(0),
        workload.reads.len()
    );

    // Streamed batch assembly off a chunked source: the fronts (A–C) of up to
    // three later batches overlap each batch's compaction, with the in-flight
    // reads capped at 2 MB. The output is bit-identical to the sequential
    // schedule.
    let batched = BatchAssembler::with_schedule(
        assembler.pakman,
        0.25,
        BatchSchedule::Pipelined {
            depth: 3,
            max_inflight_bytes: Some(2 << 20),
        },
    )
    .assemble_source(nmp_pak_genome::InMemorySource::chunked(
        &workload.reads,
        workload.reads.len().div_ceil(4),
    ))?;
    println!(
        "streamed assembly: {} batches, {} contigs, N50 = {}, footprint reduction {:.1}x, \
         peak in-flight reads {} KB",
        batched.batch_compaction.len(),
        batched.stats.contig_count,
        batched.stats.n50,
        batched.footprint_reduction(),
        batched.peak_inflight_read_bytes / 1024,
    );

    // Sweep every registered backend on the same trace: the Fig. 12 seven plus
    // the PANDA research configuration appended by the extended registry. One
    // software run produces the trace and layout; only the registry sweep below
    // simulates backends.
    let software = assembler.run_source(workload.source(), BackendId::NMP_PAK)?;
    let (assembly, layout) = (software.assembly, software.layout);
    let trace = assembly.trace.clone().expect("trace is forced on");
    let ctx = SimulationContext::new(assembly.footprint.peak_bytes());
    let registry = BackendRegistry::extended(&assembler.system);
    let results = registry.simulate_all(&trace, &layout, &ctx);
    let baseline = results
        .iter()
        .find(|r| r.backend == BackendId::CPU_BASELINE)
        .expect("the extended registry simulates the CPU baseline");
    println!(
        "\nbackend sweep over {} compaction iterations:",
        assembly.compaction.iteration_count()
    );
    for result in &results {
        println!(
            "  {:<22} {:>8.3} ms   {:>5.2}x vs baseline   {:>12} external bytes",
            result.label,
            result.runtime_ns / 1e6,
            result.speedup_over(baseline),
            result.traffic.total_bytes(),
        );
    }
    let panda = results
        .iter()
        .find(|r| r.backend == BackendId::PANDA)
        .expect("the extended registry simulates PANDA");
    assert!(
        panda.speedup_over(baseline) > 1.0,
        "in-DRAM bitwise execution must beat the CPU baseline"
    );

    // Register a custom backend next to the standard configurations and run it
    // through the same trait-object path.
    let mut registry = registry;
    registry.register(Box::new(GpuBackend::custom(
        BackendId::new("gpu-80gb"),
        "GPU-80GB",
        assembler.system.dram,
        nmp_pak_memsim::GpuConfig::a100_80gb(),
    )));
    let custom = registry
        .get(BackendId::new("gpu-80gb"))
        .expect("just registered");
    let run = assembler.run_with(&workload, custom)?;
    println!(
        "\ncustom backend {}: {:.3} ms, capacity check fits = {}",
        run.backend_result.label,
        run.backend_result.runtime_ns / 1e6,
        custom
            .capacity_check(run.assembly.footprint.peak_bytes())
            .fits()
    );

    Ok(())
}
