//! End-to-end smoke of the public API surface: build a workload, stream it
//! through the staged batch pipeline, then sweep every registered execution
//! backend over the recorded compaction trace — including a custom backend
//! registered next to the paper's seven.
//!
//! ```text
//! cargo run --release -p nmp-pak-core --example backend_sweep
//! ```

use nmp_pak_core::assembler::NmpPakAssembler;
use nmp_pak_core::backend::{BackendId, GpuBackend};
use nmp_pak_core::workload::Workload;
use nmp_pak_pakman::{BatchAssembler, BatchSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::tiny(7)?;
    let assembler = NmpPakAssembler::default();
    println!(
        "workload: {} — genome {} bp, {} reads",
        workload.name,
        workload.genome.len(),
        workload.reads.len()
    );

    // Streamed batch assembly: stages A–C of batch i+1 overlap batch i's
    // compaction. The output is bit-identical to the sequential schedule.
    let batched = BatchAssembler::with_schedule(assembler.pakman, 0.25, BatchSchedule::Overlapped)
        .assemble(&workload.reads)?;
    println!(
        "streamed assembly: {} batches, {} contigs, N50 = {}, footprint reduction {:.1}x",
        batched.batch_compaction.len(),
        batched.stats.contig_count,
        batched.stats.n50,
        batched.footprint_reduction()
    );

    // Sweep every registered backend on the same trace (Fig. 12 order).
    let (assembly, results) = assembler.run_all_backends(&workload)?;
    let baseline = results
        .iter()
        .find(|r| r.backend == BackendId::CPU_BASELINE)
        .expect("the standard registry simulates the CPU baseline");
    println!(
        "\nbackend sweep over {} compaction iterations:",
        assembly.compaction.iteration_count()
    );
    for result in &results {
        println!(
            "  {:<22} {:>8.3} ms   {:>5.2}x vs baseline",
            result.label,
            result.runtime_ns / 1e6,
            result.speedup_over(baseline)
        );
    }

    // Register a custom backend next to the standard seven and run it through
    // the same trait-object path.
    let mut registry = assembler.registry();
    registry.register(Box::new(GpuBackend::custom(
        BackendId::new("gpu-80gb"),
        "GPU-80GB",
        assembler.system.dram,
        nmp_pak_memsim::GpuConfig::a100_80gb(),
    )));
    let custom = registry
        .get(BackendId::new("gpu-80gb"))
        .expect("just registered");
    let run = assembler.run_with(&workload, custom)?;
    println!(
        "\ncustom backend {}: {:.3} ms, capacity check fits = {}",
        run.backend_result.label,
        run.backend_result.runtime_ns / 1e6,
        custom
            .capacity_check(run.assembly.footprint.peak_bytes())
            .fits()
    );

    Ok(())
}
