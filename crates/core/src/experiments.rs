//! Experiment drivers: one function per table/figure of the paper's evaluation.
//!
//! Each driver returns plain data (labels and numbers) so the `experiments` binary and
//! the Criterion benches can print the same rows the paper reports. `EXPERIMENTS.md`
//! records, for every experiment, the paper's numbers next to the numbers measured
//! with these drivers on the scaled synthetic workloads.

use crate::assembler::NmpPakAssembler;
use crate::backend::{BackendId, BackendResult, CompactionBackend, NmpBackend};
use crate::workload::Workload;
use nmp_pak_memsim::{NodeLayout, StallBreakdown};
use nmp_pak_nmphw::area_power::GpuComparison;
use nmp_pak_nmphw::{AreaPowerModel, CommStats, NmpConfig};
use nmp_pak_pakman::{AssemblyOutput, BatchAssembler, CompactionTrace, PakmanError, SizeHistogram};

/// A label/value pair, the common row format of the figure drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (backend name, phase name, batch size, …).
    pub label: String,
    /// Row value (normalized performance, percentage, N50, …).
    pub value: f64,
}

impl Row {
    fn new(label: impl Into<String>, value: f64) -> Self {
        Row {
            label: label.into(),
            value,
        }
    }
}

/// A prepared experiment context: the software pipeline has been run once and its
/// compaction trace, MacroNode layout and per-backend simulations are cached.
#[derive(Debug)]
pub struct Experiments {
    /// The workload used.
    pub workload: Workload,
    /// The assembler (software + system configuration).
    pub assembler: NmpPakAssembler,
    /// The software assembly output.
    pub assembly: AssemblyOutput,
    /// The recorded compaction trace.
    pub trace: CompactionTrace,
    /// The MacroNode layout.
    pub layout: NodeLayout,
    /// Per-backend simulation results in registry (Fig. 12) order.
    pub backends: Vec<BackendResult>,
}

impl Experiments {
    /// Prepares the experiment context from a streaming read source (e.g. a
    /// FASTQ file): the source is materialized into a [`Workload`] once — every
    /// backend replays the same trace — and [`Experiments::prepare`] runs on it.
    ///
    /// # Errors
    ///
    /// Propagates source I/O/parse errors and software-pipeline errors.
    pub fn prepare_streamed<'s>(
        name: impl Into<String>,
        source: impl nmp_pak_genome::ReadSource<'s>,
        assembler: NmpPakAssembler,
    ) -> Result<Self, PakmanError> {
        let workload = Workload::from_read_source(name, source).map_err(PakmanError::from)?;
        Experiments::prepare(workload, assembler)
    }

    /// Runs the software pipeline on `workload` and simulates every backend.
    ///
    /// # Errors
    ///
    /// Propagates software-pipeline errors.
    pub fn prepare(workload: Workload, assembler: NmpPakAssembler) -> Result<Self, PakmanError> {
        let (assembly, backends) = assembler.run_all_backends(&workload)?;
        let trace = assembly
            .trace
            .clone()
            .expect("NmpPakAssembler always records the trace");
        let layout = NodeLayout::new(&trace.initial_sizes, &assembler.system.dram);
        Ok(Experiments {
            workload,
            assembler,
            assembly,
            trace,
            layout,
            backends,
        })
    }

    fn result(&self, backend: BackendId) -> &BackendResult {
        self.backends
            .iter()
            .find(|r| r.backend == backend)
            .expect("all backends were simulated")
    }

    /// **Fig. 5** — runtime share of each assembly phase (A–E).
    pub fn fig5_phase_breakdown(&self) -> Vec<Row> {
        let shares = self.assembly.timings.shares();
        let labels = [
            "A. access & distribute reads",
            "B. k-mer counting",
            "C. MacroNode construct & wiring",
            "D. iterative compaction",
            "E. graph walk & contig gen",
        ];
        labels
            .iter()
            .zip(shares)
            .map(|(l, s)| Row::new(*l, s))
            .collect()
    }

    /// **Fig. 6** — Iterative Compaction stall-time breakdown on the CPU baseline.
    pub fn fig6_stall_breakdown(&self) -> StallBreakdown {
        self.result(BackendId::CPU_BASELINE)
            .stall
            .expect("CPU backends report a stall breakdown")
    }

    /// **Fig. 7** — MacroNode size distribution at the first, middle and final
    /// compaction iterations. Returns `(iteration, histogram)` triples.
    pub fn fig7_size_distributions(&self) -> Vec<(usize, SizeHistogram)> {
        let iterations = &self.assembly.compaction.iterations;
        if iterations.is_empty() {
            return Vec::new();
        }
        let picks = [0, iterations.len() / 2, iterations.len() - 1];
        let mut seen = std::collections::HashSet::new();
        picks
            .iter()
            .filter(|&&i| seen.insert(i))
            .map(|&i| (iterations[i].iteration, iterations[i].histogram.clone()))
            .collect()
    }

    /// **Fig. 8** — proportion of MacroNodes exceeding 1/2/4/8 KB at every iteration.
    /// Returns `(iteration, [>1 KB, >2 KB, >4 KB, >8 KB])`.
    pub fn fig8_oversize_fractions(&self) -> Vec<(usize, [f64; 4])> {
        self.assembly
            .compaction
            .iterations
            .iter()
            .map(|it| {
                (
                    it.iteration,
                    [
                        it.histogram.fraction_exceeding(1024),
                        it.histogram.fraction_exceeding(2048),
                        it.histogram.fraction_exceeding(4096),
                        it.histogram.fraction_exceeding(8192),
                    ],
                )
            })
            .collect()
    }

    /// **Table 1** — contig quality (N50) across batch sizes.
    ///
    /// # Errors
    ///
    /// Propagates software-pipeline errors from the per-batch assemblies.
    pub fn table1_batch_quality(&self, fractions: &[f64]) -> Result<Vec<Row>, PakmanError> {
        let mut rows = Vec::with_capacity(fractions.len());
        for &fraction in fractions {
            let output = BatchAssembler::new(self.assembler.pakman, fraction)
                .assemble(&self.workload.reads)?;
            rows.push(Row::new(
                format!("{:.1}%", fraction * 100.0),
                output.stats.n50 as f64,
            ));
        }
        Ok(rows)
    }

    /// **Fig. 12** — performance of every backend normalized to the CPU baseline.
    ///
    /// Rows follow the registry (plot) order; the baseline's own row is 1.0.
    pub fn fig12_normalized_performance(&self) -> Vec<Row> {
        let baseline = self.result(BackendId::CPU_BASELINE);
        self.backends
            .iter()
            .map(|r| Row::new(r.label, r.speedup_over(baseline)))
            .collect()
    }

    /// **Fig. 13** — memory-bandwidth utilization per backend (fraction of peak).
    pub fn fig13_bandwidth_utilization(&self) -> Vec<Row> {
        [
            BackendId::CPU_BASELINE,
            BackendId::CPU_PAK,
            BackendId::NMP_PAK,
            BackendId::NMP_IDEAL_PE,
            BackendId::NMP_IDEAL_FORWARDING,
        ]
        .iter()
        .map(|&id| {
            let r = self.result(id);
            Row::new(r.label, r.bandwidth_utilization())
        })
        .collect()
    }

    /// **Fig. 14** — read and write traffic normalized to the CPU baseline's reads.
    /// Returns `(label, normalized reads, normalized writes)`.
    pub fn fig14_traffic(&self) -> Vec<(String, f64, f64)> {
        let baseline_reads = self
            .result(BackendId::CPU_BASELINE)
            .traffic
            .read_bytes
            .max(1) as f64;
        [
            BackendId::CPU_BASELINE,
            BackendId::CPU_PAK,
            BackendId::NMP_PAK,
            BackendId::NMP_IDEAL_PE,
            BackendId::NMP_IDEAL_FORWARDING,
        ]
        .iter()
        .map(|&id| {
            let r = self.result(id);
            (
                r.label.to_string(),
                r.traffic.read_bytes as f64 / baseline_reads,
                r.traffic.write_bytes as f64 / baseline_reads,
            )
        })
        .collect()
    }

    /// **Fig. 15** — NMP-PaK performance (normalized to the CPU baseline) as the
    /// number of PEs per channel varies.
    pub fn fig15_pe_sweep(&self, pe_counts: &[usize]) -> Vec<Row> {
        let baseline = self.result(BackendId::CPU_BASELINE);
        let ctx = NmpPakAssembler::context_for(&self.assembly);
        pe_counts
            .iter()
            .map(|&pes| {
                let config = NmpConfig {
                    pes_per_channel: pes,
                    ..self.assembler.system.nmp
                };
                let backend = NmpBackend::with_config(
                    BackendId::new("nmp-pe-sweep"),
                    "NMP-PaK (PE sweep)",
                    config,
                    &self.assembler.system,
                );
                let result = backend.simulate(&self.trace, &self.layout, &ctx);
                Row::new(format!("{pes} PE/ch"), result.speedup_over(baseline))
            })
            .collect()
    }

    /// **§6.3** — intra- vs inter-DIMM TransferNode communication.
    pub fn comm_breakdown(&self) -> CommStats {
        self.result(BackendId::NMP_PAK)
            .comm
            .expect("NMP backends report communication statistics")
    }

    /// **Table 3** — area and power of the PE components and the 16-PE integration.
    pub fn table3_area_power(&self) -> Vec<(String, f64, f64)> {
        let model = AreaPowerModel::default();
        let mut rows: Vec<(String, f64, f64)> = model
            .pe_components
            .iter()
            .chain(model.shared_components.iter())
            .map(|c| (c.name.to_string(), c.area_mm2, c.power_mw))
            .collect();
        rows.push(("PE".to_string(), model.pe_area_mm2(), model.pe_power_mw()));
        rows.push((
            "16 PEs".to_string(),
            model.chip_area_mm2(16),
            model.chip_power_mw(16),
        ));
        rows
    }

    /// **§6.4** — throughput comparison against the PaKman supercomputer run.
    pub fn supercomputer_comparison(&self) -> SupercomputerComparison {
        let nmp = self.result(BackendId::NMP_PAK);
        // Scale the measured compaction speedup to a full-assembly speedup using the
        // paper's single-node numbers, then apply the paper's published
        // supercomputer result (39 s on 1 024 nodes / 16 384 cores).
        SupercomputerComparison::from_single_node_time(
            nmp.runtime_ns / 1e9,
            self.assembly.timings.total().as_secs_f64(),
        )
    }

    /// **§6.6 / §3.5** — memory-footprint reduction and GPU-capacity analysis.
    pub fn footprint_summary(&self) -> FootprintSummary {
        let footprint = self.assembly.footprint;
        let gpu = self.assembler.system.gpu;
        let comparison = GpuComparison::new(
            &AreaPowerModel::default(),
            &NmpConfig::sixteen_pes(),
            self.assembler.system.dram.channels,
            &gpu,
            footprint.peak_bytes(),
        );
        FootprintSummary {
            unoptimized_peak_bytes: footprint.unoptimized_peak_bytes(),
            optimized_peak_bytes: footprint.peak_bytes(),
            batched_peak_bytes: footprint.with_batching(0.1).peak_bytes(),
            reduction_factor: footprint.reduction_factor_vs_unoptimized(0.1),
            fits_gpu: gpu.fits(footprint.peak_bytes()),
            gpu_power_ratio: comparison.power_ratio(),
            gpu_area_ratio: comparison.area_ratio(),
        }
    }

    /// Re-simulates the NMP backend with a custom configuration (used by ablations).
    pub fn simulate_nmp_variant(&self, config: NmpConfig) -> BackendResult {
        let backend = NmpBackend::with_config(
            BackendId::NMP_PAK,
            "NMP-PaK",
            config,
            &self.assembler.system,
        );
        backend.simulate(
            &self.trace,
            &self.layout,
            &NmpPakAssembler::context_for(&self.assembly),
        )
    }

    /// The run's external-memory counting telemetry, recorded when the
    /// assembly ran under a [`nmp_pak_pakman::SpillConfig`] resident-byte
    /// budget (`None` on the in-memory counting path). The `experiments spill`
    /// subcommand reports the same quantities for the standalone benchmark.
    pub fn spill_telemetry(&self) -> Option<nmp_pak_pakman::SpillTelemetry> {
        self.assembly.spill
    }

    /// Folds the run's sharding telemetry (if the software ran sharded) onto
    /// the NMP channel model: per-channel measured work/residency and the
    /// intra- vs cross-channel split of the mailbox traffic.
    pub fn channel_load(&self) -> Option<nmp_pak_nmphw::ChannelLoadStats> {
        let telemetry = self.assembly.sharding.as_ref()?;
        let system = nmp_pak_nmphw::NmpSystem::new(
            self.assembler.system.nmp,
            self.assembler.system.dram,
            self.assembler.system.cpu,
        );
        Some(system.channel_load_from_sharding(telemetry))
    }
}

/// §6.4's throughput comparison under equal resource constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupercomputerComparison {
    /// Single-node NMP-PaK assembly time for the workload, in seconds.
    pub nmp_single_node_seconds: f64,
    /// The paper's supercomputer assembly time (seconds) and core count.
    pub supercomputer_seconds: f64,
    /// Cores used by the supercomputer run.
    pub supercomputer_cores: usize,
    /// Raw speed advantage of the supercomputer over one NMP-PaK node.
    pub supercomputer_speed_advantage: f64,
    /// Throughput advantage of 1 024 NMP-PaK nodes over the supercomputer at equal
    /// resource count (the paper's 8.3×).
    pub nmp_throughput_advantage: f64,
    /// Speedup available by integrating NMP-PaK into the supercomputer (63 % of its
    /// runtime is Iterative Compaction; the paper derives 2.46×).
    pub supercomputer_integration_speedup: f64,
}

impl SupercomputerComparison {
    /// Paper constants: PaKman assembles the full human genome in 39 s on 1 024 nodes
    /// (16 384 cores), and Iterative Compaction is 63 % of its runtime.
    pub fn from_single_node_time(nmp_compaction_seconds: f64, nmp_total_seconds: f64) -> Self {
        const SUPER_SECONDS: f64 = 39.0;
        const SUPER_CORES: usize = 16_384;
        const SUPER_NODES: f64 = 1_024.0;
        const SUPER_COMPACTION_SHARE: f64 = 0.63;
        // Paper §6.4: the full-genome single-node NMP-PaK assembly takes 4 813 s; our
        // scaled workload takes `nmp_total_seconds`. The throughput argument is scale
        // free: with 1 024 NMP-PaK nodes, 1 024 assemblies finish in the single-node
        // time, while the supercomputer completes time/SUPER_SECONDS assemblies.
        let nmp_single_node_seconds = nmp_total_seconds.max(nmp_compaction_seconds);
        let supercomputer_speed_advantage = nmp_single_node_seconds / SUPER_SECONDS;
        let nmp_throughput_advantage = SUPER_NODES / supercomputer_speed_advantage;
        // Amdahl over the compaction share if NMP-PaK accelerated it "infinitely".
        let supercomputer_integration_speedup = 1.0 / (1.0 - SUPER_COMPACTION_SHARE);
        SupercomputerComparison {
            nmp_single_node_seconds,
            supercomputer_seconds: SUPER_SECONDS,
            supercomputer_cores: SUPER_CORES,
            supercomputer_speed_advantage,
            nmp_throughput_advantage,
            supercomputer_integration_speedup,
        }
    }
}

/// §3.5 / §6.6 footprint summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintSummary {
    /// Peak footprint without the §4.5 software optimizations or batching.
    pub unoptimized_peak_bytes: u64,
    /// Peak footprint with the software optimizations, unbatched.
    pub optimized_peak_bytes: u64,
    /// Peak footprint with 10 % batches.
    pub batched_peak_bytes: u64,
    /// Combined reduction factor (the paper's 14×).
    pub reduction_factor: f64,
    /// Whether the optimized, unbatched footprint fits the GPU baseline's memory.
    pub fits_gpu: bool,
    /// GPU-cluster-to-NMP power ratio for an equivalent-capacity deployment.
    pub gpu_power_ratio: f64,
    /// GPU-cluster-to-NMP area ratio.
    pub gpu_area_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared() -> Experiments {
        let workload = Workload::tiny(17).unwrap();
        Experiments::prepare(workload, NmpPakAssembler::default()).unwrap()
    }

    #[test]
    fn prepare_streamed_matches_prepare() {
        let workload = Workload::tiny(17).unwrap();
        let streamed =
            Experiments::prepare_streamed("tiny", workload.source(), NmpPakAssembler::default())
                .unwrap();
        let direct = Experiments::prepare(workload, NmpPakAssembler::default()).unwrap();
        assert_eq!(streamed.assembly.contigs, direct.assembly.contigs);
        assert_eq!(streamed.backends.len(), direct.backends.len());
        assert!(streamed.workload.genome.is_none());
    }

    #[test]
    fn spill_telemetry_is_surfaced_for_budget_capped_runs() {
        let in_memory = prepared();
        assert!(in_memory.spill_telemetry().is_none());

        let mut assembler = NmpPakAssembler::default();
        assembler.pakman.spill = nmp_pak_pakman::SpillConfig::bounded(4 * 1024);
        let spilled = Experiments::prepare(Workload::tiny(17).unwrap(), assembler).unwrap();
        let telemetry = spilled
            .spill_telemetry()
            .expect("budget-capped run records spill telemetry");
        assert_eq!(telemetry.budget_bytes, 4 * 1024);
        // Counting under the budget must not change the assembly.
        assert_eq!(spilled.assembly.contigs, in_memory.assembly.contigs);
        assert_eq!(spilled.assembly.stats, in_memory.assembly.stats);
    }

    #[test]
    fn fig5_shares_sum_to_one() {
        let exp = prepared();
        let rows = exp.fig5_phase_breakdown();
        assert_eq!(rows.len(), 5);
        let total: f64 = rows.iter().map(|r| r.value).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_breakdown_is_normalized_and_memory_dominated() {
        let exp = prepared();
        let stall = exp.fig6_stall_breakdown();
        assert!((stall.total() - 1.0).abs() < 1e-6);
        assert!(stall.mem_dram > stall.base);
    }

    #[test]
    fn fig7_and_fig8_report_distributions() {
        let exp = prepared();
        let dists = exp.fig7_size_distributions();
        assert!(!dists.is_empty());
        for (_, hist) in &dists {
            assert!(hist.total() > 0);
        }
        let fractions = exp.fig8_oversize_fractions();
        assert_eq!(fractions.len(), exp.assembly.compaction.iterations.len());
        for (_, f) in &fractions {
            // Larger thresholds can only reduce the fraction.
            assert!(f[0] >= f[1] && f[1] >= f[2] && f[2] >= f[3]);
        }
    }

    #[test]
    fn fig12_normalization_and_ordering() {
        let exp = prepared();
        let rows = exp.fig12_normalized_performance();
        let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap().value;
        assert!((get("CPU-baseline") - 1.0).abs() < 1e-9);
        assert!(get("W/O SW-opt") < 1.0);
        assert!(get("NMP-PaK") > get("CPU-PaK"));
        assert!(get("NMP-PaK+ideal-fwd") >= get("NMP-PaK"));
    }

    #[test]
    fn fig13_and_fig14_shapes() {
        let exp = prepared();
        let util = exp.fig13_bandwidth_utilization();
        let get = |label: &str| util.iter().find(|r| r.label == label).unwrap().value;
        assert!(get("NMP-PaK") > get("CPU-baseline"));

        let traffic = exp.fig14_traffic();
        let baseline = traffic
            .iter()
            .find(|(l, _, _)| l == "CPU-baseline")
            .unwrap();
        let nmp = traffic.iter().find(|(l, _, _)| l == "NMP-PaK").unwrap();
        assert!((baseline.1 - 1.0).abs() < 1e-9);
        assert!(nmp.1 < baseline.1);
        assert!(nmp.2 < baseline.2);
    }

    #[test]
    fn fig15_sweep_improves_then_saturates() {
        let exp = prepared();
        let rows = exp.fig15_pe_sweep(&[1, 4, 16, 32]);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].value <= rows[1].value);
        assert!(rows[1].value <= rows[2].value * 1.001);
    }

    #[test]
    fn comm_table3_supercomputer_and_footprint() {
        let exp = prepared();
        let comm = exp.comm_breakdown();
        assert!(comm.total() > 0);
        assert!(comm.inter_dimm_fraction() > 0.5);

        let table3 = exp.table3_area_power();
        assert!(table3.iter().any(|(l, _, _)| l == "16 PEs"));

        let sc = exp.supercomputer_comparison();
        assert!(sc.nmp_throughput_advantage > 0.0);
        assert!((sc.supercomputer_integration_speedup - 2.7).abs() < 0.3);

        let footprint = exp.footprint_summary();
        assert!(footprint.reduction_factor > 5.0);
        assert!(footprint.unoptimized_peak_bytes > footprint.batched_peak_bytes);
    }

    #[test]
    fn table1_n50_degrades_for_small_batches() {
        let exp = prepared();
        let rows = exp.table1_batch_quality(&[0.05, 1.0]).unwrap();
        assert_eq!(rows.len(), 2);
        let small = rows[0].value;
        let full = rows[1].value;
        assert!(small <= full, "small-batch N50 {small} vs full {full}");
    }
}
