//! Canonical synthetic workloads.
//!
//! The paper's workload is 10 % of the full human genome sequenced at 100× coverage
//! with 100 bp reads (Table 2). These presets reproduce the same *pipeline shape*
//! (read length, coverage, error rate, repeat content) at scales a laptop can
//! simulate; the experiment harness reports normalized quantities so the scale
//! difference does not change who wins.

use nmp_pak_genome::{
    source::collect_reads, GenomeError, InMemorySource, ReadSimulator, ReadSource, ReferenceGenome,
    RepeatSpec, SequencerConfig, SequencingRead,
};

/// A named workload: a read set plus, for synthesized workloads, the reference
/// genome and sequencing configuration the reads were sampled with.
///
/// Workloads built from a streamed [`ReadSource`] (e.g. a FASTQ file via
/// [`Workload::from_read_source`]) carry only the reads.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The reference genome the reads were sampled from, when known
    /// (synthesized workloads only).
    pub genome: Option<ReferenceGenome>,
    /// The short reads.
    pub reads: Vec<SequencingRead>,
    /// The sequencing configuration used, when the reads were simulated.
    pub sequencer: Option<SequencerConfig>,
}

impl Workload {
    /// Builds a workload from explicit parameters.
    pub fn synthesize(
        name: impl Into<String>,
        genome_length: usize,
        coverage: f64,
        error_rate: f64,
        seed: u64,
    ) -> Result<Workload, GenomeError> {
        let genome = ReferenceGenome::builder()
            .length(genome_length)
            .seed(seed)
            .repeats(vec![
                RepeatSpec::new(300, genome_length / 20_000 + 2),
                RepeatSpec::new(120, genome_length / 8_000 + 4),
            ])
            .name(name_for(genome_length))
            .build()?;
        let sequencer = SequencerConfig {
            read_length: 100,
            coverage,
            substitution_error_rate: error_rate,
            seed: seed ^ 0x5EED,
            ..SequencerConfig::default()
        };
        let reads = ReadSimulator::new(sequencer).simulate(&genome)?;
        Ok(Workload {
            name: name.into(),
            genome: Some(genome),
            reads,
            sequencer: Some(sequencer),
        })
    }

    /// Materializes a workload from any streaming [`ReadSource`] — a FASTA or
    /// FASTQ file, a synthetic generator, chunked in-memory reads. The
    /// experiment drivers replay the same reads across every backend, so the
    /// source is drained once here; use the assembler's `*_source` entry points
    /// directly when bounded-memory streaming matters.
    ///
    /// # Errors
    ///
    /// Propagates the source's I/O and parse errors.
    pub fn from_read_source<'s>(
        name: impl Into<String>,
        source: impl ReadSource<'s>,
    ) -> Result<Workload, GenomeError> {
        Ok(Workload {
            name: name.into(),
            genome: None,
            reads: collect_reads(source)?,
            sequencer: None,
        })
    }

    /// A zero-copy streaming source over this workload's reads (one chunk).
    pub fn source(&self) -> InMemorySource<'_> {
        InMemorySource::new(&self.reads)
    }

    /// Length of the reference genome, when known.
    pub fn genome_length(&self) -> Option<usize> {
        self.genome.as_ref().map(ReferenceGenome::len)
    }

    /// A tiny workload for unit tests (≈ 20 kbp, 20×).
    pub fn tiny(seed: u64) -> Result<Workload, GenomeError> {
        Workload::synthesize("tiny", 20_000, 20.0, 0.0, seed)
    }

    /// A small workload for fast experiments (≈ 100 kbp, 30×).
    pub fn small(seed: u64) -> Result<Workload, GenomeError> {
        Workload::synthesize("small", 100_000, 30.0, 0.002, seed)
    }

    /// A medium workload for the headline experiments (≈ 500 kbp, 40×).
    pub fn medium(seed: u64) -> Result<Workload, GenomeError> {
        Workload::synthesize("medium", 500_000, 40.0, 0.002, seed)
    }

    /// Total bases across all reads.
    pub fn total_read_bases(&self) -> u64 {
        self.reads.iter().map(|r| r.len() as u64).sum()
    }
}

fn name_for(length: usize) -> String {
    format!("synthetic_{length}bp")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_has_expected_scale() {
        let w = Workload::tiny(1).unwrap();
        assert_eq!(w.genome_length(), Some(20_000));
        assert_eq!(w.reads.len(), 4_000);
        assert_eq!(w.total_read_bases(), 400_000);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Workload::tiny(5).unwrap();
        let b = Workload::tiny(5).unwrap();
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.reads, b.reads);
        let c = Workload::tiny(6).unwrap();
        assert_ne!(a.reads, c.reads);
    }

    #[test]
    fn synthesize_respects_parameters() {
        let w = Workload::synthesize("x", 50_000, 10.0, 0.01, 2).unwrap();
        assert_eq!(w.genome_length(), Some(50_000));
        assert_eq!(w.reads.len(), 5_000);
        let sequencer = w
            .sequencer
            .expect("synthesized workloads record the sequencer");
        assert!((sequencer.substitution_error_rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn from_read_source_materializes_the_stream() {
        let synthesized = Workload::tiny(8).unwrap();
        let streamed = Workload::from_read_source(
            "streamed",
            nmp_pak_genome::InMemorySource::chunked(&synthesized.reads, 100),
        )
        .unwrap();
        assert_eq!(streamed.reads, synthesized.reads);
        assert_eq!(streamed.genome_length(), None);
        assert!(streamed.sequencer.is_none());
        assert_eq!(streamed.total_read_bases(), synthesized.total_read_bases());
    }

    #[test]
    fn workload_source_round_trips() {
        let w = Workload::tiny(9).unwrap();
        let collected = nmp_pak_genome::source::collect_reads(w.source()).unwrap();
        assert_eq!(collected, w.reads);
    }
}
