//! Execution backends (§5.3 of the paper).
//!
//! Iterative Compaction — the phase NMP-PaK accelerates — can be simulated on any of
//! the paper's baseline and proposed configurations. All backends replay the same
//! [`nmp_pak_pakman::CompactionTrace`], so they perform the same assembly work and
//! differ only in where and how the MacroNode accesses execute.

use nmp_pak_memsim::cpu::simulate_cpu_compaction;
use nmp_pak_memsim::gpu::simulate_gpu_compaction;
use nmp_pak_memsim::{
    CpuConfig, DramConfig, GpuConfig, MemoryStats, NodeLayout, ProcessFlow, TrafficSummary,
};
use nmp_pak_nmphw::{CommStats, NmpConfig, NmpSystem};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// The execution configurations compared in Figs. 12–14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionBackend {
    /// PaKman software before the §4.5 parallelism/memory optimizations
    /// ("W/O SW-opt" in Fig. 12).
    CpuBaselineUnoptimized,
    /// The software-optimized PaKman on the host CPU with the original
    /// sequential-stage process flow — the paper's **CPU baseline**.
    CpuBaseline,
    /// The NMP-PaK software optimizations (pipelined flow, batching) executed on the
    /// CPU — the paper's **CPU-PaK**.
    CpuPak,
    /// An A100-class GPU running the optimized flow — the paper's **GPU baseline**.
    GpuBaseline,
    /// The proposed near-memory design — **NMP-PaK**.
    NmpPak,
    /// NMP-PaK with infinitely fast PEs (§5.3).
    NmpIdealPe,
    /// NMP-PaK with ideal P1→P3 forwarding logic (§5.3).
    NmpIdealForwarding,
}

impl ExecutionBackend {
    /// All backends, in the order Fig. 12 plots them.
    pub const ALL: [ExecutionBackend; 7] = [
        ExecutionBackend::CpuBaselineUnoptimized,
        ExecutionBackend::CpuBaseline,
        ExecutionBackend::GpuBaseline,
        ExecutionBackend::CpuPak,
        ExecutionBackend::NmpPak,
        ExecutionBackend::NmpIdealPe,
        ExecutionBackend::NmpIdealForwarding,
    ];

    /// The label used by the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionBackend::CpuBaselineUnoptimized => "W/O SW-opt",
            ExecutionBackend::CpuBaseline => "CPU-baseline",
            ExecutionBackend::CpuPak => "CPU-PaK",
            ExecutionBackend::GpuBaseline => "GPU-baseline",
            ExecutionBackend::NmpPak => "NMP-PaK",
            ExecutionBackend::NmpIdealPe => "NMP-PaK+ideal-PE",
            ExecutionBackend::NmpIdealForwarding => "NMP-PaK+ideal-fwd",
        }
    }
}

/// Machine configuration shared by every backend simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Main-memory organization (shared by the CPU host and the NMP DIMMs).
    pub dram: DramConfig,
    /// Host CPU parameters.
    pub cpu: CpuConfig,
    /// GPU baseline parameters.
    pub gpu: GpuConfig,
    /// NMP configuration for the proposed design.
    pub nmp: NmpConfig,
    /// Thread count modelling the unoptimized software's limited parallel sections
    /// (the paper measures an ≈11.6× compaction slowdown before §4.5).
    pub unoptimized_threads: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            dram: DramConfig::default(),
            cpu: CpuConfig::default(),
            gpu: GpuConfig::default(),
            nmp: NmpConfig::default(),
            unoptimized_threads: 6,
        }
    }
}

/// The outcome of simulating Iterative Compaction on one backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendResult {
    /// Which backend produced this result.
    pub backend: ExecutionBackend,
    /// Simulated compaction runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Read/write traffic.
    pub traffic: TrafficSummary,
    /// Memory statistics (achieved bandwidth over the run).
    pub memory: MemoryStats,
    /// Stall breakdown, for CPU backends.
    pub stall: Option<nmp_pak_memsim::StallBreakdown>,
    /// TransferNode routing locality, for NMP backends.
    pub comm: Option<CommStats>,
    /// `true` if the workload footprint exceeded the backend's memory capacity
    /// (GPU baseline only).
    pub capacity_exceeded: bool,
}

impl BackendResult {
    /// Fraction of peak memory bandwidth achieved (Fig. 13).
    pub fn bandwidth_utilization(&self) -> f64 {
        self.memory.bandwidth_utilization()
    }

    /// Speedup of this backend over `baseline` (Fig. 12's normalization).
    pub fn speedup_over(&self, baseline: &BackendResult) -> f64 {
        if self.runtime_ns <= 0.0 {
            return 0.0;
        }
        baseline.runtime_ns / self.runtime_ns
    }
}

/// Simulates Iterative Compaction on `backend`.
///
/// `footprint_bytes` is the workload's peak memory footprint (used for the GPU
/// capacity check).
pub fn simulate_backend(
    backend: ExecutionBackend,
    trace: &CompactionTrace,
    layout: &NodeLayout,
    footprint_bytes: u64,
    config: &SystemConfig,
) -> BackendResult {
    match backend {
        ExecutionBackend::CpuBaselineUnoptimized => {
            let cpu = CpuConfig {
                threads: config.unoptimized_threads,
                ..config.cpu
            };
            let r =
                simulate_cpu_compaction(trace, layout, ProcessFlow::Baseline, &config.dram, &cpu);
            from_cpu(backend, r)
        }
        ExecutionBackend::CpuBaseline => {
            let r = simulate_cpu_compaction(
                trace,
                layout,
                ProcessFlow::Baseline,
                &config.dram,
                &config.cpu,
            );
            from_cpu(backend, r)
        }
        ExecutionBackend::CpuPak => {
            let r = simulate_cpu_compaction(
                trace,
                layout,
                ProcessFlow::Optimized,
                &config.dram,
                &config.cpu,
            );
            from_cpu(backend, r)
        }
        ExecutionBackend::GpuBaseline => {
            let r =
                simulate_gpu_compaction(trace, layout, &config.dram, &config.gpu, footprint_bytes);
            BackendResult {
                backend,
                runtime_ns: r.runtime_ns,
                traffic: r.traffic,
                memory: r.memory,
                stall: None,
                comm: None,
                capacity_exceeded: r.capacity_exceeded,
            }
        }
        ExecutionBackend::NmpPak
        | ExecutionBackend::NmpIdealPe
        | ExecutionBackend::NmpIdealForwarding => {
            let nmp_config = match backend {
                ExecutionBackend::NmpIdealPe => NmpConfig {
                    pe_variant: nmp_pak_nmphw::PeVariant::Ideal,
                    ..config.nmp
                },
                ExecutionBackend::NmpIdealForwarding => NmpConfig {
                    ideal_forwarding: true,
                    ..config.nmp
                },
                _ => config.nmp,
            };
            let system = NmpSystem::new(nmp_config, config.dram, config.cpu);
            let r = system.simulate(trace, layout);
            BackendResult {
                backend,
                runtime_ns: r.runtime_ns,
                traffic: r.traffic,
                memory: r.memory,
                stall: None,
                comm: Some(r.comm),
                capacity_exceeded: false,
            }
        }
    }
}

fn from_cpu(backend: ExecutionBackend, r: nmp_pak_memsim::CpuRunResult) -> BackendResult {
    BackendResult {
        backend,
        runtime_ns: r.runtime_ns,
        traffic: r.traffic,
        memory: r.memory,
        stall: Some(r.stall),
        comm: None,
        capacity_exceeded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::trace::{IterationTrace, NodeCheck, TransferEvent, UpdateEvent};

    fn synthetic() -> (CompactionTrace, NodeLayout) {
        let nodes = 3_000usize;
        let sizes: Vec<usize> = (0..nodes)
            .map(|i| {
                if i % 89 == 0 {
                    5_000
                } else {
                    220 + (i % 8) * 100
                }
            })
            .collect();
        let mut trace = CompactionTrace::new(nodes, sizes.clone());
        for it in 0..5 {
            let alive = nodes - it * 400;
            let checks: Vec<NodeCheck> = (0..alive)
                .map(|slot| NodeCheck {
                    slot,
                    size_bytes: sizes[slot] + it * 24,
                    invalidated: slot % 5 == 3,
                })
                .collect();
            let transfers: Vec<TransferEvent> = checks
                .iter()
                .filter(|c| c.invalidated)
                .flat_map(|c| {
                    [
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: (c.slot * 7919 + 3) % alive,
                            size_bytes: 48,
                        },
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: (c.slot * 104_729 + 11) % alive,
                            size_bytes: 48,
                        },
                    ]
                })
                .collect();
            let updates: Vec<UpdateEvent> = transfers
                .iter()
                .map(|t| UpdateEvent {
                    dest_slot: t.dest_slot,
                    size_bytes: sizes[t.dest_slot] + 48,
                })
                .collect();
            trace.iterations.push(IterationTrace {
                checks,
                transfers,
                updates,
            });
        }
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        (trace, layout)
    }

    #[test]
    fn backend_ordering_matches_the_paper() {
        let (trace, layout) = synthetic();
        let cfg = SystemConfig::default();
        let results: Vec<BackendResult> = ExecutionBackend::ALL
            .iter()
            .map(|&b| simulate_backend(b, &trace, &layout, 1 << 30, &cfg))
            .collect();
        let by = |b: ExecutionBackend| results.iter().find(|r| r.backend == b).unwrap();

        let baseline = by(ExecutionBackend::CpuBaseline);
        let unopt = by(ExecutionBackend::CpuBaselineUnoptimized);
        let cpu_pak = by(ExecutionBackend::CpuPak);
        let gpu = by(ExecutionBackend::GpuBaseline);
        let nmp = by(ExecutionBackend::NmpPak);
        let ideal_pe = by(ExecutionBackend::NmpIdealPe);
        let ideal_fwd = by(ExecutionBackend::NmpIdealForwarding);

        // Fig. 12's ordering: W/O SW-opt < CPU baseline < {CPU-PaK, GPU} < NMP ≤ ideal.
        assert!(unopt.speedup_over(baseline) < 1.0);
        assert!(cpu_pak.speedup_over(baseline) > 1.2);
        assert!(gpu.speedup_over(baseline) > 1.2);
        assert!(nmp.speedup_over(baseline) > cpu_pak.speedup_over(baseline));
        assert!(nmp.speedup_over(baseline) > gpu.speedup_over(baseline));
        assert!(
            nmp.speedup_over(baseline) > 5.0,
            "nmp speedup {}",
            nmp.speedup_over(baseline)
        );
        assert!(ideal_pe.speedup_over(baseline) >= nmp.speedup_over(baseline) * 0.95);
        assert!(ideal_fwd.speedup_over(baseline) >= nmp.speedup_over(baseline));
    }

    #[test]
    fn bandwidth_utilization_ordering() {
        let (trace, layout) = synthetic();
        let cfg = SystemConfig::default();
        let cpu = simulate_backend(
            ExecutionBackend::CpuBaseline,
            &trace,
            &layout,
            1 << 30,
            &cfg,
        );
        let nmp = simulate_backend(ExecutionBackend::NmpPak, &trace, &layout, 1 << 30, &cfg);
        assert!(nmp.bandwidth_utilization() > 3.0 * cpu.bandwidth_utilization());
    }

    #[test]
    fn traffic_ordering_matches_fig14() {
        let (trace, layout) = synthetic();
        let cfg = SystemConfig::default();
        let cpu = simulate_backend(
            ExecutionBackend::CpuBaseline,
            &trace,
            &layout,
            1 << 30,
            &cfg,
        );
        let cpu_pak = simulate_backend(ExecutionBackend::CpuPak, &trace, &layout, 1 << 30, &cfg);
        let nmp = simulate_backend(ExecutionBackend::NmpPak, &trace, &layout, 1 << 30, &cfg);
        let fwd = simulate_backend(
            ExecutionBackend::NmpIdealForwarding,
            &trace,
            &layout,
            1 << 30,
            &cfg,
        );
        // CPU-PaK and NMP-PaK share the optimized flow → identical traffic, below the baseline.
        assert_eq!(cpu_pak.traffic, nmp.traffic);
        assert!(nmp.traffic.read_bytes < cpu.traffic.read_bytes);
        assert!(nmp.traffic.write_bytes < cpu.traffic.write_bytes);
        // Ideal forwarding trims reads further but not writes.
        assert!(fwd.traffic.read_bytes < nmp.traffic.read_bytes);
        assert_eq!(fwd.traffic.write_bytes, nmp.traffic.write_bytes);
    }

    #[test]
    fn gpu_capacity_flag_propagates() {
        let (trace, layout) = synthetic();
        let cfg = SystemConfig::default();
        let ok = simulate_backend(
            ExecutionBackend::GpuBaseline,
            &trace,
            &layout,
            1 << 30,
            &cfg,
        );
        assert!(!ok.capacity_exceeded);
        let over = simulate_backend(
            ExecutionBackend::GpuBaseline,
            &trace,
            &layout,
            500 << 30,
            &cfg,
        );
        assert!(over.capacity_exceeded);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            ExecutionBackend::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), ExecutionBackend::ALL.len());
    }
}
