//! NMP-PaK: the end-to-end system.
//!
//! This crate ties the software pipeline (`nmp-pak-pakman`), the memory-system
//! substrate (`nmp-pak-memsim`) and the hardware model (`nmp-pak-nmphw`) into the
//! system the paper evaluates:
//!
//! * [`workload`] — canonical synthetic workloads (genome + simulated reads) at
//!   laptop-friendly scales,
//! * [`assembler`] — [`assembler::NmpPakAssembler`], the top-level API: run the
//!   software pipeline, record the compaction trace, and simulate Iterative
//!   Compaction on a chosen execution backend,
//! * [`backend`] — the execution backends of §5.3 (CPU baseline with and without
//!   software optimizations, CPU-PaK, GPU baseline, NMP-PaK, ideal-PE and
//!   ideal-forwarding variants),
//! * [`experiments`] — one driver per table/figure of the evaluation (Figs. 5–15,
//!   Tables 1 and 3, §6.3, §6.4, §6.6).
//!
//! ```
//! use nmp_pak_core::workload::Workload;
//! use nmp_pak_core::assembler::NmpPakAssembler;
//! use nmp_pak_core::backend::ExecutionBackend;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = Workload::tiny(7)?;
//! let assembler = NmpPakAssembler::default();
//! let run = assembler.run(&workload, ExecutionBackend::NmpPak)?;
//! assert!(run.backend_result.runtime_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assembler;
pub mod backend;
pub mod experiments;
pub mod workload;

pub use assembler::{NmpPakAssembler, SystemRun};
pub use backend::{BackendResult, ExecutionBackend, SystemConfig};
pub use workload::Workload;
