//! NMP-PaK: the end-to-end system.
//!
//! This crate ties the software pipeline (`nmp-pak-pakman`), the memory-system
//! substrate (`nmp-pak-memsim`) and the hardware model (`nmp-pak-nmphw`) into the
//! system the paper evaluates:
//!
//! * [`workload`] — canonical synthetic workloads (genome + simulated reads) at
//!   laptop-friendly scales,
//! * [`assembler`] — [`assembler::NmpPakAssembler`], the top-level API: run the
//!   software pipeline, record the compaction trace, and simulate Iterative
//!   Compaction on a chosen execution backend,
//! * [`backend`] — the pluggable [`backend::CompactionBackend`] trait, the
//!   [`backend::BackendRegistry`], and the seven §5.3 configurations (CPU
//!   baseline with and without software optimizations, CPU-PaK, GPU baseline,
//!   NMP-PaK, ideal-PE and ideal-forwarding variants) as registrable backends,
//! * [`experiments`] — one driver per table/figure of the evaluation (Figs. 5–15,
//!   Tables 1 and 3, §6.3, §6.4, §6.6).
//!
//! ```
//! use nmp_pak_core::workload::Workload;
//! use nmp_pak_core::assembler::NmpPakAssembler;
//! use nmp_pak_core::backend::BackendId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = Workload::tiny(7)?;
//! let assembler = NmpPakAssembler::default();
//! let run = assembler.run(&workload, BackendId::NMP_PAK)?;
//! assert!(run.backend_result.runtime_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assembler;
pub mod backend;
pub mod experiments;
pub mod workload;

pub use assembler::{NmpPakAssembler, SystemRun};
pub use backend::{
    BackendId, BackendRegistry, BackendResult, CapacityVerdict, CompactionBackend,
    SimulationContext, SystemConfig,
};
pub use workload::Workload;
