//! The top-level NMP-PaK assembler API.
//!
//! [`NmpPakAssembler::run`] performs the complete flow of the paper: run the
//! software-optimized PaKman pipeline on the reads (recording the Iterative
//! Compaction trace), lay the MacroNodes out across the DIMMs, and simulate the
//! compaction phase on the selected execution backend. The result bundles the
//! assembly output (contigs, N50, footprint) with the hardware-simulation result
//! (runtime, traffic, bandwidth, communication locality).
//!
//! Backends are selected by [`BackendId`] and resolved through the
//! [`BackendRegistry`]; [`NmpPakAssembler::run_with`] accepts any
//! [`CompactionBackend`] trait object directly, registered or not.

use crate::backend::{
    BackendId, BackendRegistry, BackendResult, CompactionBackend, SimulationContext, SystemConfig,
};
use crate::workload::Workload;
use nmp_pak_genome::ReadSource;
use nmp_pak_memsim::NodeLayout;
use nmp_pak_pakman::{AssemblyOutput, CompactionTrace, PakmanAssembler, PakmanConfig, PakmanError};

/// The complete result of one system run.
#[derive(Debug)]
pub struct SystemRun {
    /// Software assembly output (contigs, quality, phase timings, compaction stats).
    pub assembly: AssemblyOutput,
    /// The MacroNode layout used by the hardware simulation.
    pub layout: NodeLayout,
    /// The backend simulation result for the Iterative Compaction phase.
    pub backend_result: BackendResult,
}

/// Top-level assembler: software pipeline plus backend simulation.
#[derive(Debug, Clone)]
pub struct NmpPakAssembler {
    /// PaKman software configuration.
    pub pakman: PakmanConfig,
    /// Machine configuration for the backend simulations.
    pub system: SystemConfig,
}

impl Default for NmpPakAssembler {
    fn default() -> Self {
        NmpPakAssembler {
            pakman: PakmanConfig {
                k: 21,
                min_kmer_count: 2,
                compaction_node_threshold: 100,
                threads: 4,
                record_trace: true,
                ..PakmanConfig::default()
            },
            system: SystemConfig::default(),
        }
    }
}

impl NmpPakAssembler {
    /// Creates an assembler with explicit configurations.
    pub fn new(pakman: PakmanConfig, system: SystemConfig) -> Self {
        let pakman = PakmanConfig {
            record_trace: true,
            ..pakman
        };
        NmpPakAssembler { pakman, system }
    }

    /// The standard backend registry for this assembler's machine configuration
    /// (the seven §5.3 configurations, in Fig. 12 order).
    pub fn registry(&self) -> BackendRegistry {
        BackendRegistry::standard(&self.system)
    }

    /// Runs the software pipeline once, returning the assembly output plus the
    /// replay inputs every backend shares.
    fn run_software(
        &self,
        workload: &Workload,
    ) -> Result<(AssemblyOutput, CompactionTrace, NodeLayout), PakmanError> {
        let assembly = PakmanAssembler::new(self.pakman).assemble(&workload.reads)?;
        self.replay_inputs(assembly)
    }

    /// Extracts the trace and MacroNode layout every backend replays.
    fn replay_inputs(
        &self,
        assembly: AssemblyOutput,
    ) -> Result<(AssemblyOutput, CompactionTrace, NodeLayout), PakmanError> {
        let trace = assembly
            .trace
            .clone()
            .expect("trace recording is forced on by NmpPakAssembler");
        let layout = NodeLayout::new(&trace.initial_sizes, &self.system.dram);
        Ok((assembly, trace, layout))
    }

    /// Runs the pipeline on `workload` and simulates compaction on the backend
    /// registered under `backend`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the software
    /// pipeline, and returns [`PakmanError::InvalidConfig`] for an id that is not
    /// in the standard registry (use [`NmpPakAssembler::run_with`] for custom
    /// backends).
    pub fn run(
        &self,
        workload: &Workload,
        backend: impl Into<BackendId>,
    ) -> Result<SystemRun, PakmanError> {
        let id = backend.into();
        let registry = self.registry();
        let backend = registry.get(id).ok_or_else(|| PakmanError::InvalidConfig {
            message: format!("backend id `{id}` is not in the standard registry"),
        })?;
        self.run_with(workload, backend)
    }

    /// Runs the pipeline on `workload` and simulates compaction on an explicit
    /// backend object.
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the software pipeline.
    pub fn run_with(
        &self,
        workload: &Workload,
        backend: &dyn CompactionBackend,
    ) -> Result<SystemRun, PakmanError> {
        let (assembly, trace, layout) = self.run_software(workload)?;
        let ctx = Self::context_for(&assembly);
        let backend_result = backend.simulate(&trace, &layout, &ctx);
        Ok(SystemRun {
            assembly,
            layout,
            backend_result,
        })
    }

    /// The simulation context for an assembly: peak footprint plus — when the
    /// software ran sharded — the full *measured* sharding telemetry, so
    /// spatial backends stop assuming perfectly uniform work: scalar-only
    /// models read the derived load-imbalance factor, while the NMP channel
    /// model folds per-shard work and the mailbox byte matrix onto its
    /// channels directly.
    pub fn context_for(assembly: &AssemblyOutput) -> SimulationContext {
        let ctx = SimulationContext::new(assembly.footprint.peak_bytes());
        match &assembly.sharding {
            Some(telemetry) => ctx.with_sharding(telemetry.clone()),
            None => ctx,
        }
    }

    /// Runs the pipeline over a streaming [`ReadSource`] (a FASTA/FASTQ file, a
    /// synthetic generator, chunked in-memory reads) and simulates compaction on
    /// the backend registered under `backend`. The reads stream through stage A
    /// without a `Workload` ever being materialized by the caller.
    ///
    /// # Errors
    ///
    /// Propagates source I/O/parse errors and software-pipeline errors, and
    /// returns [`PakmanError::InvalidConfig`] for an id that is not in the
    /// standard registry.
    pub fn run_source<'s>(
        &self,
        source: impl ReadSource<'s>,
        backend: impl Into<BackendId>,
    ) -> Result<SystemRun, PakmanError> {
        let id = backend.into();
        let registry = self.registry();
        let backend = registry.get(id).ok_or_else(|| PakmanError::InvalidConfig {
            message: format!("backend id `{id}` is not in the standard registry"),
        })?;
        let assembly = PakmanAssembler::new(self.pakman).assemble_source(source)?;
        let (assembly, trace, layout) = self.replay_inputs(assembly)?;
        let ctx = Self::context_for(&assembly);
        let backend_result = backend.simulate(&trace, &layout, &ctx);
        Ok(SystemRun {
            assembly,
            layout,
            backend_result,
        })
    }

    /// Runs the software pipeline once and simulates every registered backend on
    /// the same trace, returning results in registry (Fig. 12) order.
    ///
    /// # Errors
    ///
    /// Propagates errors from the software pipeline.
    pub fn run_all_backends(
        &self,
        workload: &Workload,
    ) -> Result<(AssemblyOutput, Vec<BackendResult>), PakmanError> {
        let (assembly, trace, layout) = self.run_software(workload)?;
        let ctx = Self::context_for(&assembly);
        let results = self.registry().simulate_all(&trace, &layout, &ctx);
        Ok((assembly, results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{GpuBackend, NmpBackend};

    #[test]
    fn run_produces_contigs_and_a_backend_result() {
        let workload = Workload::tiny(3).unwrap();
        let assembler = NmpPakAssembler::default();
        let run = assembler.run(&workload, BackendId::NMP_PAK).unwrap();
        assert!(!run.assembly.contigs.is_empty());
        assert!(run.backend_result.runtime_ns > 0.0);
        assert!(run.layout.slot_count() > 0);
        assert_eq!(run.backend_result.backend, BackendId::NMP_PAK);
        assert_eq!(run.backend_result.label, "NMP-PaK");
    }

    #[test]
    fn unknown_backend_id_is_rejected() {
        let workload = Workload::tiny(4).unwrap();
        let assembler = NmpPakAssembler::default();
        assert!(matches!(
            assembler.run(&workload, BackendId::new("warp-drive")),
            Err(PakmanError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn run_with_accepts_unregistered_backends() {
        let workload = Workload::tiny(8).unwrap();
        let assembler = NmpPakAssembler::default();
        let custom = GpuBackend::custom(
            BackendId::new("gpu-80gb"),
            "GPU-80GB",
            assembler.system.dram,
            nmp_pak_memsim::GpuConfig::a100_80gb(),
        );
        let run = assembler.run_with(&workload, &custom).unwrap();
        assert_eq!(run.backend_result.backend, BackendId::new("gpu-80gb"));
        assert!(run.backend_result.runtime_ns > 0.0);
    }

    #[test]
    fn all_backends_share_the_same_software_trace() {
        let workload = Workload::tiny(9).unwrap();
        let assembler = NmpPakAssembler::default();
        let (assembly, results) = assembler.run_all_backends(&workload).unwrap();
        assert_eq!(results.len(), assembler.registry().len());
        assert!(assembly.stats.total_length > 0);
        // NMP-PaK outperforms the CPU baseline on the shared trace.
        let cpu = results
            .iter()
            .find(|r| r.backend == BackendId::CPU_BASELINE)
            .unwrap();
        let nmp = results
            .iter()
            .find(|r| r.backend == BackendId::NMP_PAK)
            .unwrap();
        assert!(nmp.speedup_over(cpu) > 1.0);
    }

    #[test]
    fn trace_recording_is_forced_on() {
        let assembler = NmpPakAssembler::new(
            PakmanConfig {
                record_trace: false,
                k: 17,
                min_kmer_count: 1,
                ..PakmanConfig::default()
            },
            SystemConfig::default(),
        );
        assert!(assembler.pakman.record_trace);
    }

    #[test]
    fn run_source_matches_the_workload_path() {
        let workload = Workload::tiny(6).unwrap();
        let assembler = NmpPakAssembler::default();
        let via_workload = assembler.run(&workload, BackendId::NMP_PAK).unwrap();
        let via_source = assembler
            .run_source(workload.source(), BackendId::NMP_PAK)
            .unwrap();
        assert_eq!(via_source.assembly.contigs, via_workload.assembly.contigs);
        assert_eq!(via_source.backend_result, via_workload.backend_result);
    }

    #[test]
    fn hand_built_backend_matches_the_registry() {
        let workload = Workload::tiny(12).unwrap();
        let assembler = NmpPakAssembler::default();
        let via_id = assembler.run(&workload, BackendId::NMP_PAK).unwrap();
        let direct = assembler
            .run_with(&workload, &NmpBackend::pak(&assembler.system))
            .unwrap();
        assert_eq!(direct.backend_result, via_id.backend_result);
    }
}
