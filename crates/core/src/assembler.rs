//! The top-level NMP-PaK assembler API.
//!
//! [`NmpPakAssembler::run`] performs the complete flow of the paper: run the
//! software-optimized PaKman pipeline on the reads (recording the Iterative
//! Compaction trace), lay the MacroNodes out across the DIMMs, and simulate the
//! compaction phase on the selected execution backend. The result bundles the
//! assembly output (contigs, N50, footprint) with the hardware-simulation result
//! (runtime, traffic, bandwidth, communication locality).

use crate::backend::{simulate_backend, BackendResult, ExecutionBackend, SystemConfig};
use crate::workload::Workload;
use nmp_pak_memsim::NodeLayout;
use nmp_pak_pakman::{AssemblyOutput, PakmanAssembler, PakmanConfig, PakmanError};

/// The complete result of one system run.
#[derive(Debug)]
pub struct SystemRun {
    /// Software assembly output (contigs, quality, phase timings, compaction stats).
    pub assembly: AssemblyOutput,
    /// The MacroNode layout used by the hardware simulation.
    pub layout: NodeLayout,
    /// The backend simulation result for the Iterative Compaction phase.
    pub backend_result: BackendResult,
}

/// Top-level assembler: software pipeline plus backend simulation.
#[derive(Debug, Clone)]
pub struct NmpPakAssembler {
    /// PaKman software configuration.
    pub pakman: PakmanConfig,
    /// Machine configuration for the backend simulations.
    pub system: SystemConfig,
}

impl Default for NmpPakAssembler {
    fn default() -> Self {
        NmpPakAssembler {
            pakman: PakmanConfig {
                k: 21,
                min_kmer_count: 2,
                compaction_node_threshold: 100,
                threads: 4,
                record_trace: true,
                ..PakmanConfig::default()
            },
            system: SystemConfig::default(),
        }
    }
}

impl NmpPakAssembler {
    /// Creates an assembler with explicit configurations.
    pub fn new(pakman: PakmanConfig, system: SystemConfig) -> Self {
        let pakman = PakmanConfig {
            record_trace: true,
            ..pakman
        };
        NmpPakAssembler { pakman, system }
    }

    /// Runs the pipeline on `workload` and simulates compaction on `backend`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and empty-input errors from the software pipeline.
    pub fn run(
        &self,
        workload: &Workload,
        backend: ExecutionBackend,
    ) -> Result<SystemRun, PakmanError> {
        let assembly = PakmanAssembler::new(self.pakman).assemble(&workload.reads)?;
        let trace = assembly
            .trace
            .clone()
            .expect("trace recording is forced on by NmpPakAssembler");
        let layout = NodeLayout::new(&trace.initial_sizes, &self.system.dram);
        let backend_result = simulate_backend(
            backend,
            &trace,
            &layout,
            assembly.footprint.peak_bytes(),
            &self.system,
        );
        Ok(SystemRun {
            assembly,
            layout,
            backend_result,
        })
    }

    /// Runs the software pipeline once and simulates every backend on the same trace,
    /// returning results in [`ExecutionBackend::ALL`] order.
    ///
    /// # Errors
    ///
    /// Propagates errors from the software pipeline.
    pub fn run_all_backends(
        &self,
        workload: &Workload,
    ) -> Result<(AssemblyOutput, Vec<BackendResult>), PakmanError> {
        let assembly = PakmanAssembler::new(self.pakman).assemble(&workload.reads)?;
        let trace = assembly
            .trace
            .clone()
            .expect("trace recording is forced on by NmpPakAssembler");
        let layout = NodeLayout::new(&trace.initial_sizes, &self.system.dram);
        let results = ExecutionBackend::ALL
            .iter()
            .map(|&backend| {
                simulate_backend(
                    backend,
                    &trace,
                    &layout,
                    assembly.footprint.peak_bytes(),
                    &self.system,
                )
            })
            .collect();
        Ok((assembly, results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_contigs_and_a_backend_result() {
        let workload = Workload::tiny(3).unwrap();
        let assembler = NmpPakAssembler::default();
        let run = assembler.run(&workload, ExecutionBackend::NmpPak).unwrap();
        assert!(!run.assembly.contigs.is_empty());
        assert!(run.backend_result.runtime_ns > 0.0);
        assert!(run.layout.slot_count() > 0);
        assert_eq!(run.backend_result.backend, ExecutionBackend::NmpPak);
    }

    #[test]
    fn all_backends_share_the_same_software_trace() {
        let workload = Workload::tiny(9).unwrap();
        let assembler = NmpPakAssembler::default();
        let (assembly, results) = assembler.run_all_backends(&workload).unwrap();
        assert_eq!(results.len(), ExecutionBackend::ALL.len());
        assert!(assembly.stats.total_length > 0);
        // NMP-PaK outperforms the CPU baseline on the shared trace.
        let cpu = results
            .iter()
            .find(|r| r.backend == ExecutionBackend::CpuBaseline)
            .unwrap();
        let nmp = results
            .iter()
            .find(|r| r.backend == ExecutionBackend::NmpPak)
            .unwrap();
        assert!(nmp.speedup_over(cpu) > 1.0);
    }

    #[test]
    fn trace_recording_is_forced_on() {
        let assembler = NmpPakAssembler::new(
            PakmanConfig {
                record_trace: false,
                k: 17,
                min_kmer_count: 1,
                ..PakmanConfig::default()
            },
            SystemConfig::default(),
        );
        assert!(assembler.pakman.record_trace);
    }
}
