//! Host-CPU execution backends: the paper's "W/O SW-opt", "CPU-baseline" and
//! "CPU-PaK" configurations (§5.3, Fig. 12).
//!
//! All three replay the compaction trace through the analytic multicore model in
//! [`nmp_pak_memsim::cpu`]; they differ in the process flow (sequential-stage vs
//! the §4.5 pipelined flow) and in the core budget.

use super::{BackendId, BackendResult, CompactionBackend, SimulationContext, SystemConfig};
use nmp_pak_memsim::cpu::simulate_cpu_compaction;
use nmp_pak_memsim::{CpuConfig, DramConfig, NodeLayout, ProcessFlow};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// Configuration of the unoptimized-software CPU backend.
///
/// Before the §4.5 optimizations, PaKman's compaction parallelizes poorly (the
/// paper measures an ≈11.6× compaction slowdown), modelled here as a limited
/// thread count. This knob used to be `SystemConfig::unoptimized_threads`, where
/// every other backend silently ignored it; it now lives with the one backend
/// that uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnoptimizedCpuConfig {
    /// Thread count modelling the unoptimized software's limited parallel
    /// sections.
    pub threads: usize,
}

impl Default for UnoptimizedCpuConfig {
    fn default() -> Self {
        UnoptimizedCpuConfig { threads: 6 }
    }
}

/// A host-CPU backend: one process flow on one core/memory configuration.
#[derive(Debug, Clone, Copy)]
pub struct CpuBackend {
    id: BackendId,
    label: &'static str,
    flow: ProcessFlow,
    dram: DramConfig,
    cpu: CpuConfig,
}

impl CpuBackend {
    /// The paper's **CPU baseline**: optimized software, sequential-stage flow.
    pub fn baseline(config: &SystemConfig) -> CpuBackend {
        CpuBackend {
            id: BackendId::CPU_BASELINE,
            label: "CPU-baseline",
            flow: ProcessFlow::Baseline,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// The paper's **W/O SW-opt** configuration: the pre-§4.5 software, modelled
    /// by restricting the baseline to `unoptimized.threads` cores.
    pub fn unoptimized(config: &SystemConfig, unoptimized: UnoptimizedCpuConfig) -> CpuBackend {
        CpuBackend {
            id: BackendId::CPU_BASELINE_UNOPTIMIZED,
            label: "W/O SW-opt",
            flow: ProcessFlow::Baseline,
            dram: config.dram,
            cpu: CpuConfig {
                threads: unoptimized.threads,
                ..config.cpu
            },
        }
    }

    /// The paper's **CPU-PaK**: the NMP-PaK software optimizations (pipelined
    /// flow, batching) executed on the host CPU.
    pub fn pak(config: &SystemConfig) -> CpuBackend {
        CpuBackend {
            id: BackendId::CPU_PAK,
            label: "CPU-PaK",
            flow: ProcessFlow::Optimized,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// A fully custom CPU backend (ablations, alternative hosts).
    pub fn custom(
        id: BackendId,
        label: &'static str,
        flow: ProcessFlow,
        dram: DramConfig,
        cpu: CpuConfig,
    ) -> CpuBackend {
        CpuBackend {
            id,
            label,
            flow,
            dram,
            cpu,
        }
    }

    /// The core/memory model this backend simulates with.
    pub fn cpu_config(&self) -> &CpuConfig {
        &self.cpu
    }
}

impl CompactionBackend for CpuBackend {
    fn id(&self) -> BackendId {
        self.id
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        _ctx: &SimulationContext,
    ) -> BackendResult {
        let r = simulate_cpu_compaction(trace, layout, self.flow, &self.dram, &self.cpu);
        BackendResult {
            backend: self.id,
            label: self.label,
            runtime_ns: r.runtime_ns,
            traffic: r.traffic,
            memory: r.memory,
            stall: Some(r.stall),
            comm: None,
            capacity_exceeded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::super::SimulationContext;
    use super::*;

    #[test]
    fn unoptimized_threads_live_with_the_backend() {
        let system = SystemConfig::default();
        let unopt = CpuBackend::unoptimized(&system, UnoptimizedCpuConfig { threads: 3 });
        assert_eq!(unopt.cpu_config().threads, 3);
        // The shared host config is untouched.
        assert_eq!(
            CpuBackend::baseline(&system).cpu_config().threads,
            system.cpu.threads
        );
    }

    #[test]
    fn fewer_threads_run_slower() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1 << 30);
        let baseline = CpuBackend::baseline(&system).simulate(&trace, &layout, &ctx);
        let unopt = CpuBackend::unoptimized(&system, UnoptimizedCpuConfig::default())
            .simulate(&trace, &layout, &ctx);
        assert!(unopt.runtime_ns > baseline.runtime_ns);
        assert!(baseline.stall.is_some());
        assert!(baseline.comm.is_none());
    }
}
