//! The GPU-baseline execution backend (§5.3, §6.6).
//!
//! An A100-class device runs the optimized flow at high bandwidth but behind a
//! hard memory-capacity wall: [`GpuBackend::capacity_check`] is what forces the
//! small batch sizes — and the contig-quality collapse — analysed in Table 1.

use super::{
    BackendId, BackendResult, CapacityVerdict, CompactionBackend, SimulationContext, SystemConfig,
};
use nmp_pak_memsim::gpu::simulate_gpu_compaction;
use nmp_pak_memsim::{DramConfig, GpuConfig, NodeLayout};
use nmp_pak_pakman::CompactionTrace;

/// A GPU execution backend.
#[derive(Debug, Clone, Copy)]
pub struct GpuBackend {
    id: BackendId,
    label: &'static str,
    dram: DramConfig,
    gpu: GpuConfig,
}

impl GpuBackend {
    /// The paper's **GPU baseline** (A100 40 GB).
    pub fn baseline(config: &SystemConfig) -> GpuBackend {
        GpuBackend {
            id: BackendId::GPU_BASELINE,
            label: "GPU-baseline",
            dram: config.dram,
            gpu: config.gpu,
        }
    }

    /// A custom GPU backend (e.g. the 80 GB configuration).
    pub fn custom(
        id: BackendId,
        label: &'static str,
        dram: DramConfig,
        gpu: GpuConfig,
    ) -> GpuBackend {
        GpuBackend {
            id,
            label,
            dram,
            gpu,
        }
    }

    /// The device configuration this backend simulates with.
    pub fn gpu_config(&self) -> &GpuConfig {
        &self.gpu
    }
}

impl CompactionBackend for GpuBackend {
    fn id(&self) -> BackendId {
        self.id
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn capacity_check(&self, footprint_bytes: u64) -> CapacityVerdict {
        if self.gpu.fits(footprint_bytes) {
            CapacityVerdict::Fits
        } else {
            CapacityVerdict::Exceeded {
                footprint_bytes,
                capacity_bytes: self.gpu.memory_capacity_bytes,
            }
        }
    }

    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        ctx: &SimulationContext,
    ) -> BackendResult {
        let r = simulate_gpu_compaction(trace, layout, &self.dram, &self.gpu, ctx.footprint_bytes);
        BackendResult {
            backend: self.id,
            label: self.label,
            runtime_ns: r.runtime_ns,
            traffic: r.traffic,
            memory: r.memory,
            stall: None,
            comm: None,
            capacity_exceeded: r.capacity_exceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::*;

    #[test]
    fn capacity_check_matches_simulation_flag() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let gpu = GpuBackend::baseline(&system);

        assert!(gpu.capacity_check(1 << 30).fits());
        let ok = gpu.simulate(&trace, &layout, &SimulationContext::new(1 << 30));
        assert!(!ok.capacity_exceeded);

        let verdict = gpu.capacity_check(500 << 30);
        assert!(!verdict.fits());
        if let CapacityVerdict::Exceeded {
            footprint_bytes,
            capacity_bytes,
        } = verdict
        {
            assert_eq!(footprint_bytes, 500 << 30);
            assert_eq!(capacity_bytes, system.gpu.memory_capacity_bytes);
        }
        let over = gpu.simulate(&trace, &layout, &SimulationContext::new(500 << 30));
        assert!(over.capacity_exceeded);
    }
}
