//! The near-memory execution backends: **NMP-PaK** and its ideal-PE /
//! ideal-forwarding ablations (§5.3).
//!
//! Each variant is a fully configured [`NmpBackend`] — the ideal variants bake
//! their idealization into the owned [`NmpConfig`] at construction, so
//! simulation is straight-line trait dispatch with no per-call variant `match`.

use super::{BackendId, BackendResult, CompactionBackend, SimulationContext, SystemConfig};
use nmp_pak_memsim::{CpuConfig, DramConfig, NodeLayout};
use nmp_pak_nmphw::{NmpConfig, NmpSystem, PeVariant};
use nmp_pak_pakman::CompactionTrace;

/// A near-memory execution backend.
#[derive(Debug, Clone, Copy)]
pub struct NmpBackend {
    id: BackendId,
    label: &'static str,
    nmp: NmpConfig,
    dram: DramConfig,
    cpu: CpuConfig,
}

impl NmpBackend {
    /// The proposed design — **NMP-PaK**.
    pub fn pak(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_PAK,
            label: "NMP-PaK",
            nmp: config.nmp,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// NMP-PaK with infinitely fast PEs (§5.3's ideal-PE ablation).
    pub fn ideal_pe(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_IDEAL_PE,
            label: "NMP-PaK+ideal-PE",
            nmp: NmpConfig {
                pe_variant: PeVariant::Ideal,
                ..config.nmp
            },
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// NMP-PaK with ideal P1→P3 forwarding logic (§5.3).
    pub fn ideal_forwarding(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_IDEAL_FORWARDING,
            label: "NMP-PaK+ideal-fwd",
            nmp: NmpConfig {
                ideal_forwarding: true,
                ..config.nmp
            },
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// An NMP backend with an explicit hardware configuration (PE-count sweeps
    /// and other ablations).
    pub fn with_config(
        id: BackendId,
        label: &'static str,
        nmp: NmpConfig,
        config: &SystemConfig,
    ) -> NmpBackend {
        NmpBackend {
            id,
            label,
            nmp,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// The hardware configuration this backend simulates with.
    pub fn nmp_config(&self) -> &NmpConfig {
        &self.nmp
    }
}

impl CompactionBackend for NmpBackend {
    fn id(&self) -> BackendId {
        self.id
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        ctx: &SimulationContext,
    ) -> BackendResult {
        let system = NmpSystem::new(self.nmp, self.dram, self.cpu);
        // When the software ran sharded, fold the measured owner-computes
        // telemetry onto this system's channels: measured per-channel work
        // shares and cross-channel bytes replace the uniform-placement
        // assumption.
        let channel_load = ctx
            .sharding
            .as_ref()
            .map(|telemetry| system.channel_load_from_sharding(telemetry));
        let r = system.simulate_with_channel_load(trace, layout, channel_load.as_ref());
        BackendResult {
            backend: self.id,
            label: self.label,
            runtime_ns: r.runtime_ns,
            traffic: r.traffic,
            memory: r.memory,
            stall: None,
            comm: Some(r.comm),
            capacity_exceeded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::*;

    #[test]
    fn ideal_variants_bake_their_configuration() {
        let system = SystemConfig::default();
        assert_eq!(
            NmpBackend::ideal_pe(&system).nmp_config().pe_variant,
            PeVariant::Ideal
        );
        assert!(
            NmpBackend::ideal_forwarding(&system)
                .nmp_config()
                .ideal_forwarding
        );
        assert!(!NmpBackend::pak(&system).nmp_config().ideal_forwarding);
    }

    #[test]
    fn nmp_reports_communication_stats() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1 << 30);
        let result = NmpBackend::pak(&system).simulate(&trace, &layout, &ctx);
        assert!(result.comm.is_some());
        assert!(result.stall.is_none());
        assert!(result.runtime_ns > 0.0);
    }

    #[test]
    fn measured_sharding_telemetry_reaches_the_channel_model() {
        use nmp_pak_pakman::{MailboxIterationStats, ShardingTelemetry};
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let backend = NmpBackend::pak(&system);
        let uniform = backend.simulate(&trace, &layout, &SimulationContext::new(1 << 30));

        // One shard measured doing 64× everyone else's work: the busiest
        // channel paces every lock-step iteration, so runtime must grow.
        let shards = 8usize;
        let mut checked = vec![1_000u64; shards];
        checked[0] *= 64;
        let telemetry = ShardingTelemetry {
            shard_count: shards,
            initial_alive_per_shard: vec![100; shards],
            final_alive_per_shard: vec![50; shards],
            checked_per_shard: checked,
            mailbox: vec![MailboxIterationStats {
                iteration: 0,
                transfers: 10,
                cross_shard_transfers: 10,
                bytes: 10_000,
                cross_shard_bytes: 10_000,
            }],
            route_bytes: vec![0; shards * shards],
            flushes: Vec::new(),
            round_nanos: Vec::new(),
        };
        let ctx = SimulationContext::new(1 << 30).with_sharding(telemetry);
        assert!(ctx.load_imbalance > 4.0);
        let skewed = backend.simulate(&trace, &layout, &ctx);
        assert!(
            skewed.runtime_ns > uniform.runtime_ns,
            "skewed {} vs uniform {}",
            skewed.runtime_ns,
            uniform.runtime_ns
        );
        // Traffic accounting describes the trace, not the placement.
        assert_eq!(skewed.traffic, uniform.traffic);
    }
}
