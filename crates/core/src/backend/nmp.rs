//! The near-memory execution backends: **NMP-PaK** and its ideal-PE /
//! ideal-forwarding ablations (§5.3).
//!
//! Each variant is a fully configured [`NmpBackend`] — the ideal variants bake
//! their idealization into the owned [`NmpConfig`] at construction, so
//! simulation is straight-line trait dispatch with no per-call variant `match`.

use super::{BackendId, BackendResult, CompactionBackend, SimulationContext, SystemConfig};
use nmp_pak_memsim::{CpuConfig, DramConfig, NodeLayout};
use nmp_pak_nmphw::{NmpConfig, NmpSystem, PeVariant};
use nmp_pak_pakman::CompactionTrace;

/// A near-memory execution backend.
#[derive(Debug, Clone, Copy)]
pub struct NmpBackend {
    id: BackendId,
    label: &'static str,
    nmp: NmpConfig,
    dram: DramConfig,
    cpu: CpuConfig,
}

impl NmpBackend {
    /// The proposed design — **NMP-PaK**.
    pub fn pak(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_PAK,
            label: "NMP-PaK",
            nmp: config.nmp,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// NMP-PaK with infinitely fast PEs (§5.3's ideal-PE ablation).
    pub fn ideal_pe(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_IDEAL_PE,
            label: "NMP-PaK+ideal-PE",
            nmp: NmpConfig {
                pe_variant: PeVariant::Ideal,
                ..config.nmp
            },
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// NMP-PaK with ideal P1→P3 forwarding logic (§5.3).
    pub fn ideal_forwarding(config: &SystemConfig) -> NmpBackend {
        NmpBackend {
            id: BackendId::NMP_IDEAL_FORWARDING,
            label: "NMP-PaK+ideal-fwd",
            nmp: NmpConfig {
                ideal_forwarding: true,
                ..config.nmp
            },
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// An NMP backend with an explicit hardware configuration (PE-count sweeps
    /// and other ablations).
    pub fn with_config(
        id: BackendId,
        label: &'static str,
        nmp: NmpConfig,
        config: &SystemConfig,
    ) -> NmpBackend {
        NmpBackend {
            id,
            label,
            nmp,
            dram: config.dram,
            cpu: config.cpu,
        }
    }

    /// The hardware configuration this backend simulates with.
    pub fn nmp_config(&self) -> &NmpConfig {
        &self.nmp
    }
}

impl CompactionBackend for NmpBackend {
    fn id(&self) -> BackendId {
        self.id
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        _ctx: &SimulationContext,
    ) -> BackendResult {
        let system = NmpSystem::new(self.nmp, self.dram, self.cpu);
        let r = system.simulate(trace, layout);
        BackendResult {
            backend: self.id,
            label: self.label,
            runtime_ns: r.runtime_ns,
            traffic: r.traffic,
            memory: r.memory,
            stall: None,
            comm: Some(r.comm),
            capacity_exceeded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::*;

    #[test]
    fn ideal_variants_bake_their_configuration() {
        let system = SystemConfig::default();
        assert_eq!(
            NmpBackend::ideal_pe(&system).nmp_config().pe_variant,
            PeVariant::Ideal
        );
        assert!(
            NmpBackend::ideal_forwarding(&system)
                .nmp_config()
                .ideal_forwarding
        );
        assert!(!NmpBackend::pak(&system).nmp_config().ideal_forwarding);
    }

    #[test]
    fn nmp_reports_communication_stats() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1 << 30);
        let result = NmpBackend::pak(&system).simulate(&trace, &layout, &ctx);
        assert!(result.comm.is_some());
        assert!(result.stall.is_none());
        assert!(result.runtime_ns > 0.0);
    }
}
