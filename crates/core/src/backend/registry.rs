//! The backend registry: lookup and ordered iteration over
//! [`CompactionBackend`] trait objects.
//!
//! [`BackendRegistry::standard`] registers the paper's seven configurations in
//! Fig. 12 plot order, replacing the old `ExecutionBackend::ALL` array; custom
//! backends are [`BackendRegistry::register`]ed next to them and participate in
//! every sweep.

use super::{
    BackendId, BackendResult, CompactionBackend, CpuBackend, GpuBackend, NmpBackend, PandaBackend,
    SimulationContext, SystemConfig, UnoptimizedCpuConfig,
};
use nmp_pak_memsim::NodeLayout;
use nmp_pak_pakman::CompactionTrace;

/// An ordered collection of execution backends.
///
/// Iteration order is registration order (the Fig. 12 plot order for
/// [`BackendRegistry::standard`]); lookup is by [`BackendId`] or figure label.
#[derive(Debug, Default)]
pub struct BackendRegistry {
    backends: Vec<Box<dyn CompactionBackend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry {
            backends: Vec::new(),
        }
    }

    /// The seven paper configurations (§5.3), in the order Fig. 12 plots them.
    pub fn standard(config: &SystemConfig) -> BackendRegistry {
        let mut registry = BackendRegistry::new();
        registry
            .register(Box::new(CpuBackend::unoptimized(
                config,
                UnoptimizedCpuConfig::default(),
            )))
            .register(Box::new(CpuBackend::baseline(config)))
            .register(Box::new(GpuBackend::baseline(config)))
            .register(Box::new(CpuBackend::pak(config)))
            .register(Box::new(NmpBackend::pak(config)))
            .register(Box::new(NmpBackend::ideal_pe(config)))
            .register(Box::new(NmpBackend::ideal_forwarding(config)));
        registry
    }

    /// The standard registry plus the research configurations that are not part
    /// of the paper's seven-way sweep — currently the PANDA-style in-DRAM
    /// bitwise backend ([`PandaBackend`]), appended after the Fig. 12 order so
    /// the figure drivers are unaffected.
    pub fn extended(config: &SystemConfig) -> BackendRegistry {
        let mut registry = BackendRegistry::standard(config);
        registry.register(Box::new(PandaBackend::new(config)));
        registry
    }

    /// Registers a backend. A backend with the same id replaces the existing
    /// registration in place (keeping its position in the iteration order).
    pub fn register(&mut self, backend: Box<dyn CompactionBackend>) -> &mut BackendRegistry {
        match self.backends.iter_mut().find(|b| b.id() == backend.id()) {
            Some(slot) => *slot = backend,
            None => self.backends.push(backend),
        }
        self
    }

    /// Looks a backend up by id.
    pub fn get(&self, id: BackendId) -> Option<&dyn CompactionBackend> {
        self.backends.iter().find(|b| b.id() == id).map(Box::as_ref)
    }

    /// Looks a backend up by its figure label (e.g. `"NMP-PaK"`).
    pub fn by_label(&self, label: &str) -> Option<&dyn CompactionBackend> {
        self.backends
            .iter()
            .find(|b| b.label() == label)
            .map(Box::as_ref)
    }

    /// Iterates the backends in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn CompactionBackend> {
        self.backends.iter().map(Box::as_ref)
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> Vec<BackendId> {
        self.backends.iter().map(|b| b.id()).collect()
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// `true` if no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Simulates every registered backend on the same trace, in registration
    /// order (the Fig. 12 sweep).
    pub fn simulate_all(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        ctx: &SimulationContext,
    ) -> Vec<BackendResult> {
        self.iter()
            .map(|b| b.simulate(trace, layout, ctx))
            .collect()
    }
}

impl<'r> IntoIterator for &'r BackendRegistry {
    type Item = &'r dyn CompactionBackend;
    type IntoIter = std::iter::Map<
        std::slice::Iter<'r, Box<dyn CompactionBackend>>,
        fn(&'r Box<dyn CompactionBackend>) -> &'r dyn CompactionBackend,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.backends.iter().map(Box::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::*;

    fn results() -> Vec<BackendResult> {
        let (trace, layout) = synthetic();
        let registry = BackendRegistry::standard(&SystemConfig::default());
        registry.simulate_all(&trace, &layout, &SimulationContext::new(1 << 30))
    }

    fn by(results: &[BackendResult], id: BackendId) -> &BackendResult {
        results
            .iter()
            .find(|r| r.backend == id)
            .expect("all standard backends simulated")
    }

    #[test]
    fn standard_registry_preserves_fig12_order() {
        let registry = BackendRegistry::standard(&SystemConfig::default());
        assert_eq!(
            registry.ids(),
            vec![
                BackendId::CPU_BASELINE_UNOPTIMIZED,
                BackendId::CPU_BASELINE,
                BackendId::GPU_BASELINE,
                BackendId::CPU_PAK,
                BackendId::NMP_PAK,
                BackendId::NMP_IDEAL_PE,
                BackendId::NMP_IDEAL_FORWARDING,
            ]
        );
    }

    #[test]
    fn extended_registry_appends_panda_after_the_standard_seven() {
        let registry = BackendRegistry::extended(&SystemConfig::default());
        assert_eq!(registry.len(), 8);
        assert_eq!(
            registry.ids()[..7],
            BackendRegistry::standard(&SystemConfig::default()).ids()
        );
        assert_eq!(*registry.ids().last().unwrap(), BackendId::PANDA);
        assert_eq!(registry.by_label("PANDA").unwrap().id(), BackendId::PANDA);
    }

    #[test]
    fn lookup_by_id_and_label_agree() {
        let registry = BackendRegistry::standard(&SystemConfig::default());
        for backend in &registry {
            assert_eq!(registry.get(backend.id()).unwrap().id(), backend.id());
            assert_eq!(
                registry.by_label(backend.label()).unwrap().id(),
                backend.id()
            );
        }
        assert!(registry.get(BackendId::new("no-such-backend")).is_none());
        assert!(registry.by_label("no such label").is_none());
    }

    #[test]
    fn labels_are_unique() {
        let registry = BackendRegistry::standard(&SystemConfig::default());
        let labels: std::collections::HashSet<&str> = registry.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), registry.len());
    }

    #[test]
    fn registering_the_same_id_replaces_in_place() {
        let system = SystemConfig::default();
        let mut registry = BackendRegistry::standard(&system);
        let before = registry.ids();
        // Re-register the GPU baseline with an 80 GB device.
        registry.register(Box::new(GpuBackend::custom(
            BackendId::GPU_BASELINE,
            "GPU-baseline",
            system.dram,
            nmp_pak_memsim::GpuConfig::a100_80gb(),
        )));
        assert_eq!(registry.ids(), before, "order preserved on replacement");
        assert!(registry
            .get(BackendId::GPU_BASELINE)
            .unwrap()
            .capacity_check(50 << 30)
            .fits());
    }

    #[test]
    fn backend_ordering_matches_the_paper() {
        let results = results();
        let baseline = by(&results, BackendId::CPU_BASELINE);
        let unopt = by(&results, BackendId::CPU_BASELINE_UNOPTIMIZED);
        let cpu_pak = by(&results, BackendId::CPU_PAK);
        let gpu = by(&results, BackendId::GPU_BASELINE);
        let nmp = by(&results, BackendId::NMP_PAK);
        let ideal_pe = by(&results, BackendId::NMP_IDEAL_PE);
        let ideal_fwd = by(&results, BackendId::NMP_IDEAL_FORWARDING);

        // Fig. 12's ordering: W/O SW-opt < CPU baseline < {CPU-PaK, GPU} < NMP ≤ ideal.
        assert!(unopt.speedup_over(baseline) < 1.0);
        assert!(cpu_pak.speedup_over(baseline) > 1.2);
        assert!(gpu.speedup_over(baseline) > 1.2);
        assert!(nmp.speedup_over(baseline) > cpu_pak.speedup_over(baseline));
        assert!(nmp.speedup_over(baseline) > gpu.speedup_over(baseline));
        assert!(
            nmp.speedup_over(baseline) > 5.0,
            "nmp speedup {}",
            nmp.speedup_over(baseline)
        );
        assert!(ideal_pe.speedup_over(baseline) >= nmp.speedup_over(baseline) * 0.95);
        assert!(ideal_fwd.speedup_over(baseline) >= nmp.speedup_over(baseline));
    }

    #[test]
    fn bandwidth_utilization_ordering() {
        let results = results();
        let cpu = by(&results, BackendId::CPU_BASELINE);
        let nmp = by(&results, BackendId::NMP_PAK);
        assert!(nmp.bandwidth_utilization() > 3.0 * cpu.bandwidth_utilization());
    }

    #[test]
    fn traffic_ordering_matches_fig14() {
        let results = results();
        let cpu = by(&results, BackendId::CPU_BASELINE);
        let cpu_pak = by(&results, BackendId::CPU_PAK);
        let nmp = by(&results, BackendId::NMP_PAK);
        let fwd = by(&results, BackendId::NMP_IDEAL_FORWARDING);
        // CPU-PaK and NMP-PaK share the optimized flow → identical traffic, below the baseline.
        assert_eq!(cpu_pak.traffic, nmp.traffic);
        assert!(nmp.traffic.read_bytes < cpu.traffic.read_bytes);
        assert!(nmp.traffic.write_bytes < cpu.traffic.write_bytes);
        // Ideal forwarding trims reads further but not writes.
        assert!(fwd.traffic.read_bytes < nmp.traffic.read_bytes);
        assert_eq!(fwd.traffic.write_bytes, nmp.traffic.write_bytes);
    }
}
