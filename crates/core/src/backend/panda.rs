//! PANDA-style in-DRAM bitwise execution backend (after Angizi et al.,
//! *PANDA: Processing-in-DRAM Acceleration of de novo genome assembly*).
//!
//! Where NMP-PaK places processing elements on the buffer device of each DIMM,
//! the PANDA line of work computes *inside* the DRAM arrays: rows are activated
//! in triples so the sense amplifiers evaluate bulk bitwise AND/OR/NOT over
//! entire 8 KB rows at once. Iterative Compaction maps onto this substrate
//! naturally — the P1 neighbour comparison is a bit-serial lexicographic
//! compare over (k-1)-mer rows, and P3's MacroNode merges are masked row
//! copies — so the model charges:
//!
//! * **row ops** for every row a stage touches (compares are several bit-serial
//!   passes per row, merges a couple), executed concurrently across all compute
//!   subarrays in the system;
//! * **in-DRAM copies** for TransferNodes whose source and destination live in
//!   the same DIMM (LISA-style inter-subarray row movement — no bus traffic);
//! * **external hops** over the memory channels only for inter-DIMM
//!   TransferNodes and the per-iteration host orchestration, which is the only
//!   traffic a host-visible bus ever sees.
//!
//! The resulting profile is the PANDA signature: external traffic orders of
//! magnitude below any host backend, massive internal row bandwidth, and a
//! runtime bounded by bit-serial latency rather than the memory bus.

use super::{BackendId, BackendResult, CompactionBackend, SimulationContext, SystemConfig};
use nmp_pak_memsim::{AddressMapping, DramConfig, MemoryStats, NodeLayout, TrafficSummary};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of the in-DRAM bitwise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PandaConfig {
    /// Compute-capable subarrays per bank that can operate concurrently.
    pub compute_subarrays_per_bank: usize,
    /// Latency of one triple-row-activation bitwise op (ns). Ambit-style AAP is
    /// roughly three row cycles of DDR4.
    pub row_op_ns: f64,
    /// Bit-serial passes needed to compare one row of packed (k-1)-mers against
    /// a neighbour (P1's invalidation check).
    pub compare_ops_per_row: usize,
    /// Row ops to merge a TransferNode into a destination row (masked write).
    pub merge_ops_per_row: usize,
    /// Row ops for an intra-bank inter-subarray row copy (LISA-style fast
    /// row movement within one bank's subarray hierarchy).
    pub copy_ops_per_row: usize,
    /// Row ops for an intra-DIMM **inter-bank** copy. Banks share no subarray
    /// wiring, so the row must be read into the buffer-chip logic and written
    /// back into the destination bank — several times the cost of a LISA hop
    /// (but still no host-visible bus traffic).
    pub inter_bank_copy_ops_per_row: usize,
    /// Fixed host orchestration overhead per compaction iteration (ns): command
    /// broadcast plus completion polling.
    pub iteration_sync_ns: f64,
}

impl Default for PandaConfig {
    fn default() -> Self {
        PandaConfig {
            compute_subarrays_per_bank: 2,
            row_op_ns: 100.0,
            compare_ops_per_row: 8,
            merge_ops_per_row: 2,
            copy_ops_per_row: 2,
            inter_bank_copy_ops_per_row: 6,
            iteration_sync_ns: 1_000.0,
        }
    }
}

impl PandaConfig {
    /// Concurrent row-op lanes in the whole system.
    fn parallel_subarrays(&self, dram: &DramConfig) -> usize {
        (dram.channels
            * dram.ranks_per_channel
            * dram.banks_per_rank
            * self.compute_subarrays_per_bank)
            .max(1)
    }

    /// Aggregate internal row bandwidth in GB/s: every lane moves one row per
    /// row op. This is the "peak" the achieved internal bandwidth is measured
    /// against (it dwarfs the external bus — the point of in-situ compute).
    fn internal_peak_bandwidth_gbps(&self, dram: &DramConfig) -> f64 {
        self.parallel_subarrays(dram) as f64 * dram.row_buffer_bytes as f64 / self.row_op_ns
    }
}

/// The PANDA-style in-DRAM bitwise execution backend.
#[derive(Debug, Clone, Copy)]
pub struct PandaBackend {
    id: BackendId,
    label: &'static str,
    config: PandaConfig,
    dram: DramConfig,
}

impl PandaBackend {
    /// The default PANDA configuration on the shared machine's DRAM.
    pub fn new(system: &SystemConfig) -> PandaBackend {
        PandaBackend::with_config(system, PandaConfig::default())
    }

    /// A PANDA backend with explicit microarchitectural parameters.
    pub fn with_config(system: &SystemConfig, config: PandaConfig) -> PandaBackend {
        PandaBackend {
            id: BackendId::PANDA,
            label: "PANDA",
            config,
            dram: system.dram,
        }
    }

    /// The microarchitectural parameters this backend simulates with.
    pub fn panda_config(&self) -> &PandaConfig {
        &self.config
    }

    /// The `(rank, bank)` within its DIMM holding `slot`'s first row, decoded
    /// through memsim's canonical [`AddressMapping`] so PANDA's inter-bank
    /// pricing uses the same striping as every other consumer of the layout.
    fn bank_of(
        &self,
        mapping: &AddressMapping,
        layout: &NodeLayout,
        slot: usize,
    ) -> (usize, usize) {
        let loc = mapping.locate(layout.address_of(slot));
        (loc.rank, loc.bank)
    }
}

impl CompactionBackend for PandaBackend {
    fn id(&self) -> BackendId {
        self.id
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        ctx: &SimulationContext,
    ) -> BackendResult {
        let cfg = &self.config;
        let row_bytes = self.dram.row_buffer_bytes.max(1);
        let lanes = cfg.parallel_subarrays(&self.dram) as u64;
        let line = self.dram.line_bytes.max(1) as u64;
        // External channel bandwidth in bytes/ns for the inter-DIMM hops.
        let external_gbps = self.dram.total_peak_bandwidth_gbps().max(1e-9);
        let mapping = AddressMapping::new(self.dram, layout.dimm_capacity());

        let mut runtime_ns = 0.0f64;
        let mut internal_row_reads = 0u64; // rows activated for compare/copy
        let mut internal_row_writes = 0u64; // rows written by merges/copies
        let mut external = TrafficSummary::default();

        for iteration in &trace.iterations {
            let mut row_ops = 0u64;

            // P1: bit-serial lexicographic compare over every alive node's rows.
            for check in &iteration.checks {
                let rows = (check.size_bytes as u64).div_ceil(row_bytes as u64).max(1);
                row_ops += rows * cfg.compare_ops_per_row as u64;
                internal_row_reads += rows;
            }

            // TransferNode movement: intra-DIMM hops are in-DRAM row copies —
            // LISA-cheap when source and destination share a bank, several row
            // cycles more when the copy must hop banks through the buffer-chip
            // logic — while inter-DIMM hops cross the external bus (the only
            // data traffic the host-visible channels carry).
            let mut inter_dimm_bytes = 0u64;
            for transfer in &iteration.transfers {
                let same_dimm =
                    layout.dimm_of(transfer.source_slot) == layout.dimm_of(transfer.dest_slot);
                let rows = (transfer.size_bytes as u64)
                    .div_ceil(row_bytes as u64)
                    .max(1);
                if same_dimm {
                    let same_bank = self.bank_of(&mapping, layout, transfer.source_slot)
                        == self.bank_of(&mapping, layout, transfer.dest_slot);
                    let ops_per_row = if same_bank {
                        cfg.copy_ops_per_row
                    } else {
                        cfg.inter_bank_copy_ops_per_row
                    };
                    row_ops += rows * ops_per_row as u64;
                    internal_row_reads += rows;
                    internal_row_writes += rows;
                } else {
                    let bytes = (transfer.size_bytes as u64).div_ceil(line) * line;
                    inter_dimm_bytes += 2 * bytes; // read out of one DIMM, into another
                    external.reads += 1;
                    external.writes += 1;
                    external.read_bytes += bytes;
                    external.write_bytes += bytes;
                }
            }

            // P3: masked row merges into the destination nodes.
            for update in &iteration.updates {
                let rows = (update.size_bytes as u64).div_ceil(row_bytes as u64).max(1);
                row_ops += rows * cfg.merge_ops_per_row as u64;
                internal_row_writes += rows;
            }

            // Host orchestration: one command + one status line per channel.
            let control_lines = self.dram.channels as u64;
            external.reads += control_lines;
            external.writes += control_lines;
            external.read_bytes += control_lines * line;
            external.write_bytes += control_lines * line;

            // Row ops execute in lockstep across every compute subarray; the
            // busiest subarray paces each lockstep round, so the measured
            // per-partition load imbalance (1.0 when unsharded / unmeasured)
            // stretches the perfectly-balanced critical path. External hops
            // drain afterwards over the aggregate bus.
            let row_phase_ns =
                (row_ops.div_ceil(lanes)) as f64 * cfg.row_op_ns * ctx.load_imbalance.max(1.0);
            let hop_phase_ns = inter_dimm_bytes as f64 / external_gbps;
            runtime_ns += row_phase_ns + hop_phase_ns + cfg.iteration_sync_ns;
        }

        let internal_bytes_read = internal_row_reads * row_bytes as u64;
        let internal_bytes_written = internal_row_writes * row_bytes as u64;
        let memory = MemoryStats {
            read_lines: internal_row_reads,
            write_lines: internal_row_writes,
            read_bytes: internal_bytes_read,
            write_bytes: internal_bytes_written,
            // Every in-situ op opens its rows; there is no row-buffer reuse to
            // speak of in the bulk-bitwise regime.
            row_hits: 0,
            row_misses: internal_row_reads + internal_row_writes,
            elapsed_ns: runtime_ns,
            peak_bandwidth_gbps: cfg.internal_peak_bandwidth_gbps(&self.dram),
        };

        BackendResult {
            backend: self.id,
            label: self.label,
            runtime_ns,
            traffic: external,
            memory,
            stall: None,
            comm: None,
            capacity_exceeded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic;
    use super::*;
    use crate::backend::CpuBackend;

    #[test]
    fn panda_beats_the_cpu_baseline_with_far_less_external_traffic() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1 << 30);
        let panda = PandaBackend::new(&system).simulate(&trace, &layout, &ctx);
        let cpu = CpuBackend::baseline(&system).simulate(&trace, &layout, &ctx);

        assert!(panda.runtime_ns > 0.0);
        assert!(
            panda.speedup_over(&cpu) > 1.0,
            "panda {} vs cpu {}",
            panda.runtime_ns,
            cpu.runtime_ns
        );
        // The host-visible bus only carries inter-DIMM hops and orchestration.
        assert!(
            panda.traffic.total_bytes() < cpu.traffic.total_bytes() / 10,
            "external {} vs cpu {}",
            panda.traffic.total_bytes(),
            cpu.traffic.total_bytes()
        );
        assert!(panda.stall.is_none());
        assert!(panda.comm.is_none());
        assert!(!panda.capacity_exceeded);
    }

    #[test]
    fn internal_row_bandwidth_dwarfs_the_external_bus() {
        let system = SystemConfig::default();
        let config = PandaConfig::default();
        assert!(
            config.internal_peak_bandwidth_gbps(&system.dram)
                > 10.0 * system.dram.total_peak_bandwidth_gbps()
        );
        let (trace, layout) = synthetic();
        let result =
            PandaBackend::new(&system).simulate(&trace, &layout, &SimulationContext::new(1));
        // Internal row traffic is accounted against the internal peak, so the
        // utilization metric stays meaningful (strictly below 1).
        assert!(result.memory.bandwidth_utilization() > 0.0);
        assert!(result.memory.bandwidth_utilization() <= 1.0);
    }

    #[test]
    fn inter_bank_copies_cost_more_than_intra_bank_ones() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1);
        // Collapse the distinction: inter-bank copies priced like LISA hops.
        let flat = PandaBackend::with_config(
            &system,
            PandaConfig {
                inter_bank_copy_ops_per_row: PandaConfig::default().copy_ops_per_row,
                ..PandaConfig::default()
            },
        )
        .simulate(&trace, &layout, &ctx);
        let refined = PandaBackend::new(&system).simulate(&trace, &layout, &ctx);
        // The synthetic trace's intra-DIMM hops mostly change banks, so the
        // refined model is strictly slower than the flat-priced one — but the
        // external traffic is identical: bank hops never touch the bus.
        assert!(refined.runtime_ns > flat.runtime_ns);
        assert_eq!(refined.traffic, flat.traffic);
    }

    #[test]
    fn measured_load_imbalance_stretches_the_row_phase() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let balanced =
            PandaBackend::new(&system).simulate(&trace, &layout, &SimulationContext::new(1));
        let skewed = PandaBackend::new(&system).simulate(
            &trace,
            &layout,
            &SimulationContext::new(1).with_load_imbalance(2.0),
        );
        assert!(skewed.runtime_ns > balanced.runtime_ns);
        // Imbalance stretches time, never traffic.
        assert_eq!(skewed.traffic, balanced.traffic);
        // Sub-1.0 or non-finite factors clamp back to the uniform assumption.
        let clamped = SimulationContext::new(1).with_load_imbalance(0.3);
        assert_eq!(clamped.load_imbalance, 1.0);
        let nan = SimulationContext::new(1).with_load_imbalance(f64::NAN);
        assert_eq!(nan.load_imbalance, 1.0);
    }

    #[test]
    fn slower_row_ops_slow_the_backend_down() {
        let (trace, layout) = synthetic();
        let system = SystemConfig::default();
        let ctx = SimulationContext::new(1);
        let fast = PandaBackend::new(&system).simulate(&trace, &layout, &ctx);
        let slow = PandaBackend::with_config(
            &system,
            PandaConfig {
                row_op_ns: 400.0,
                ..PandaConfig::default()
            },
        )
        .simulate(&trace, &layout, &ctx);
        assert!(slow.runtime_ns > fast.runtime_ns);
        assert_eq!(slow.traffic, fast.traffic, "traffic is timing-independent");
    }
}
