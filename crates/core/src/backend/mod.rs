//! Execution backends (§5.3 of the paper) behind the pluggable
//! [`CompactionBackend`] trait.
//!
//! Iterative Compaction — the phase NMP-PaK accelerates — can be simulated on any
//! of the paper's baseline and proposed configurations. All backends replay the
//! same [`nmp_pak_pakman::CompactionTrace`], so they perform the same assembly
//! work and differ only in where and how the MacroNode accesses execute.
//!
//! Backends are ordinary trait objects: the seven paper configurations live in
//! [`cpu`], [`gpu`] and [`nmp`] and are registered, in Fig. 12 plot order, by
//! [`BackendRegistry::standard`]. New execution targets (a PIM-style bitwise
//! backend, a different GPU, a hybrid) implement [`CompactionBackend`] and are
//! [`BackendRegistry::register`]ed next to them — no enum to extend, no dispatch
//! `match` to edit.

pub mod cpu;
pub mod gpu;
pub mod nmp;
pub mod panda;
pub mod registry;

pub use cpu::{CpuBackend, UnoptimizedCpuConfig};
pub use gpu::GpuBackend;
pub use nmp::NmpBackend;
pub use panda::{PandaBackend, PandaConfig};
pub use registry::BackendRegistry;

use nmp_pak_memsim::{CpuConfig, DramConfig, GpuConfig, MemoryStats, NodeLayout, TrafficSummary};
use nmp_pak_nmphw::{CommStats, NmpConfig};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// Stable identifier of an execution backend.
///
/// Ids name a *configuration*, not an implementation: the paper's seven
/// configurations have the constants below, and custom backends mint their own
/// with [`BackendId::new`]. Lookup by id (or by figure label) goes through
/// [`BackendRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BackendId(&'static str);

impl BackendId {
    /// PaKman software before the §4.5 parallelism/memory optimizations
    /// ("W/O SW-opt" in Fig. 12).
    pub const CPU_BASELINE_UNOPTIMIZED: BackendId = BackendId("cpu-baseline-unoptimized");
    /// The software-optimized PaKman on the host CPU with the original
    /// sequential-stage process flow — the paper's **CPU baseline**.
    pub const CPU_BASELINE: BackendId = BackendId("cpu-baseline");
    /// The NMP-PaK software optimizations (pipelined flow, batching) executed on
    /// the CPU — the paper's **CPU-PaK**.
    pub const CPU_PAK: BackendId = BackendId("cpu-pak");
    /// An A100-class GPU running the optimized flow — the paper's **GPU baseline**.
    pub const GPU_BASELINE: BackendId = BackendId("gpu-baseline");
    /// The proposed near-memory design — **NMP-PaK**.
    pub const NMP_PAK: BackendId = BackendId("nmp-pak");
    /// NMP-PaK with infinitely fast PEs (§5.3).
    pub const NMP_IDEAL_PE: BackendId = BackendId("nmp-ideal-pe");
    /// NMP-PaK with ideal P1→P3 forwarding logic (§5.3).
    pub const NMP_IDEAL_FORWARDING: BackendId = BackendId("nmp-ideal-forwarding");
    /// PANDA-style in-DRAM bitwise-logic execution (Angizi et al.) — a research
    /// configuration registered by [`BackendRegistry::extended`].
    pub const PANDA: BackendId = BackendId("panda-bitwise");

    /// Mints an id for a custom backend.
    pub const fn new(name: &'static str) -> BackendId {
        BackendId(name)
    }

    /// The id as a string.
    pub const fn as_str(&self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// Whether a workload footprint fits a backend's memory capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityVerdict {
    /// The footprint fits (or the backend has no hard capacity limit).
    Fits,
    /// The footprint exceeds the backend's capacity; the workload must be batched
    /// down (§6.6's GPU analysis) before it can run there.
    Exceeded {
        /// The workload's peak footprint in bytes.
        footprint_bytes: u64,
        /// The backend's memory capacity in bytes.
        capacity_bytes: u64,
    },
}

impl CapacityVerdict {
    /// `true` if the workload fits.
    pub fn fits(&self) -> bool {
        matches!(self, CapacityVerdict::Fits)
    }
}

/// Workload-level context shared by every backend simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SimulationContext {
    /// The workload's peak memory footprint (used for capacity checks).
    pub footprint_bytes: u64,
    /// Measured per-partition load imbalance (max work over mean work) from
    /// sharded execution telemetry; `1.0` — the uniform-work assumption — when
    /// the workload ran unsharded. Spatial-compute backends (NMP channels,
    /// PANDA subarrays) operate in per-iteration lock-step, so the busiest
    /// partition paces every iteration: these models stretch their
    /// perfectly-parallel critical path by this factor.
    pub load_imbalance: f64,
    /// Full measured sharded-execution telemetry, when the software ran
    /// sharded. Backends that model spatial placement directly (the NMP
    /// channel model) fold this onto their channels — per-channel work shares
    /// and the measured cross-channel byte fraction — instead of collapsing it
    /// to the single [`SimulationContext::load_imbalance`] scalar.
    pub sharding: Option<nmp_pak_pakman::ShardingTelemetry>,
}

impl SimulationContext {
    /// Creates a context for a workload with the given peak footprint (uniform
    /// load assumed until measured telemetry says otherwise).
    pub fn new(footprint_bytes: u64) -> SimulationContext {
        SimulationContext {
            footprint_bytes,
            load_imbalance: 1.0,
            sharding: None,
        }
    }

    /// Attaches a measured load-imbalance factor (clamped to ≥ 1.0).
    pub fn with_load_imbalance(mut self, imbalance: f64) -> SimulationContext {
        self.load_imbalance = if imbalance.is_finite() {
            imbalance.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// Attaches the full sharded-execution telemetry and derives
    /// [`SimulationContext::load_imbalance`] from it, so scalar-only backends
    /// stay consistent with backends that consume the full telemetry.
    pub fn with_sharding(
        mut self,
        telemetry: nmp_pak_pakman::ShardingTelemetry,
    ) -> SimulationContext {
        self = self.with_load_imbalance(telemetry.load_imbalance());
        self.sharding = Some(telemetry);
        self
    }
}

/// An execution configuration that can simulate Iterative Compaction.
///
/// Implementations own their machine parameters (DRAM organization, core model,
/// device config): a backend is a *fully configured* target, so
/// [`CompactionBackend::simulate`] is straight-line — no per-call configuration
/// dispatch on the hot path.
pub trait CompactionBackend: std::fmt::Debug + Send + Sync {
    /// Stable identifier (registry lookup key).
    fn id(&self) -> BackendId;

    /// The label used by the paper's figures.
    fn label(&self) -> &'static str;

    /// Checks whether a workload footprint fits this backend's memory.
    ///
    /// The default is [`CapacityVerdict::Fits`]: host-memory backends are bounded
    /// by DIMM count, not device capacity.
    fn capacity_check(&self, footprint_bytes: u64) -> CapacityVerdict {
        let _ = footprint_bytes;
        CapacityVerdict::Fits
    }

    /// Simulates Iterative Compaction by replaying `trace` over `layout`.
    fn simulate(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        ctx: &SimulationContext,
    ) -> BackendResult;
}

/// Machine configuration shared by every standard backend.
///
/// Per-backend knobs (e.g. the unoptimized software's limited thread count) live
/// with their backend — see [`UnoptimizedCpuConfig`] — not here.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Main-memory organization (shared by the CPU host and the NMP DIMMs).
    pub dram: DramConfig,
    /// Host CPU parameters.
    pub cpu: CpuConfig,
    /// GPU baseline parameters.
    pub gpu: GpuConfig,
    /// NMP configuration for the proposed design.
    pub nmp: NmpConfig,
}

/// The outcome of simulating Iterative Compaction on one backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendResult {
    /// Which backend produced this result.
    pub backend: BackendId,
    /// The backend's figure label (denormalized for row printing).
    pub label: &'static str,
    /// Simulated compaction runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Read/write traffic.
    pub traffic: TrafficSummary,
    /// Memory statistics (achieved bandwidth over the run).
    pub memory: MemoryStats,
    /// Stall breakdown, for CPU backends.
    pub stall: Option<nmp_pak_memsim::StallBreakdown>,
    /// TransferNode routing locality, for NMP backends.
    pub comm: Option<CommStats>,
    /// `true` if the workload footprint exceeded the backend's memory capacity
    /// (GPU baseline only among the standard backends).
    pub capacity_exceeded: bool,
}

impl BackendResult {
    /// Fraction of peak memory bandwidth achieved (Fig. 13).
    pub fn bandwidth_utilization(&self) -> f64 {
        self.memory.bandwidth_utilization()
    }

    /// Speedup of this backend over `baseline` (Fig. 12's normalization).
    pub fn speedup_over(&self, baseline: &BackendResult) -> f64 {
        if self.runtime_ns <= 0.0 {
            return 0.0;
        }
        baseline.runtime_ns / self.runtime_ns
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nmp_pak_pakman::trace::{IterationTrace, NodeCheck, TransferEvent, UpdateEvent};

    pub(crate) fn synthetic() -> (CompactionTrace, NodeLayout) {
        let nodes = 3_000usize;
        let sizes: Vec<usize> = (0..nodes)
            .map(|i| {
                if i % 89 == 0 {
                    5_000
                } else {
                    220 + (i % 8) * 100
                }
            })
            .collect();
        let mut trace = CompactionTrace::new(nodes, sizes.clone());
        for it in 0..5 {
            let alive = nodes - it * 400;
            let checks: Vec<NodeCheck> = (0..alive)
                .map(|slot| NodeCheck {
                    slot,
                    size_bytes: sizes[slot] + it * 24,
                    invalidated: slot % 5 == 3,
                })
                .collect();
            let transfers: Vec<TransferEvent> = checks
                .iter()
                .filter(|c| c.invalidated)
                .flat_map(|c| {
                    [
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: (c.slot * 7919 + 3) % alive,
                            size_bytes: 48,
                        },
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: (c.slot * 104_729 + 11) % alive,
                            size_bytes: 48,
                        },
                    ]
                })
                .collect();
            let updates: Vec<UpdateEvent> = transfers
                .iter()
                .map(|t| UpdateEvent {
                    dest_slot: t.dest_slot,
                    size_bytes: sizes[t.dest_slot] + 48,
                })
                .collect();
            trace.iterations.push(IterationTrace {
                checks,
                transfers,
                updates,
            });
        }
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        (trace, layout)
    }

    #[test]
    fn backend_ids_are_unique_and_stable() {
        let ids = [
            BackendId::CPU_BASELINE_UNOPTIMIZED,
            BackendId::CPU_BASELINE,
            BackendId::GPU_BASELINE,
            BackendId::CPU_PAK,
            BackendId::NMP_PAK,
            BackendId::NMP_IDEAL_PE,
            BackendId::NMP_IDEAL_FORWARDING,
        ];
        let set: std::collections::HashSet<BackendId> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        assert_eq!(BackendId::NMP_PAK.as_str(), "nmp-pak");
        assert_eq!(BackendId::new("nmp-pak"), BackendId::NMP_PAK);
        assert_eq!(format!("{}", BackendId::CPU_PAK), "cpu-pak");
    }

    #[test]
    fn capacity_verdict_reports_fit() {
        assert!(CapacityVerdict::Fits.fits());
        assert!(!CapacityVerdict::Exceeded {
            footprint_bytes: 2,
            capacity_bytes: 1
        }
        .fits());
    }
}
