//! Property tests for grid enumeration, hand-rolled over a seeded generator
//! (the `proptest` crate is unavailable in the offline build environment):
//! determinism (same grid ⇒ same cell order), no duplicate cells, filter
//! soundness, composition counting laws, and empty-grid edge cases.

use nmp_pak_recipe::{Axis, Filter, Grid, RecipeError, ScenarioSpec};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Distinct random values for one knob (distinct so the axis itself never
/// enumerates duplicate cells).
fn distinct_values(rng: &mut Rng, count: usize, max: usize) -> Vec<usize> {
    let mut values = Vec::with_capacity(count);
    while values.len() < count {
        let v = rng.below(max) + 1;
        if !values.contains(&v) {
            values.push(v);
        }
    }
    values
}

/// A random 1–3 level grid over disjoint knobs, returning the expected cell
/// count (before filtering).
fn random_grid(rng: &mut Rng) -> (Grid, usize) {
    let t_count = rng.below(3) + 1;
    let threads = distinct_values(rng, t_count, 16);
    let k_count = rng.below(3) + 1;
    let ks = distinct_values(rng, k_count, 30);
    let s_count = rng.below(3) + 1;
    let shards = distinct_values(rng, s_count, 12);
    let (t_len, k_len, s_len) = (threads.len(), ks.len(), shards.len());
    let t = Grid::axis(Axis::threads(&threads));
    let k = Grid::axis(Axis::k(&ks.iter().map(|&v| v + 2).collect::<Vec<_>>()));
    let s = Grid::axis(Axis::shards(&shards));
    match rng.below(4) {
        0 => (t.cross(k), t_len * k_len),
        1 => (t.cross(k).cross(s), t_len * k_len * s_len),
        2 if t_len == k_len => (t.zip(k), t_len),
        _ => (t.plug(k).cross(s), t_len * k_len * s_len),
    }
}

#[test]
fn enumeration_is_deterministic_across_calls() {
    let base = ScenarioSpec::default();
    for seed in 1..=60u64 {
        let mut rng_a = Rng::new(seed);
        let mut rng_b = Rng::new(seed);
        let (grid_a, _) = random_grid(&mut rng_a);
        let (grid_b, _) = random_grid(&mut rng_b);
        let first = grid_a.scenarios(&base).unwrap();
        let second = grid_a.scenarios(&base).unwrap();
        let rebuilt = grid_b.scenarios(&base).unwrap();
        assert_eq!(first, second, "seed {seed}: same grid, different cells");
        assert_eq!(first, rebuilt, "seed {seed}: same recipe, different cells");
    }
}

#[test]
fn enumeration_never_yields_duplicate_cells() {
    let base = ScenarioSpec::default();
    for seed in 1..=60u64 {
        let mut rng = Rng::new(seed);
        let (grid, expected) = random_grid(&mut rng);
        let specs = grid.scenarios(&base).unwrap();
        assert_eq!(specs.len(), expected, "seed {seed}: wrong cell count");
        let mut labels: Vec<String> = specs.iter().map(ScenarioSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), specs.len(), "seed {seed}: duplicate cells");
    }
}

#[test]
fn filter_is_sound_and_order_preserving() {
    let base = ScenarioSpec::default();
    for seed in 1..=60u64 {
        let mut rng = Rng::new(seed);
        let (grid, _) = random_grid(&mut rng);
        let cutoff = rng.below(16) + 1;
        let unfiltered = grid.clone().scenarios(&base).unwrap();
        let filtered = grid
            .filter(Filter::new(format!("threads <= {cutoff}"), move |s| {
                s.threads <= cutoff
            }))
            .scenarios(&base)
            .unwrap();

        // Soundness: every surviving cell satisfies the predicate.
        assert!(filtered.iter().all(|s| s.threads <= cutoff));
        // Completeness + order: the filtered list is exactly the satisfying
        // subsequence of the unfiltered enumeration.
        let expected: Vec<&ScenarioSpec> =
            unfiltered.iter().filter(|s| s.threads <= cutoff).collect();
        assert_eq!(filtered.iter().collect::<Vec<_>>(), expected);
    }
}

#[test]
fn zip_requires_equal_lengths() {
    let base = ScenarioSpec::default();
    let ok = Grid::axis(Axis::threads(&[1, 2, 4])).zip(Grid::axis(Axis::k(&[17, 21, 25])));
    assert_eq!(ok.scenarios(&base).unwrap().len(), 3);
    let bad = Grid::axis(Axis::threads(&[1, 2, 4])).zip(Grid::axis(Axis::k(&[17])));
    assert!(matches!(
        bad.scenarios(&base),
        Err(RecipeError::ZipLengthMismatch { left: 3, right: 1 })
    ));
}

#[test]
fn empty_grids_enumerate_zero_cells_everywhere() {
    let base = ScenarioSpec::default();
    let empty = Grid::axis(Axis::threads(&[]));
    assert!(empty.clone().scenarios(&base).unwrap().is_empty());
    // Crossing with empty annihilates; zipping empty with empty is fine.
    assert!(Grid::axis(Axis::k(&[17, 21]))
        .cross(empty.clone())
        .scenarios(&base)
        .unwrap()
        .is_empty());
    assert!(empty
        .clone()
        .zip(Grid::axis(Axis::k(&[])))
        .scenarios(&base)
        .unwrap()
        .is_empty());
    // Filtering empty stays empty.
    assert!(empty
        .filter(Filter::new("anything", |_| true))
        .scenarios(&base)
        .unwrap()
        .is_empty());
}

#[test]
fn filter_that_drops_everything_is_an_empty_grid_not_an_error() {
    let base = ScenarioSpec::default();
    let specs = Grid::axis(Axis::threads(&[1, 2, 4]))
        .filter(Filter::new("none", |_| false))
        .scenarios(&base)
        .unwrap();
    assert!(specs.is_empty());
}
