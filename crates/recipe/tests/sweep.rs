//! End-to-end sweep tests: cells are bit-identical to one-shot
//! `PakmanAssembler` runs, the server-backed executor matches the local one,
//! and degenerate recipes behave predictably.

use nmp_pak_core::backend::BackendId;
use nmp_pak_pakman::PakmanAssembler;
use nmp_pak_recipe::{
    metric, Axis, Executor, Gate, Grid, Recipe, RecipeError, ScenarioSpec, ScheduleSpec,
};

fn two_by_two() -> Recipe {
    Recipe {
        name: "2x2".to_string(),
        description: "threads x k".to_string(),
        base: ScenarioSpec {
            genome_length: 10_000,
            coverage: 15.0,
            ..ScenarioSpec::default()
        },
        grid: Grid::axis(Axis::threads(&[1, 4])).cross(Grid::axis(Axis::k(&[17, 21]))),
        gates: vec![Gate::at_least(metric::N50, 1.0)],
    }
}

#[test]
fn two_by_two_cells_are_bit_identical_to_one_shot_runs() {
    let recipe = two_by_two();
    let report = Executor::local().run(&recipe).unwrap();
    assert_eq!(report.cells.len(), 4);
    assert!(report.passed());

    for cell in &report.cells {
        let workload = cell.spec.synthesize_workload().unwrap();
        let reference = PakmanAssembler::new(cell.spec.pakman_config())
            .assemble(&workload.reads)
            .unwrap();
        assert_eq!(
            cell.output.contigs(),
            reference.contigs.as_slice(),
            "cell {} diverged from the one-shot run",
            cell.label
        );
        assert_eq!(cell.output.stats(), &reference.stats);
        assert_eq!(cell.metric(metric::N50), Some(reference.stats.n50 as f64));
    }
}

#[test]
fn server_mode_matches_local_mode() {
    let recipe = two_by_two();
    let local = Executor::local().run(&recipe).unwrap();
    let served = Executor::via_server(2, Some(256 << 20))
        .run(&recipe)
        .unwrap();
    assert_eq!(local.cells.len(), served.cells.len());
    for (a, b) in local.cells.iter().zip(served.cells.iter()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.output.contigs(), b.output.contigs());
        assert_eq!(a.output.stats(), b.output.stats());
    }
    assert!(served.passed());
}

#[test]
fn violated_gate_fails_the_report_without_erroring() {
    let mut recipe = two_by_two();
    recipe
        .gates
        .push(Gate::at_least(metric::N50, 1e12).on(nmp_pak_recipe::CellSelector::all()));
    let report = Executor::local().run(&recipe).unwrap();
    assert!(!report.passed());
    let failed = report.gates.iter().find(|g| !g.passed).unwrap();
    assert_eq!(failed.metric, metric::N50);
    assert!(failed.observed.is_some());
}

#[test]
fn gate_on_missing_metric_fails_loudly() {
    let mut recipe = two_by_two();
    recipe.gates.push(Gate::at_least("no_such_metric", 0.0));
    let report = Executor::local().run(&recipe).unwrap();
    assert!(!report.passed());
    let failed = report.gates.iter().find(|g| !g.passed).unwrap();
    assert!(failed.detail.contains("missing"));
}

#[test]
fn gate_matching_no_cells_fails_loudly() {
    let mut recipe = two_by_two();
    recipe
        .gates
        .push(Gate::at_least(metric::N50, 1.0).on(nmp_pak_recipe::CellSelector::shards_eq(999)));
    let report = Executor::local().run(&recipe).unwrap();
    assert!(!report.passed());
    let failed = report.gates.iter().find(|g| !g.passed).unwrap();
    assert!(failed.detail.contains("no cells matched"));
}

#[test]
fn empty_grid_reports_zero_cells_and_all_cell_gates_fail() {
    let recipe = Recipe {
        name: "empty".to_string(),
        description: "no cells".to_string(),
        base: ScenarioSpec::default(),
        grid: Grid::axis(Axis::threads(&[])),
        gates: vec![Gate::at_least(metric::N50, 1.0)],
    };
    let report = Executor::local().run(&recipe).unwrap();
    assert!(report.cells.is_empty());
    assert!(!report.passed());
}

#[test]
fn backend_on_a_batched_schedule_is_rejected() {
    let recipe = Recipe {
        name: "bad".to_string(),
        description: "backend x pipelined".to_string(),
        base: ScenarioSpec {
            backend: Some(BackendId::NMP_PAK),
            schedule: ScheduleSpec::Pipelined {
                batch_fraction: 0.5,
                depth: 2,
            },
            ..ScenarioSpec::default()
        },
        grid: Grid::axis(Axis::threads(&[4])),
        gates: Vec::new(),
    };
    assert!(matches!(
        Executor::local().run(&recipe),
        Err(RecipeError::UnsupportedCell { .. })
    ));
}

#[test]
fn report_json_is_structurally_sound() {
    let recipe = two_by_two();
    let report = Executor::local().run(&recipe).unwrap();
    let json = report.to_json();
    assert!(json.contains("\"recipe\": \"2x2\""));
    assert!(json.contains("\"passed\": true"));
    assert_eq!(json.matches("\"label\":").count(), 4);
    assert_eq!(json.matches("\"gate\":").count(), 1);
    // Balanced braces/brackets (cheap well-formedness check without a parser).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
