//! Typed scenario cells: the fully-bound configuration a grid enumerates into.

use nmp_pak_core::backend::BackendId;
use nmp_pak_core::Workload;
use nmp_pak_genome::GenomeError;
use nmp_pak_pakman::{BatchSchedule, PakmanConfig, ShardConfig, ShardSchedule, SpillConfig};

/// Identity of one synthesized read set: genome length plus the bit patterns
/// of coverage, error rate, and seed. Cells with equal keys assemble
/// bit-identical reads.
pub type WorkloadKey = (usize, u64, u64, u64);

/// How a cell's reads move through the pipeline: one shot, or batched under
/// one of the [`BatchSchedule`] strategies. The batch fraction travels with
/// the schedule because it only means something for batched runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleSpec {
    /// The whole read set in one pass (`PakmanAssembler::assemble`).
    SingleBatch,
    /// Batches run strictly one after another.
    Sequential {
        /// Fraction of the reads per batch (0 < f ≤ 1).
        batch_fraction: f64,
    },
    /// The front of batch i+1 overlaps the back of batch i.
    Overlapped {
        /// Fraction of the reads per batch (0 < f ≤ 1).
        batch_fraction: f64,
    },
    /// Depth-`depth` software pipelining across batches.
    Pipelined {
        /// Fraction of the reads per batch (0 < f ≤ 1).
        batch_fraction: f64,
        /// Number of batch fronts allowed in flight.
        depth: usize,
    },
}

impl ScheduleSpec {
    /// Whether the cell runs through the batch assembler rather than one shot.
    pub fn is_batched(&self) -> bool {
        !matches!(self, ScheduleSpec::SingleBatch)
    }

    /// Compact label used in cell ids (`single`, `seq0.25`, `pip0.5d3`, …).
    pub fn label(&self) -> String {
        match self {
            ScheduleSpec::SingleBatch => "single".to_string(),
            ScheduleSpec::Sequential { batch_fraction } => format!("seq{batch_fraction}"),
            ScheduleSpec::Overlapped { batch_fraction } => format!("ovl{batch_fraction}"),
            ScheduleSpec::Pipelined {
                batch_fraction,
                depth,
            } => format!("pip{batch_fraction}d{depth}"),
        }
    }

    /// The batch fraction plus the [`BatchSchedule`] to hand the batch
    /// assembler, or `None` for the one-shot path.
    pub fn to_batch(&self) -> Option<(f64, BatchSchedule)> {
        match *self {
            ScheduleSpec::SingleBatch => None,
            ScheduleSpec::Sequential { batch_fraction } => {
                Some((batch_fraction, BatchSchedule::Sequential))
            }
            ScheduleSpec::Overlapped { batch_fraction } => {
                Some((batch_fraction, BatchSchedule::Overlapped))
            }
            ScheduleSpec::Pipelined {
                batch_fraction,
                depth,
            } => Some((
                batch_fraction,
                BatchSchedule::Pipelined {
                    depth,
                    max_inflight_bytes: None,
                },
            )),
        }
    }

    /// The pipelining depth the schedule admits (1 for sequential/overlapped
    /// — overlap is depth-1 pipelining — and `depth` for pipelined cells).
    pub fn depth(&self) -> usize {
        match *self {
            ScheduleSpec::Pipelined { depth, .. } => depth.max(1),
            _ => 1,
        }
    }
}

/// One fully-bound scenario: every knob a sweep can vary, with defaults that
/// mirror the hand-rolled experiment drivers (`Workload::tiny(0xBE9C)`
/// assembled by `NmpPakAssembler::default()`), so a cell that binds nothing
/// reproduces the quick-scale figure runs bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Reference genome length in bases.
    pub genome_length: usize,
    /// Sequencing coverage (×).
    pub coverage: f64,
    /// Per-base substitution error rate.
    pub error_rate: f64,
    /// Seed for the reference genome (the sequencer derives its own from it).
    pub seed: u64,
    /// K-mer length (2..=32).
    pub k: usize,
    /// Minimum k-mer multiplicity kept by counting.
    pub min_kmer_count: u32,
    /// Worker threads for the software pipeline.
    pub threads: usize,
    /// Shard count (1 = monolithic single-graph path).
    pub shards: usize,
    /// How sharded compaction schedules its shards (lock-step barrier or the
    /// asynchronously scheduled verified-equivalent engine).
    pub shard_schedule: ShardSchedule,
    /// Batching strategy.
    pub schedule: ScheduleSpec,
    /// Hardware backend to simulate on the recorded trace, when any.
    pub backend: Option<BackendId>,
    /// Resident-byte cap for external-memory counting (`None` = in-memory).
    pub spill_budget: Option<u64>,
}

impl Default for ScenarioSpec {
    fn default() -> ScenarioSpec {
        ScenarioSpec {
            genome_length: 20_000,
            coverage: 20.0,
            error_rate: 0.0,
            seed: 0xBE9C,
            k: 21,
            min_kmer_count: 2,
            threads: 4,
            shards: 1,
            shard_schedule: ShardSchedule::Lockstep,
            schedule: ScheduleSpec::SingleBatch,
            backend: None,
            spill_budget: None,
        }
    }
}

impl ScenarioSpec {
    /// A deterministic, human-readable cell id encoding every knob. Cell
    /// deduplication compares these labels, so two specs collide exactly when
    /// every field renders identically.
    pub fn label(&self) -> String {
        let spill = match self.spill_budget {
            Some(bytes) => format!("b{bytes}"),
            None => "mem".to_string(),
        };
        let backend = match self.backend {
            Some(id) => id.as_str().to_string(),
            None => "sw".to_string(),
        };
        // Lock-step is the long-standing default; only the async schedule
        // marks the label, so every pre-existing cell id stays byte-stable.
        let shard_schedule = match self.shard_schedule {
            ShardSchedule::Lockstep => "",
            ShardSchedule::Async => "async",
        };
        format!(
            "g{}_x{}_e{}_s{:x}_k{}_t{}_sh{}{}_{}_{}_{}",
            self.genome_length,
            self.coverage,
            self.error_rate,
            self.seed,
            self.k,
            self.threads,
            self.shards,
            shard_schedule,
            self.schedule.label(),
            spill,
            backend,
        )
    }

    /// The software-pipeline configuration for this cell. Trace recording is
    /// enabled exactly when a backend simulation needs the trace, matching
    /// `NmpPakAssembler` (which forces it on for its backend runs).
    pub fn pakman_config(&self) -> PakmanConfig {
        PakmanConfig {
            k: self.k,
            min_kmer_count: self.min_kmer_count,
            compaction_node_threshold: 100,
            threads: self.threads,
            shards: ShardConfig {
                shard_count: self.shards,
            },
            shard_schedule: self.shard_schedule,
            spill: match self.spill_budget {
                Some(bytes) => SpillConfig::bounded(bytes),
                None => SpillConfig::in_memory(),
            },
            record_trace: self.backend.is_some(),
            ..PakmanConfig::default()
        }
    }

    /// The key identifying this cell's read set: two cells with equal keys
    /// assemble bit-identical reads (the workload name does not influence
    /// read content).
    pub fn workload_key(&self) -> WorkloadKey {
        (
            self.genome_length,
            self.coverage.to_bits(),
            self.error_rate.to_bits(),
            self.seed,
        )
    }

    /// Synthesizes this cell's workload; identical parameters yield
    /// bit-identical reads regardless of the label.
    ///
    /// # Errors
    ///
    /// Propagates genome-synthesis errors (e.g. a zero-length genome).
    pub fn synthesize_workload(&self) -> Result<Workload, GenomeError> {
        Workload::synthesize(
            self.label(),
            self.genome_length,
            self.coverage,
            self.error_rate,
            self.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_core::NmpPakAssembler;

    #[test]
    fn default_spec_mirrors_the_hand_rolled_figure_drivers() {
        let spec = ScenarioSpec {
            backend: Some(BackendId::NMP_PAK),
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.pakman_config(), NmpPakAssembler::default().pakman);
        let tiny = Workload::tiny(0xBE9C).unwrap();
        let ours = spec.synthesize_workload().unwrap();
        assert_eq!(ours.reads, tiny.reads);
    }

    #[test]
    fn labels_distinguish_every_knob() {
        let base = ScenarioSpec::default();
        let variants = [
            ScenarioSpec {
                k: 17,
                ..base.clone()
            },
            ScenarioSpec {
                shards: 4,
                ..base.clone()
            },
            ScenarioSpec {
                shards: 4,
                shard_schedule: ShardSchedule::Async,
                ..base.clone()
            },
            ScenarioSpec {
                schedule: ScheduleSpec::Pipelined {
                    batch_fraction: 0.5,
                    depth: 3,
                },
                ..base.clone()
            },
            ScenarioSpec {
                spill_budget: Some(65_536),
                ..base.clone()
            },
            ScenarioSpec {
                backend: Some(BackendId::NMP_PAK),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.label(), base.label());
        }
    }

    #[test]
    fn schedule_depth_and_batch_mapping() {
        assert_eq!(ScheduleSpec::SingleBatch.depth(), 1);
        assert!(ScheduleSpec::SingleBatch.to_batch().is_none());
        let pip = ScheduleSpec::Pipelined {
            batch_fraction: 0.25,
            depth: 3,
        };
        assert_eq!(pip.depth(), 3);
        let (fraction, schedule) = pip.to_batch().unwrap();
        assert_eq!(fraction, 0.25);
        assert!(matches!(
            schedule,
            BatchSchedule::Pipelined { depth: 3, .. }
        ));
    }
}
