//! The shipped recipes: the Fig. 12 backend sweep, the sharding scaling
//! curve, the spill-budget curve, and the CI smoke grid.
//!
//! Each recipe's gates carry the `NMP_PAK_BENCH_*` environment override that
//! used to gate the equivalent hand-rolled bench block, so CI can keep
//! exporting the same variables while the assertion lives here.

use crate::axis::Axis;
use crate::exec::metric;
use crate::gate::{CellSelector, Gate};
use crate::grid::{Filter, Grid};
use crate::spec::{ScenarioSpec, ScheduleSpec};
use crate::Recipe;
use nmp_pak_core::backend::BackendId;
use nmp_pak_pakman::{ShardConfig, ShardSchedule};

/// Names of the shipped recipes, in presentation order.
pub fn names() -> &'static [&'static str] {
    &["smoke", "fig12", "sharding", "spill", "multinode"]
}

/// Looks a shipped recipe up by name.
pub fn by_name(name: &str) -> Option<Recipe> {
    match name {
        "smoke" => Some(smoke()),
        "fig12" => Some(fig12()),
        "sharding" => Some(sharding()),
        "spill" => Some(spill()),
        "multinode" => Some(multinode()),
        _ => None,
    }
}

/// Fig. 12: every standard backend simulated on one shared software trace,
/// reported as runtime normalized to the CPU baseline. Cells reproduce the
/// hand-rolled `experiments fig12` quick-scale rows bit for bit.
pub fn fig12() -> Recipe {
    Recipe {
        name: "fig12".to_string(),
        description: "Backend sweep on one shared trace, normalized to the CPU baseline \
                      (paper Fig. 12)"
            .to_string(),
        base: ScenarioSpec::default(),
        grid: Grid::axis(Axis::backend(&[
            BackendId::CPU_BASELINE_UNOPTIMIZED,
            BackendId::CPU_BASELINE,
            BackendId::GPU_BASELINE,
            BackendId::CPU_PAK,
            BackendId::NMP_PAK,
            BackendId::NMP_IDEAL_PE,
            BackendId::NMP_IDEAL_FORWARDING,
        ])),
        gates: vec![
            // The baseline normalizes to exactly 1.0 against itself; anything
            // else indicates the shared-trace contract broke.
            Gate::at_least(metric::NORMALIZED_PERFORMANCE, 1.0)
                .on(CellSelector::backend_is(BackendId::CPU_BASELINE)),
            Gate::at_most(metric::NORMALIZED_PERFORMANCE, 1.0)
                .on(CellSelector::backend_is(BackendId::CPU_BASELINE)),
            // The paper's headline: NMP-PaK beats the CPU baseline.
            Gate::at_least(metric::NORMALIZED_PERFORMANCE, 1.0)
                .on(CellSelector::backend_is(BackendId::NMP_PAK)),
            Gate::at_least(metric::N50, 1.0),
        ],
    }
}

/// The sharding scaling curve: shard counts up to the channel count (a filter
/// drops the out-of-range point), gated on the measured mailbox telemetry and
/// — via the bench probe — the sharding tax at one shard.
pub fn sharding() -> Recipe {
    Recipe {
        name: "sharding".to_string(),
        description: "Owner-computes sharded execution across shard counts, gated on \
                      mailbox telemetry and the one-shard overhead"
            .to_string(),
        base: ScenarioSpec::default(),
        grid: Grid::axis(Axis::shards(&[1, 2, 4, 8, 16]))
            .filter(Filter::shards_at_most(ShardConfig::DEFAULT_CHANNELS)),
        gates: vec![
            Gate::at_least(metric::CROSS_SHARD_BYTES, 1.0).on(CellSelector::sharded()),
            // §6.3: at 8 shards the cross-shard fraction approaches 7/8.
            Gate::at_least(metric::CROSS_SHARD_FRACTION, 0.5).on(CellSelector::shards_eq(8)),
            Gate::at_most(metric::SHARDED_OVERHEAD_AT_ONE, 1.15)
                .with_env("NMP_PAK_BENCH_MAX_SHARD_OVERHEAD")
                .on(CellSelector::shards_eq(1)),
        ],
    }
}

/// The spill-budget curve: in-memory counting against two bounded budgets,
/// gated on the spill telemetry and — via the bench probe — the bounded
/// counting overhead.
pub fn spill() -> Recipe {
    Recipe {
        name: "spill".to_string(),
        description: "External-memory counting across resident-byte budgets, gated on \
                      spill telemetry and bounded-counting overhead"
            .to_string(),
        base: ScenarioSpec::default(),
        grid: Grid::axis(Axis::spill_budget(&[
            None,
            Some(512 * 1024),
            Some(64 * 1024),
        ])),
        gates: vec![
            Gate::at_least(metric::BYTES_SPILLED, 1.0).on(CellSelector::spilled()),
            Gate::at_least(metric::MERGE_PASSES, 1.0).on(CellSelector::spilled()),
            Gate::at_most(metric::SPILL_OVERHEAD, 12.0)
                .with_env("NMP_PAK_BENCH_MAX_SPILL_OVERHEAD")
                .on(CellSelector::spilled()),
        ],
    }
}

/// The multi-node projection sweep: lock-step against the async
/// verified-equivalent schedule at 8 shards, each measured run projected onto
/// 2/4/8-node clusters by the default network model charging the cell's own
/// mailbox flush ledger.
pub fn multinode() -> Recipe {
    let async_cells = CellSelector::custom("async schedule", |s| {
        s.shard_schedule == ShardSchedule::Async
    });
    Recipe {
        name: "multinode".to_string(),
        description: "Async vs lock-step shard scheduling at 8 shards, projected onto \
                      2/4/8-node clusters by the mailbox network model"
            .to_string(),
        base: ScenarioSpec {
            shards: 8,
            ..ScenarioSpec::default()
        },
        grid: Grid::axis(Axis::shard_schedule(&[
            ShardSchedule::Lockstep,
            ShardSchedule::Async,
        ])),
        gates: vec![
            // The schedules are verified-equivalent, so assembly quality must
            // be identical cell to cell; N50 ≥ 1 keeps both producing contigs.
            Gate::at_least(metric::N50, 1.0),
            // Removing the barrier can only shorten the modeled critical path
            // rebuilt from the async run's own measured round times; CI raises
            // the floor through the env override once a margin is established.
            Gate::at_least(metric::ASYNC_CRITICAL_PATH_SPEEDUP, 1.0)
                .with_env("NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP")
                .on(async_cells.clone()),
            // Every cell must emit all three cluster projections; the low
            // floor asserts emission and sanity, not merit — §6.3's point is
            // precisely that the network may eat the parallelism.
            Gate::at_least(metric::MULTINODE_2_SPEEDUP, 0.05),
            Gate::at_least(metric::MULTINODE_4_SPEEDUP, 0.05),
            Gate::at_least(metric::MULTINODE_8_SPEEDUP, 0.05),
            // With every shard on its own node, the §6.3 cross-node share of
            // mailbox traffic approaches 7/8.
            Gate::at_least(metric::MULTINODE_8_CROSS_FRACTION, 0.5).on(async_cells),
        ],
    }
}

/// The CI smoke grid: a tiny cross of threads × schedule exercising `cross`,
/// `plug` and `filter`, carrying the historical `NMP_PAK_BENCH_*` speedup
/// floors as recipe gates (the probe computes the speedups against the
/// vendored baselines).
pub fn smoke() -> Recipe {
    let base = ScenarioSpec {
        genome_length: 12_000,
        coverage: 15.0,
        ..ScenarioSpec::default()
    };
    let full_run = CellSelector::custom("threads=4 single-batch", |s| {
        s.threads == 4 && !s.schedule.is_batched()
    });
    Recipe {
        name: "smoke".to_string(),
        description: "Tiny threads x schedule grid carrying the historical CI speedup \
                      floors as declarative gates"
            .to_string(),
        base,
        grid: Grid::axis(Axis::threads(&[1, 4]))
            .cross(Grid::axis(Axis::batch_schedule(&[
                ScheduleSpec::SingleBatch,
                ScheduleSpec::Pipelined {
                    batch_fraction: 0.5,
                    depth: 2,
                },
            ])))
            // Single-thread hosts gain nothing from pipelining; skip the cell.
            .filter(Filter::new("skip single-thread pipelined", |s| {
                s.threads > 1 || !s.schedule.is_batched()
            }))
            .plug(Grid::axis(Axis::k(&[21]))),
        gates: vec![
            Gate::at_least(metric::N50, 1.0),
            Gate::at_least(metric::SPEEDUP_COUNTING_PLUS_CONSTRUCTION, 1.3)
                .with_env("NMP_PAK_BENCH_MIN_SPEEDUP")
                .on(full_run.clone()),
            Gate::at_least(metric::SPEEDUP_COMPACTION, 1.2)
                .with_env("NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP")
                .on(full_run),
            Gate::at_least(metric::CRITICAL_PATH_SPEEDUP, 1.0)
                .with_env("NMP_PAK_BENCH_MIN_OVERLAP_SPEEDUP")
                .on(CellSelector::batched()),
            Gate::at_least(metric::PIPELINED_CRITICAL_PATH_SPEEDUP, 1.0)
                .with_env("NMP_PAK_BENCH_MIN_PIPELINED_SPEEDUP")
                .on(CellSelector::batched()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_recipe_resolves_and_enumerates() {
        for name in names() {
            let recipe = by_name(name).unwrap();
            assert_eq!(&recipe.name, name);
            let specs = recipe.scenarios().unwrap();
            assert!(!specs.is_empty(), "recipe `{name}` enumerates no cells");
        }
        assert!(by_name("fig99").is_none());
    }

    #[test]
    fn fig12_enumerates_the_seven_standard_backends_in_order() {
        let specs = fig12().scenarios().unwrap();
        let ids: Vec<&str> = specs.iter().map(|s| s.backend.unwrap().as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "cpu-baseline-unoptimized",
                "cpu-baseline",
                "gpu-baseline",
                "cpu-pak",
                "nmp-pak",
                "nmp-ideal-pe",
                "nmp-ideal-forwarding",
            ]
        );
    }

    #[test]
    fn sharding_filter_drops_the_out_of_range_point() {
        let specs = sharding().scenarios().unwrap();
        let shards: Vec<usize> = specs.iter().map(|s| s.shards).collect();
        assert_eq!(shards, vec![1, 2, 4, 8]);
    }

    #[test]
    fn multinode_enumerates_both_schedules_at_eight_shards() {
        let specs = multinode().scenarios().unwrap();
        let schedules: Vec<ShardSchedule> = specs.iter().map(|s| s.shard_schedule).collect();
        assert_eq!(
            schedules,
            vec![ShardSchedule::Lockstep, ShardSchedule::Async]
        );
        assert!(specs.iter().all(|s| s.shards == 8));
        let labels: Vec<String> = specs.iter().map(ScenarioSpec::label).collect();
        assert_ne!(labels[0], labels[1], "the schedule must mark the cell id");
    }

    #[test]
    fn smoke_filter_drops_single_thread_pipelined() {
        let specs = smoke().scenarios().unwrap();
        assert_eq!(specs.len(), 3);
        assert!(!specs
            .iter()
            .any(|s| s.threads == 1 && s.schedule.is_batched()));
        assert!(specs.iter().all(|s| s.k == 21));
    }
}
