//! Named axes: the typed value lists grids are composed from.
//!
//! An [`Axis`] binds one scenario knob ([`AxisKey`]) to a list of candidate
//! values; composition ([`crate::Grid`]) decides how axes combine into cells.

use crate::spec::{ScenarioSpec, ScheduleSpec};
use nmp_pak_core::backend::BackendId;
use nmp_pak_pakman::ShardSchedule;

/// Identity of one scenario knob. Grid composition rejects a cell that binds
/// the same key twice (except [`crate::Grid::plug`], where the left side
/// wins), so every key appears at most once per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AxisKey {
    /// Reference genome length.
    GenomeLength,
    /// Sequencing coverage.
    Coverage,
    /// Substitution error rate.
    ErrorRate,
    /// Genome seed.
    Seed,
    /// K-mer length.
    K,
    /// Worker threads.
    Threads,
    /// Shard count.
    Shards,
    /// Shard compaction schedule (lock-step or async).
    ShardSchedule,
    /// Batch schedule.
    BatchSchedule,
    /// Simulated hardware backend.
    Backend,
    /// Spill budget (resident-byte cap).
    SpillBudget,
}

impl AxisKey {
    /// The knob's name as it appears in labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            AxisKey::GenomeLength => "genome_length",
            AxisKey::Coverage => "coverage",
            AxisKey::ErrorRate => "error_rate",
            AxisKey::Seed => "seed",
            AxisKey::K => "k",
            AxisKey::Threads => "threads",
            AxisKey::Shards => "shards",
            AxisKey::ShardSchedule => "shard_schedule",
            AxisKey::BatchSchedule => "batch_schedule",
            AxisKey::Backend => "backend",
            AxisKey::SpillBudget => "spill_budget",
        }
    }
}

impl std::fmt::Display for AxisKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One binding of a knob to a concrete value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setting {
    /// Genome length in bases.
    GenomeLength(usize),
    /// Coverage (×).
    Coverage(f64),
    /// Substitution error rate.
    ErrorRate(f64),
    /// Genome seed.
    Seed(u64),
    /// K-mer length.
    K(usize),
    /// Worker threads.
    Threads(usize),
    /// Shard count.
    Shards(usize),
    /// Shard compaction schedule.
    ShardSchedule(ShardSchedule),
    /// Batch schedule.
    BatchSchedule(ScheduleSpec),
    /// Hardware backend.
    Backend(BackendId),
    /// Spill budget; `None` keeps counting in memory.
    SpillBudget(Option<u64>),
}

impl Setting {
    /// The knob this value binds.
    pub fn key(&self) -> AxisKey {
        match self {
            Setting::GenomeLength(_) => AxisKey::GenomeLength,
            Setting::Coverage(_) => AxisKey::Coverage,
            Setting::ErrorRate(_) => AxisKey::ErrorRate,
            Setting::Seed(_) => AxisKey::Seed,
            Setting::K(_) => AxisKey::K,
            Setting::Threads(_) => AxisKey::Threads,
            Setting::Shards(_) => AxisKey::Shards,
            Setting::ShardSchedule(_) => AxisKey::ShardSchedule,
            Setting::BatchSchedule(_) => AxisKey::BatchSchedule,
            Setting::Backend(_) => AxisKey::Backend,
            Setting::SpillBudget(_) => AxisKey::SpillBudget,
        }
    }

    /// Applies this binding to a scenario, returning the updated scenario.
    pub fn apply(&self, mut spec: ScenarioSpec) -> ScenarioSpec {
        match *self {
            Setting::GenomeLength(v) => spec.genome_length = v,
            Setting::Coverage(v) => spec.coverage = v,
            Setting::ErrorRate(v) => spec.error_rate = v,
            Setting::Seed(v) => spec.seed = v,
            Setting::K(v) => spec.k = v,
            Setting::Threads(v) => spec.threads = v,
            Setting::Shards(v) => spec.shards = v,
            Setting::ShardSchedule(v) => spec.shard_schedule = v,
            Setting::BatchSchedule(v) => spec.schedule = v,
            Setting::Backend(v) => spec.backend = Some(v),
            Setting::SpillBudget(v) => spec.spill_budget = v,
        }
        spec
    }
}

/// A named list of candidate values for one knob. An empty axis enumerates
/// zero cells (and anything crossed with it is empty too).
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    key: AxisKey,
    values: Vec<Setting>,
}

impl Axis {
    fn new(key: AxisKey, values: Vec<Setting>) -> Axis {
        debug_assert!(values.iter().all(|v| v.key() == key));
        Axis { key, values }
    }

    /// Genome lengths in bases.
    pub fn genome_length(values: &[usize]) -> Axis {
        Axis::new(
            AxisKey::GenomeLength,
            values.iter().map(|&v| Setting::GenomeLength(v)).collect(),
        )
    }

    /// Coverage values (×).
    pub fn coverage(values: &[f64]) -> Axis {
        Axis::new(
            AxisKey::Coverage,
            values.iter().map(|&v| Setting::Coverage(v)).collect(),
        )
    }

    /// Substitution error rates.
    pub fn error_rate(values: &[f64]) -> Axis {
        Axis::new(
            AxisKey::ErrorRate,
            values.iter().map(|&v| Setting::ErrorRate(v)).collect(),
        )
    }

    /// Genome seeds.
    pub fn seed(values: &[u64]) -> Axis {
        Axis::new(
            AxisKey::Seed,
            values.iter().map(|&v| Setting::Seed(v)).collect(),
        )
    }

    /// K-mer lengths.
    pub fn k(values: &[usize]) -> Axis {
        Axis::new(AxisKey::K, values.iter().map(|&v| Setting::K(v)).collect())
    }

    /// Worker thread counts.
    pub fn threads(values: &[usize]) -> Axis {
        Axis::new(
            AxisKey::Threads,
            values.iter().map(|&v| Setting::Threads(v)).collect(),
        )
    }

    /// Shard counts.
    pub fn shards(values: &[usize]) -> Axis {
        Axis::new(
            AxisKey::Shards,
            values.iter().map(|&v| Setting::Shards(v)).collect(),
        )
    }

    /// Shard compaction schedules.
    pub fn shard_schedule(values: &[ShardSchedule]) -> Axis {
        Axis::new(
            AxisKey::ShardSchedule,
            values.iter().map(|&v| Setting::ShardSchedule(v)).collect(),
        )
    }

    /// Batch schedules.
    pub fn batch_schedule(values: &[ScheduleSpec]) -> Axis {
        Axis::new(
            AxisKey::BatchSchedule,
            values.iter().map(|&v| Setting::BatchSchedule(v)).collect(),
        )
    }

    /// Hardware backends.
    pub fn backend(values: &[BackendId]) -> Axis {
        Axis::new(
            AxisKey::Backend,
            values.iter().map(|&v| Setting::Backend(v)).collect(),
        )
    }

    /// Spill budgets (`None` = in-memory counting).
    pub fn spill_budget(values: &[Option<u64>]) -> Axis {
        Axis::new(
            AxisKey::SpillBudget,
            values.iter().map(|&v| Setting::SpillBudget(v)).collect(),
        )
    }

    /// The knob this axis varies.
    pub fn key(&self) -> AxisKey {
        self.key
    }

    /// Number of candidate values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no values (enumerates zero cells).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub(crate) fn settings(&self) -> &[Setting] {
        &self.values
    }
}
