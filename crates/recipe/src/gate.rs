//! Declarative gates: per-metric pass/fail assertions over sweep cells.
//!
//! A gate names a metric, a direction ([`GateOp`]), a threshold, the cells it
//! applies to ([`CellSelector`]), and optionally an environment variable whose
//! value overrides the threshold at evaluation time — the migration path off
//! the `NMP_PAK_BENCH_*` env-var sprawl: CI keeps exporting the same variables
//! while the assertion itself lives in the recipe.
//!
//! Gates fail loudly rather than silently vacuously: a selector matching zero
//! cells fails, and a matched cell missing the metric fails.

use crate::exec::CellResult;
use crate::spec::ScenarioSpec;
use std::sync::Arc;

/// Direction of a gate's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// Metric must be `>= threshold` on every selected cell.
    AtLeast,
    /// Metric must be `<= threshold` on every selected cell.
    AtMost,
}

impl GateOp {
    fn symbol(self) -> &'static str {
        match self {
            GateOp::AtLeast => ">=",
            GateOp::AtMost => "<=",
        }
    }
}

/// Which cells a gate applies to.
#[derive(Clone)]
pub struct CellSelector {
    label: String,
    pred: Arc<dyn Fn(&ScenarioSpec) -> bool + Send + Sync>,
}

impl CellSelector {
    /// A selector from a label and a predicate.
    pub fn custom(
        label: impl Into<String>,
        pred: impl Fn(&ScenarioSpec) -> bool + Send + Sync + 'static,
    ) -> CellSelector {
        CellSelector {
            label: label.into(),
            pred: Arc::new(pred),
        }
    }

    /// Every cell.
    pub fn all() -> CellSelector {
        CellSelector::custom("all cells", |_| true)
    }

    /// Cells with exactly `shards` shards.
    pub fn shards_eq(shards: usize) -> CellSelector {
        CellSelector::custom(format!("shards={shards}"), move |s| s.shards == shards)
    }

    /// Cells running sharded (more than one shard).
    pub fn sharded() -> CellSelector {
        CellSelector::custom("shards>1", |s| s.shards > 1)
    }

    /// Cells simulating the given backend.
    pub fn backend_is(id: nmp_pak_core::backend::BackendId) -> CellSelector {
        CellSelector::custom(format!("backend={id}"), move |s| s.backend == Some(id))
    }

    /// Cells with a bounded spill budget.
    pub fn spilled() -> CellSelector {
        CellSelector::custom("spill-bounded", |s| s.spill_budget.is_some())
    }

    /// Cells running a batched schedule.
    pub fn batched() -> CellSelector {
        CellSelector::custom("batched", |s| s.schedule.is_batched())
    }

    /// The selector's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the selector matches a scenario.
    pub fn matches(&self, spec: &ScenarioSpec) -> bool {
        (self.pred)(spec)
    }
}

impl std::fmt::Debug for CellSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSelector")
            .field("label", &self.label)
            .finish()
    }
}

/// One declarative assertion over the sweep's cells.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The metric name the gate reads from each selected cell.
    pub metric: String,
    /// Comparison direction.
    pub op: GateOp,
    /// Default threshold, used when no environment override applies.
    pub threshold: f64,
    /// Environment variable whose (parseable) value overrides the threshold.
    pub env_override: Option<String>,
    /// The cells the gate applies to.
    pub selector: CellSelector,
}

impl Gate {
    /// `metric >= threshold` over all cells.
    pub fn at_least(metric: impl Into<String>, threshold: f64) -> Gate {
        Gate {
            metric: metric.into(),
            op: GateOp::AtLeast,
            threshold,
            env_override: None,
            selector: CellSelector::all(),
        }
    }

    /// `metric <= threshold` over all cells.
    pub fn at_most(metric: impl Into<String>, threshold: f64) -> Gate {
        Gate {
            metric: metric.into(),
            op: GateOp::AtMost,
            threshold,
            env_override: None,
            selector: CellSelector::all(),
        }
    }

    /// Lets the named environment variable override the threshold.
    #[must_use]
    pub fn with_env(mut self, var: impl Into<String>) -> Gate {
        self.env_override = Some(var.into());
        self
    }

    /// Restricts the gate to cells matched by `selector`.
    #[must_use]
    pub fn on(mut self, selector: CellSelector) -> Gate {
        self.selector = selector;
        self
    }

    /// The threshold in force: the environment override when set and
    /// parseable, the recipe's default otherwise.
    pub fn effective_threshold(&self) -> f64 {
        self.env_override
            .as_deref()
            .and_then(|var| std::env::var(var).ok())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(self.threshold)
    }

    /// Human-readable description (`metric >= 1.3 on shards=1`).
    pub fn describe(&self) -> String {
        format!(
            "{} {} {} on {}",
            self.metric,
            self.op.symbol(),
            self.effective_threshold(),
            self.selector.label()
        )
    }

    /// Evaluates the gate over the sweep's cells.
    pub fn evaluate(&self, cells: &[CellResult]) -> GateOutcome {
        let threshold = self.effective_threshold();
        let matched: Vec<&CellResult> = cells
            .iter()
            .filter(|c| self.selector.matches(&c.spec))
            .collect();
        if matched.is_empty() {
            return GateOutcome {
                description: self.describe(),
                metric: self.metric.clone(),
                threshold,
                observed: None,
                cells_checked: 0,
                passed: false,
                detail: format!("no cells matched selector `{}`", self.selector.label()),
            };
        }

        let mut worst: Option<(f64, String)> = None;
        let mut missing = Vec::new();
        for cell in &matched {
            match cell.metric(&self.metric) {
                Some(value) => {
                    let is_worse = match (&worst, self.op) {
                        (None, _) => true,
                        (Some((w, _)), GateOp::AtLeast) => value < *w,
                        (Some((w, _)), GateOp::AtMost) => value > *w,
                    };
                    if is_worse {
                        worst = Some((value, cell.label.clone()));
                    }
                }
                None => missing.push(cell.label.clone()),
            }
        }
        if !missing.is_empty() {
            return GateOutcome {
                description: self.describe(),
                metric: self.metric.clone(),
                threshold,
                observed: None,
                cells_checked: matched.len(),
                passed: false,
                detail: format!(
                    "metric `{}` missing on {} cell(s): {}",
                    self.metric,
                    missing.len(),
                    missing.join(", ")
                ),
            };
        }

        let (value, label) = worst.expect("matched cells is non-empty");
        let passed = match self.op {
            GateOp::AtLeast => value >= threshold,
            GateOp::AtMost => value <= threshold,
        };
        GateOutcome {
            description: self.describe(),
            metric: self.metric.clone(),
            threshold,
            observed: Some(value),
            cells_checked: matched.len(),
            passed,
            detail: format!("worst cell `{label}`: {value}"),
        }
    }
}

/// The result of evaluating one gate.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Human-readable description of the gate.
    pub description: String,
    /// The metric the gate read.
    pub metric: String,
    /// The threshold in force (after any environment override).
    pub threshold: f64,
    /// The worst observed value across selected cells, when all were present.
    pub observed: Option<f64>,
    /// Number of cells the selector matched.
    pub cells_checked: usize,
    /// Whether the gate held.
    pub passed: bool,
    /// Failure/worst-cell details.
    pub detail: String,
}
