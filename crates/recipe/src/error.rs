//! Errors surfaced by recipe composition and execution.

use crate::axis::AxisKey;
use nmp_pak_genome::GenomeError;
use nmp_pak_pakman::PakmanError;

/// Everything that can go wrong building or running a recipe.
#[derive(Debug)]
pub enum RecipeError {
    /// `cross`/`zip` would bind the same knob twice in one cell.
    DuplicateAxis {
        /// The knob bound twice.
        key: AxisKey,
    },
    /// `zip` sides enumerate different cell counts.
    ZipLengthMismatch {
        /// Cells on the left side.
        left: usize,
        /// Cells on the right side.
        right: usize,
    },
    /// Two cells materialize to the identical scenario.
    DuplicateCell {
        /// The colliding cell label.
        label: String,
    },
    /// A cell names a backend the standard registry does not know.
    UnknownBackend {
        /// The backend id.
        id: String,
    },
    /// A cell combines knobs the executor cannot honor together.
    UnsupportedCell {
        /// The offending cell label.
        label: String,
        /// Why the combination is unsupported.
        reason: String,
    },
    /// Workload synthesis failed.
    Workload(GenomeError),
    /// The software pipeline failed.
    Pipeline(PakmanError),
}

impl std::fmt::Display for RecipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecipeError::DuplicateAxis { key } => {
                write!(f, "axis `{key}` is bound twice in one cell")
            }
            RecipeError::ZipLengthMismatch { left, right } => {
                write!(f, "zip sides enumerate {left} vs {right} cells")
            }
            RecipeError::DuplicateCell { label } => {
                write!(f, "grid enumerates duplicate cell `{label}`")
            }
            RecipeError::UnknownBackend { id } => {
                write!(f, "backend `{id}` is not in the standard registry")
            }
            RecipeError::UnsupportedCell { label, reason } => {
                write!(f, "cell `{label}` is unsupported: {reason}")
            }
            RecipeError::Workload(e) => write!(f, "workload synthesis failed: {e}"),
            RecipeError::Pipeline(e) => write!(f, "pipeline failed: {e}"),
        }
    }
}

impl std::error::Error for RecipeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecipeError::Workload(e) => Some(e),
            RecipeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenomeError> for RecipeError {
    fn from(e: GenomeError) -> RecipeError {
        RecipeError::Workload(e)
    }
}

impl From<PakmanError> for RecipeError {
    fn from(e: PakmanError) -> RecipeError {
        RecipeError::Pipeline(e)
    }
}
