//! Composable scenario-sweep recipes for the NMP-PaK reproduction.
//!
//! The paper's evaluation is a cross-product of knobs — genome scale, k,
//! shard count, backend, batch schedule — and this crate turns that product
//! into data instead of hand-rolled loops:
//!
//! * [`Axis`] — a named list of values for one knob (`threads`, `shards`,
//!   `backend`, …).
//! * [`Grid`] — composition: [`Grid::cross`] (cartesian product),
//!   [`Grid::zip`] (positional pairing), [`Grid::plug`] (fill unbound knobs),
//!   [`Grid::filter`] (drop cells by predicate). Enumeration is deterministic
//!   and duplicate-free.
//! * [`ScenarioSpec`] — one fully-bound cell; its defaults mirror the
//!   hand-rolled quick-scale figure drivers, so recipes are bit-identical to
//!   the subcommands they replace.
//! * [`Gate`] — a declarative assertion (`speedup >= 1.3`) over selected
//!   cells, with an optional environment-variable threshold override for the
//!   `NMP_PAK_BENCH_*` migration.
//! * [`Executor`] — runs every cell through `PakmanAssembler`/`BatchAssembler`
//!   (or concurrently through the [`nmp_pak_server::AssemblyServer`] under one
//!   memory ledger), simulates requested backends on the recorded trace, and
//!   emits one [`SweepReport`] (`BENCH_sweep.json`).
//!
//! Shipped recipes live in [`builtin`]: `fig12`, `sharding`, `spill`, and the
//! CI `smoke` grid.

#![warn(missing_docs)]

pub mod axis;
pub mod builtin;
pub mod error;
pub mod exec;
pub mod gate;
pub mod grid;
pub mod report;
pub mod spec;

pub use axis::{Axis, AxisKey, Setting};
pub use error::RecipeError;
pub use exec::{metric, CellOutput, CellResult, ExecMode, Executor, MetricProbe};
pub use gate::{CellSelector, Gate, GateOp, GateOutcome};
pub use grid::{Filter, Grid};
pub use report::SweepReport;
pub use spec::{ScenarioSpec, ScheduleSpec, WorkloadKey};

/// A named sweep: a base scenario, a grid of cells over it, and the gates the
/// sweep must satisfy.
#[derive(Debug, Clone)]
pub struct Recipe {
    /// Recipe name (the `experiments sweep <name>` argument).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// The scenario every cell starts from; unbound knobs keep these values.
    pub base: ScenarioSpec,
    /// The grid of cells.
    pub grid: Grid,
    /// The declarative assertions evaluated over the executed cells.
    pub gates: Vec<Gate>,
}

impl Recipe {
    /// Deterministically enumerates the recipe's cells.
    ///
    /// # Errors
    ///
    /// Grid-composition errors ([`RecipeError::DuplicateAxis`],
    /// [`RecipeError::ZipLengthMismatch`], [`RecipeError::DuplicateCell`]).
    pub fn scenarios(&self) -> Result<Vec<ScenarioSpec>, RecipeError> {
        self.grid.scenarios(&self.base)
    }
}
