//! Grid composition: `cross`/`zip`/`plug`/`filter` over axes, with
//! deterministic enumeration into [`ScenarioSpec`] cells.
//!
//! Composition laws (all enumeration is left-to-right, right side fastest):
//!
//! * `a.cross(b)` — cartesian product. Rejects overlapping keys.
//! * `a.zip(b)` — positional pairing; cell *i* of `a` with cell *i* of `b`.
//!   Rejects overlapping keys and mismatched lengths.
//! * `a.plug(b)` — product where `a`'s bindings win on overlap: `b` fills in
//!   knobs `a` left unbound. Cells made identical by the override collapse,
//!   keeping the first occurrence.
//! * `g.filter(f)` — keeps the cells whose materialized scenario satisfies
//!   the predicate, preserving order.
//!
//! Enumerating the same grid twice yields the same cells in the same order,
//! and [`Grid::scenarios`] rejects grids that enumerate duplicate cells.

use crate::axis::{Axis, AxisKey, Setting};
use crate::error::RecipeError;
use crate::spec::ScenarioSpec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A partially-bound cell: one value per bound knob.
pub(crate) type Cell = BTreeMap<AxisKey, Setting>;

/// A labeled cell predicate, applied to fully-materialized scenarios.
#[derive(Clone)]
pub struct Filter {
    label: String,
    pred: Arc<dyn Fn(&ScenarioSpec) -> bool + Send + Sync>,
}

impl Filter {
    /// A filter from a label (for reports) and a predicate.
    pub fn new(
        label: impl Into<String>,
        pred: impl Fn(&ScenarioSpec) -> bool + Send + Sync + 'static,
    ) -> Filter {
        Filter {
            label: label.into(),
            pred: Arc::new(pred),
        }
    }

    /// Keeps cells whose shard count does not exceed `channels` — the
    /// canonical "skip shards > channels" guard.
    pub fn shards_at_most(channels: usize) -> Filter {
        Filter::new(format!("shards <= {channels}"), move |spec| {
            spec.shards <= channels
        })
    }

    /// The filter's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    pub(crate) fn keeps(&self, spec: &ScenarioSpec) -> bool {
        (self.pred)(spec)
    }
}

impl std::fmt::Debug for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filter")
            .field("label", &self.label)
            .finish()
    }
}

/// A composable scenario grid.
#[derive(Debug, Clone)]
pub enum Grid {
    /// A single axis: one cell per value.
    Axis(Axis),
    /// Cartesian product of two grids (disjoint keys).
    Cross(Box<Grid>, Box<Grid>),
    /// Positional pairing of two equal-length grids (disjoint keys).
    Zip(Box<Grid>, Box<Grid>),
    /// Product where the left grid's bindings win on key overlap.
    Plug(Box<Grid>, Box<Grid>),
    /// A grid restricted to cells satisfying a predicate.
    Filter(Box<Grid>, Filter),
}

impl Grid {
    /// A grid over one axis.
    pub fn axis(axis: Axis) -> Grid {
        Grid::Axis(axis)
    }

    /// Cartesian product with `other` (right side varies fastest).
    #[must_use]
    pub fn cross(self, other: Grid) -> Grid {
        Grid::Cross(Box::new(self), Box::new(other))
    }

    /// Positional pairing with `other` (must enumerate the same cell count).
    #[must_use]
    pub fn zip(self, other: Grid) -> Grid {
        Grid::Zip(Box::new(self), Box::new(other))
    }

    /// Product where `self`'s bindings win on overlap; `other` fills in the
    /// knobs `self` left unbound.
    #[must_use]
    pub fn plug(self, other: Grid) -> Grid {
        Grid::Plug(Box::new(self), Box::new(other))
    }

    /// Restricts the grid to cells whose scenario satisfies `filter`.
    #[must_use]
    pub fn filter(self, filter: Filter) -> Grid {
        Grid::Filter(Box::new(self), filter)
    }

    /// Enumerates the raw cells (partial bindings) of this grid.
    pub(crate) fn cells(&self, base: &ScenarioSpec) -> Result<Vec<Cell>, RecipeError> {
        match self {
            Grid::Axis(axis) => Ok(axis
                .settings()
                .iter()
                .map(|s| {
                    let mut cell = Cell::new();
                    cell.insert(s.key(), *s);
                    cell
                })
                .collect()),
            Grid::Cross(a, b) => {
                let (left, right) = (a.cells(base)?, b.cells(base)?);
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        out.push(merge_disjoint(l, r)?);
                    }
                }
                Ok(out)
            }
            Grid::Zip(a, b) => {
                let (left, right) = (a.cells(base)?, b.cells(base)?);
                if left.len() != right.len() {
                    return Err(RecipeError::ZipLengthMismatch {
                        left: left.len(),
                        right: right.len(),
                    });
                }
                left.iter()
                    .zip(right.iter())
                    .map(|(l, r)| merge_disjoint(l, r))
                    .collect()
            }
            Grid::Plug(a, b) => {
                let (left, right) = (a.cells(base)?, b.cells(base)?);
                let mut out: Vec<Cell> = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        let mut cell = l.clone();
                        for (key, value) in r {
                            cell.entry(*key).or_insert(*value);
                        }
                        if !out.contains(&cell) {
                            out.push(cell);
                        }
                    }
                }
                Ok(out)
            }
            Grid::Filter(grid, filter) => {
                let cells = grid.cells(base)?;
                Ok(cells
                    .into_iter()
                    .filter(|cell| filter.keeps(&materialize(base, cell)))
                    .collect())
            }
        }
    }

    /// Deterministically enumerates the grid into fully-bound scenarios over
    /// `base` (unbound knobs keep the base's values).
    ///
    /// # Errors
    ///
    /// [`RecipeError::DuplicateAxis`] when `cross`/`zip` would bind a knob
    /// twice, [`RecipeError::ZipLengthMismatch`] for unequal zip sides, and
    /// [`RecipeError::DuplicateCell`] when two cells materialize identically.
    pub fn scenarios(&self, base: &ScenarioSpec) -> Result<Vec<ScenarioSpec>, RecipeError> {
        let cells = self.cells(base)?;
        let mut seen = std::collections::HashSet::with_capacity(cells.len());
        let mut specs = Vec::with_capacity(cells.len());
        for cell in &cells {
            let spec = materialize(base, cell);
            if !seen.insert(spec.label()) {
                return Err(RecipeError::DuplicateCell {
                    label: spec.label(),
                });
            }
            specs.push(spec);
        }
        Ok(specs)
    }
}

fn materialize(base: &ScenarioSpec, cell: &Cell) -> ScenarioSpec {
    cell.values()
        .fold(base.clone(), |spec, setting| setting.apply(spec))
}

fn merge_disjoint(a: &Cell, b: &Cell) -> Result<Cell, RecipeError> {
    let mut out = a.clone();
    for (key, value) in b {
        if out.insert(*key, *value).is_some() {
            return Err(RecipeError::DuplicateAxis { key: *key });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec::default()
    }

    #[test]
    fn cross_enumerates_the_product_right_fastest() {
        let grid = Grid::axis(Axis::threads(&[1, 4])).cross(Grid::axis(Axis::k(&[17, 21])));
        let specs = grid.scenarios(&base()).unwrap();
        let pairs: Vec<(usize, usize)> = specs.iter().map(|s| (s.threads, s.k)).collect();
        assert_eq!(pairs, vec![(1, 17), (1, 21), (4, 17), (4, 21)]);
    }

    #[test]
    fn cross_rejects_overlapping_keys() {
        let grid = Grid::axis(Axis::k(&[17])).cross(Grid::axis(Axis::k(&[21])));
        assert!(matches!(
            grid.scenarios(&base()),
            Err(RecipeError::DuplicateAxis { key: AxisKey::K })
        ));
    }

    #[test]
    fn zip_pairs_positionally_and_rejects_mismatches() {
        let grid = Grid::axis(Axis::threads(&[1, 4])).zip(Grid::axis(Axis::k(&[17, 21])));
        let specs = grid.scenarios(&base()).unwrap();
        let pairs: Vec<(usize, usize)> = specs.iter().map(|s| (s.threads, s.k)).collect();
        assert_eq!(pairs, vec![(1, 17), (4, 21)]);

        let bad = Grid::axis(Axis::threads(&[1, 4])).zip(Grid::axis(Axis::k(&[17])));
        assert!(matches!(
            bad.scenarios(&base()),
            Err(RecipeError::ZipLengthMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn plug_fills_unbound_knobs_and_left_wins_on_overlap() {
        // New key: behaves like cross.
        let filled = Grid::axis(Axis::threads(&[1, 4]))
            .plug(Grid::axis(Axis::k(&[17])))
            .scenarios(&base())
            .unwrap();
        assert_eq!(filled.len(), 2);
        assert!(filled.iter().all(|s| s.k == 17));

        // Already-bound key: the left binding wins and duplicates collapse.
        let overridden = Grid::axis(Axis::k(&[17, 19]))
            .plug(Grid::axis(Axis::k(&[21, 23])))
            .scenarios(&base())
            .unwrap();
        let ks: Vec<usize> = overridden.iter().map(|s| s.k).collect();
        assert_eq!(ks, vec![17, 19]);
    }

    #[test]
    fn filter_keeps_only_satisfying_cells_in_order() {
        let grid = Grid::axis(Axis::shards(&[1, 4, 8, 16])).filter(Filter::shards_at_most(8));
        let specs = grid.scenarios(&base()).unwrap();
        let shards: Vec<usize> = specs.iter().map(|s| s.shards).collect();
        assert_eq!(shards, vec![1, 4, 8]);
    }

    #[test]
    fn empty_axis_enumerates_zero_cells() {
        let empty = Grid::axis(Axis::threads(&[]));
        assert!(empty.scenarios(&base()).unwrap().is_empty());
        let crossed = Grid::axis(Axis::k(&[17, 21])).cross(Grid::axis(Axis::threads(&[])));
        assert!(crossed.scenarios(&base()).unwrap().is_empty());
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let grid = Grid::axis(Axis::threads(&[4, 4]));
        assert!(matches!(
            grid.scenarios(&base()),
            Err(RecipeError::DuplicateCell { .. })
        ));
    }
}
