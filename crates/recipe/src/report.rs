//! The structured sweep result and its JSON rendering (`BENCH_sweep.json`).

use crate::exec::CellResult;
use crate::gate::GateOutcome;

/// The complete result of one sweep: every cell plus every gate verdict.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Recipe name.
    pub recipe: String,
    /// Recipe description.
    pub description: String,
    /// Executed cells, in enumeration order.
    pub cells: Vec<CellResult>,
    /// Gate verdicts, in recipe order.
    pub gates: Vec<GateOutcome>,
}

impl SweepReport {
    /// Whether every gate held. A sweep with no gates passes.
    pub fn passed(&self) -> bool {
        self.gates.iter().all(|g| g.passed)
    }

    /// Renders the report as a JSON document (the `BENCH_sweep.json` matrix).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"recipe\": {},\n", json_string(&self.recipe)));
        out.push_str(&format!(
            "  \"description\": {},\n",
            json_string(&self.description)
        ));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let spec = &cell.spec;
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json_string(&cell.label)));
            out.push_str("      \"spec\": {\n");
            out.push_str(&format!(
                "        \"genome_length\": {},\n",
                spec.genome_length
            ));
            out.push_str(&format!(
                "        \"coverage\": {},\n",
                json_number(spec.coverage)
            ));
            out.push_str(&format!(
                "        \"error_rate\": {},\n",
                json_number(spec.error_rate)
            ));
            out.push_str(&format!("        \"seed\": {},\n", spec.seed));
            out.push_str(&format!("        \"k\": {},\n", spec.k));
            out.push_str(&format!("        \"threads\": {},\n", spec.threads));
            out.push_str(&format!("        \"shards\": {},\n", spec.shards));
            out.push_str(&format!(
                "        \"schedule\": {},\n",
                json_string(&spec.schedule.label())
            ));
            out.push_str(&format!(
                "        \"spill_budget\": {},\n",
                match spec.spill_budget {
                    Some(bytes) => bytes.to_string(),
                    None => "null".to_string(),
                }
            ));
            out.push_str(&format!(
                "        \"backend\": {}\n",
                match spec.backend {
                    Some(id) => json_string(id.as_str()),
                    None => "null".to_string(),
                }
            ));
            out.push_str("      },\n");
            out.push_str("      \"metrics\": {\n");
            for (j, (name, value)) in cell.metrics.iter().enumerate() {
                let comma = if j + 1 < cell.metrics.len() { "," } else { "" };
                out.push_str(&format!(
                    "        {}: {}{comma}\n",
                    json_string(name),
                    json_number(*value)
                ));
            }
            out.push_str("      }\n");
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str("  \"gates\": [\n");
        for (i, gate) in self.gates.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"gate\": {},\n",
                json_string(&gate.description)
            ));
            out.push_str(&format!(
                "      \"metric\": {},\n",
                json_string(&gate.metric)
            ));
            out.push_str(&format!(
                "      \"threshold\": {},\n",
                json_number(gate.threshold)
            ));
            out.push_str(&format!(
                "      \"observed\": {},\n",
                match gate.observed {
                    Some(v) => json_number(v),
                    None => "null".to_string(),
                }
            ));
            out.push_str(&format!(
                "      \"cells_checked\": {},\n",
                gate.cells_checked
            ));
            out.push_str(&format!("      \"passed\": {},\n", gate.passed));
            out.push_str(&format!(
                "      \"detail\": {}\n",
                json_string(&gate.detail)
            ));
            let comma = if i + 1 < self.gates.len() { "," } else { "" };
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest round-trip Display never uses exponent syntax, so
        // the rendering is always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_numbers_stay_valid() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(0.0), "0");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn json_strings_escape_quotes() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn empty_report_renders_and_passes() {
        let report = SweepReport {
            recipe: "empty".to_string(),
            description: "no cells".to_string(),
            cells: Vec::new(),
            gates: Vec::new(),
        };
        assert!(report.passed());
        let json = report.to_json();
        assert!(json.contains("\"recipe\": \"empty\""));
        assert!(json.contains("\"passed\": true"));
    }
}
