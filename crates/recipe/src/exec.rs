//! The sweep executor: runs every cell of a recipe through the existing
//! pipeline machinery and collects per-cell metrics.
//!
//! Cells sharing a (workload, config, schedule) software run share its output
//! (the pipeline is deterministic: same inputs ⇒ bit-identical outputs), so a
//! backend sweep pays for one assembly plus one simulation per backend —
//! exactly like the hand-rolled Fig. 12 driver. In
//! [`ExecMode::Server`] the unique one-shot runs are submitted to an
//! [`AssemblyServer`] as concurrent jobs under one shared `MemoryBudget`
//! ledger; the server guarantees each job is bit-identical to a one-shot
//! `PakmanAssembler` run, so results do not depend on the mode.

use crate::error::RecipeError;
use crate::gate::GateOutcome;
use crate::report::SweepReport;
use crate::spec::{ScenarioSpec, ScheduleSpec, WorkloadKey};
use crate::Recipe;
use nmp_pak_core::backend::{BackendId, BackendRegistry, BackendResult, SystemConfig};
use nmp_pak_core::{NmpPakAssembler, Workload};
use nmp_pak_memsim::NodeLayout;
use nmp_pak_nmphw::NetworkModel;
use nmp_pak_pakman::{
    AssemblyOutput, AssemblyStats, BatchAssembler, BatchAssemblyOutput, PakmanAssembler,
    PakmanConfig,
};
use nmp_pak_server::{AssemblyServer, JobInput, JobSpec, ServerConfig};

/// Well-known metric names.
///
/// The executor computes the `wall_s`/telemetry/backend families for every
/// cell where they are defined; the `speedup.*`/overhead families come from
/// [`MetricProbe`] implementations (the bench crate's vendored-baseline probe)
/// and are only computed when a gate asks for them.
pub mod metric {
    /// Sum of phase wall times in seconds.
    pub const WALL_S: &str = "wall_s";
    /// Stage A (read access) seconds.
    pub const ACCESS_READS_S: &str = "access_reads_s";
    /// Stage B (k-mer counting) seconds.
    pub const KMER_COUNTING_S: &str = "kmer_counting_s";
    /// Stage C (MacroNode construction) seconds.
    pub const MACRONODE_CONSTRUCTION_S: &str = "macronode_construction_s";
    /// Stage D (Iterative Compaction) seconds.
    pub const COMPACTION_S: &str = "compaction_s";
    /// Stage E (contig walk) seconds.
    pub const WALK_S: &str = "walk_s";
    /// Number of contigs.
    pub const CONTIGS: &str = "contigs";
    /// Assembly N50.
    pub const N50: &str = "n50";
    /// Total assembled bases.
    pub const TOTAL_LENGTH: &str = "total_length";
    /// Largest contig length.
    pub const LARGEST_CONTIG: &str = "largest_contig";
    /// Compaction iterations (summed over batches).
    pub const COMPACTION_ITERATIONS: &str = "compaction_iterations";
    /// Peak resident footprint in bytes.
    pub const PEAK_FOOTPRINT_BYTES: &str = "peak_footprint_bytes";
    /// Max/mean per-shard initial load.
    pub const LOAD_IMBALANCE: &str = "load_imbalance";
    /// Total mailbox traffic in bytes.
    pub const MAILBOX_BYTES: &str = "mailbox_bytes";
    /// Mailbox bytes crossing shard boundaries.
    pub const CROSS_SHARD_BYTES: &str = "cross_shard_bytes";
    /// Fraction of mailbox bytes crossing shard boundaries.
    pub const CROSS_SHARD_FRACTION: &str = "cross_shard_fraction";
    /// Bytes evicted to disk by external-memory counting.
    pub const BYTES_SPILLED: &str = "bytes_spilled";
    /// Sorted runs written by external-memory counting.
    pub const RUNS_WRITTEN: &str = "runs_written";
    /// K-way merge passes over spilled runs.
    pub const MERGE_PASSES: &str = "merge_passes";
    /// Peak resident bytes inside the bounded counter.
    pub const PEAK_RESIDENT_BYTES: &str = "peak_resident_bytes";
    /// Backend runtime normalized to the CPU baseline on the same trace
    /// (the Fig. 12 quantity).
    pub const NORMALIZED_PERFORMANCE: &str = "normalized_performance";
    /// Simulated backend runtime in nanoseconds.
    pub const BACKEND_RUNTIME_NS: &str = "backend_runtime_ns";
    /// Simulated bandwidth utilization (0..=1).
    pub const BANDWIDTH_UTILIZATION: &str = "bandwidth_utilization";
    /// Modeled lock-step critical path over the async critical path, both
    /// rebuilt from one run's measured per-shard round times (≥ 1 by
    /// construction; only defined for sharded one-shot cells).
    pub const ASYNC_CRITICAL_PATH_SPEEDUP: &str = "async.critical_path_speedup";
    /// Projected speedup on a 2-node cluster under the default network model.
    pub const MULTINODE_2_SPEEDUP: &str = "multinode.nodes2_speedup";
    /// Projected speedup on a 4-node cluster under the default network model.
    pub const MULTINODE_4_SPEEDUP: &str = "multinode.nodes4_speedup";
    /// Projected speedup on an 8-node cluster under the default network model.
    pub const MULTINODE_8_SPEEDUP: &str = "multinode.nodes8_speedup";
    /// Fraction of mailbox bytes crossing node boundaries at 8 nodes.
    pub const MULTINODE_8_CROSS_FRACTION: &str = "multinode.nodes8_cross_fraction";

    /// Probe metric: current counting+construction vs the vendored baseline.
    pub const SPEEDUP_COUNTING_PLUS_CONSTRUCTION: &str = "speedup.counting_plus_construction";
    /// Probe metric: current compaction vs the vendored baseline compactor.
    pub const SPEEDUP_COMPACTION: &str = "speedup.compaction";
    /// Probe metric: single-shard engine runtime over the sharded engine
    /// forced to one shard (the sharding tax at shard_count = 1).
    pub const SHARDED_OVERHEAD_AT_ONE: &str = "sharded_overhead_at_one";
    /// Probe metric: bounded-budget counting runtime over in-memory counting.
    pub const SPILL_OVERHEAD: &str = "spill_overhead";
    /// Probe metric: sequential critical path over depth-1 (overlapped)
    /// critical path.
    pub const CRITICAL_PATH_SPEEDUP: &str = "critical_path_speedup";
    /// Probe metric: sequential critical path over the schedule's own depth.
    pub const PIPELINED_CRITICAL_PATH_SPEEDUP: &str = "pipelined_critical_path_speedup";
}

/// What a cell's software run produced.
#[derive(Debug, Clone)]
pub enum CellOutput {
    /// One-shot pipeline output.
    Single(Box<AssemblyOutput>),
    /// Batched pipeline output.
    Batched(Box<BatchAssemblyOutput>),
}

impl CellOutput {
    /// The assembled contigs.
    pub fn contigs(&self) -> &[nmp_pak_pakman::Contig] {
        match self {
            CellOutput::Single(o) => &o.contigs,
            CellOutput::Batched(o) => &o.contigs,
        }
    }

    /// The assembly quality statistics.
    pub fn stats(&self) -> &AssemblyStats {
        match self {
            CellOutput::Single(o) => &o.stats,
            CellOutput::Batched(o) => &o.stats,
        }
    }
}

/// One executed cell: its scenario, label, metrics, and full output (kept so
/// bit-identity tests can compare contigs directly).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The fully-bound scenario.
    pub spec: ScenarioSpec,
    /// The cell's deterministic label.
    pub label: String,
    /// Metric name → value, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// The software run's full output.
    pub output: CellOutput,
}

impl CellResult {
    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Extension point for metrics the core executor cannot compute — the bench
/// crate implements this over its vendored pre-refactor baselines. `wants`
/// lists the metric names the recipe's gates reference, so probes skip work
/// no gate will read.
pub trait MetricProbe {
    /// Computes extra metrics for one cell.
    fn cell_metrics(
        &self,
        wants: &[String],
        spec: &ScenarioSpec,
        workload: &Workload,
        output: &CellOutput,
    ) -> Vec<(String, f64)>;
}

/// How cells' software runs execute.
#[derive(Debug, Clone, Copy)]
pub enum ExecMode {
    /// Every run in-process, one after another.
    Local,
    /// Unique one-shot runs as concurrent [`AssemblyServer`] jobs under one
    /// shared memory ledger; batched-schedule cells still run locally (the
    /// server does not schedule batch plans).
    Server {
        /// Worker threads in the server's shared pool.
        workers: usize,
        /// Global memory-ledger cap; `None` is unbounded.
        memory_cap_bytes: Option<u64>,
    },
}

/// Runs recipes: enumerates cells, executes them, computes metrics, and
/// evaluates gates into a [`SweepReport`].
pub struct Executor {
    mode: ExecMode,
    probes: Vec<Box<dyn MetricProbe>>,
}

impl Executor {
    /// An executor running every cell in-process.
    pub fn local() -> Executor {
        Executor {
            mode: ExecMode::Local,
            probes: Vec::new(),
        }
    }

    /// An executor submitting unique one-shot runs to an [`AssemblyServer`].
    pub fn via_server(workers: usize, memory_cap_bytes: Option<u64>) -> Executor {
        Executor {
            mode: ExecMode::Server {
                workers,
                memory_cap_bytes,
            },
            probes: Vec::new(),
        }
    }

    /// Registers a metric probe.
    #[must_use]
    pub fn with_probe(mut self, probe: impl MetricProbe + 'static) -> Executor {
        self.probes.push(Box::new(probe));
        self
    }

    /// Runs a recipe to completion.
    ///
    /// # Errors
    ///
    /// Grid-composition errors, unsupported knob combinations (a backend on a
    /// batched schedule), and workload/pipeline failures. Gate violations are
    /// not errors — they are reported in the returned [`SweepReport`].
    pub fn run(&self, recipe: &Recipe) -> Result<SweepReport, RecipeError> {
        let specs = recipe.scenarios()?;
        for spec in &specs {
            if spec.backend.is_some() && spec.schedule.is_batched() {
                return Err(RecipeError::UnsupportedCell {
                    label: spec.label(),
                    reason: "backend simulation replays a one-shot compaction trace; \
                             use the single-batch schedule"
                        .to_string(),
                });
            }
        }

        let mut wants: Vec<String> = Vec::new();
        for gate in &recipe.gates {
            if !wants.contains(&gate.metric) {
                wants.push(gate.metric.clone());
            }
        }

        let mut workloads: Vec<((usize, u64, u64, u64), Workload)> = Vec::new();
        let mut runs: Vec<(RunKey, CellOutput)> = Vec::new();

        if let ExecMode::Server {
            workers,
            memory_cap_bytes,
        } = self.mode
        {
            self.prefill_via_server(&specs, workers, memory_cap_bytes, &mut workloads, &mut runs)?;
        }

        let system = SystemConfig::default();
        let registry = BackendRegistry::standard(&system);
        // The CPU-baseline result per software run, shared by every backend
        // cell normalizing against it.
        let mut baselines: Vec<(RunKey, BackendResult)> = Vec::new();

        let mut cells = Vec::with_capacity(specs.len());
        for spec in &specs {
            let workload_index = workload_index(&mut workloads, spec)?;
            let run_key = RunKey::of(spec);
            let run_index = match runs.iter().position(|(k, _)| *k == run_key) {
                Some(i) => i,
                None => {
                    let output = run_cell(&workloads[workload_index].1, spec)?;
                    runs.push((run_key, output));
                    runs.len() - 1
                }
            };
            let workload = &workloads[workload_index].1;
            let output = runs[run_index].1.clone();

            let mut metrics = standard_metrics(&output);
            if let Some(id) = spec.backend {
                let backend_metrics =
                    simulate_backend(&registry, &system, id, &run_key, &output, &mut baselines)?;
                metrics.extend(backend_metrics);
            }
            for probe in &self.probes {
                metrics.extend(probe.cell_metrics(&wants, spec, workload, &output));
            }

            cells.push(CellResult {
                spec: spec.clone(),
                label: spec.label(),
                metrics,
                output,
            });
        }

        let gates: Vec<GateOutcome> = recipe.gates.iter().map(|g| g.evaluate(&cells)).collect();
        Ok(SweepReport {
            recipe: recipe.name.clone(),
            description: recipe.description.clone(),
            cells,
            gates,
        })
    }

    /// Runs every unique one-shot (workload, config) pair as a concurrent
    /// server job and caches the outputs.
    fn prefill_via_server(
        &self,
        specs: &[ScenarioSpec],
        workers: usize,
        memory_cap_bytes: Option<u64>,
        workloads: &mut Vec<(WorkloadKey, Workload)>,
        runs: &mut Vec<(RunKey, CellOutput)>,
    ) -> Result<(), RecipeError> {
        let mut pending: Vec<RunKey> = Vec::new();
        for spec in specs {
            if spec.schedule.is_batched() {
                continue;
            }
            let key = RunKey::of(spec);
            if !pending.contains(&key) {
                pending.push(key);
            }
            workload_index(workloads, spec)?;
        }
        if pending.is_empty() {
            return Ok(());
        }

        let server = AssemblyServer::start(ServerConfig {
            workers,
            memory_cap_bytes,
        });
        let mut handles = Vec::with_capacity(pending.len());
        for key in &pending {
            let reads = workloads
                .iter()
                .find(|(k, _)| *k == key.workload)
                .map(|(_, w)| w.reads.clone())
                .expect("workload synthesized above");
            let handle = server.submit(JobSpec::new(JobInput::Reads(reads), key.config))?;
            handles.push(handle);
        }
        for (key, handle) in pending.into_iter().zip(handles) {
            let output = handle.join()?;
            runs.push((key, CellOutput::Single(Box::new(output))));
        }
        server.shutdown();
        Ok(())
    }
}

/// Identity of one software run: cells with equal keys share bit-identical
/// outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RunKey {
    workload: WorkloadKey,
    config: PakmanConfig,
    schedule: ScheduleSpec,
}

impl RunKey {
    fn of(spec: &ScenarioSpec) -> RunKey {
        RunKey {
            workload: spec.workload_key(),
            config: spec.pakman_config(),
            schedule: spec.schedule,
        }
    }
}

fn workload_index(
    workloads: &mut Vec<(WorkloadKey, Workload)>,
    spec: &ScenarioSpec,
) -> Result<usize, RecipeError> {
    let key = spec.workload_key();
    if let Some(i) = workloads.iter().position(|(k, _)| *k == key) {
        return Ok(i);
    }
    workloads.push((key, spec.synthesize_workload()?));
    Ok(workloads.len() - 1)
}

fn run_cell(workload: &Workload, spec: &ScenarioSpec) -> Result<CellOutput, RecipeError> {
    let config = spec.pakman_config();
    match spec.schedule.to_batch() {
        None => {
            let output = PakmanAssembler::new(config).assemble(&workload.reads)?;
            Ok(CellOutput::Single(Box::new(output)))
        }
        Some((fraction, schedule)) => {
            let output = BatchAssembler::with_schedule(config, fraction, schedule)
                .assemble(&workload.reads)?;
            Ok(CellOutput::Batched(Box::new(output)))
        }
    }
}

fn standard_metrics(output: &CellOutput) -> Vec<(String, f64)> {
    let mut m: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, value: f64| m.push((name.to_string(), value));

    let stats = output.stats();
    match output {
        CellOutput::Single(o) => {
            let t = &o.timings;
            push(metric::WALL_S, t.total().as_secs_f64());
            push(metric::ACCESS_READS_S, t.access_reads.as_secs_f64());
            push(metric::KMER_COUNTING_S, t.kmer_counting.as_secs_f64());
            push(
                metric::MACRONODE_CONSTRUCTION_S,
                t.macronode_construction.as_secs_f64(),
            );
            push(metric::COMPACTION_S, t.compaction.as_secs_f64());
            push(metric::WALK_S, t.walk.as_secs_f64());
            push(
                metric::COMPACTION_ITERATIONS,
                o.compaction.iterations.len() as f64,
            );
            push(
                metric::PEAK_FOOTPRINT_BYTES,
                o.footprint.peak_bytes() as f64,
            );
            if let Some(sharding) = &o.sharding {
                push(metric::LOAD_IMBALANCE, sharding.load_imbalance());
                push(metric::MAILBOX_BYTES, sharding.total_mailbox_bytes() as f64);
                push(
                    metric::CROSS_SHARD_BYTES,
                    sharding.total_cross_shard_bytes() as f64,
                );
                push(
                    metric::CROSS_SHARD_FRACTION,
                    sharding.cross_shard_fraction(),
                );
                let async_cp = sharding.async_critical_path_nanos();
                if async_cp > 0 {
                    push(
                        metric::ASYNC_CRITICAL_PATH_SPEEDUP,
                        sharding.lockstep_critical_path_nanos() as f64 / async_cp as f64,
                    );
                }
                // Project the measured one-host run onto small clusters: the
                // network model charges the cell's own flush ledger, scaled
                // over its measured compaction time.
                let base_ns = t.compaction.as_nanos() as f64;
                if sharding.shard_count > 1 && base_ns > 0.0 {
                    let network = NetworkModel::default();
                    for (nodes, name) in [
                        (2usize, metric::MULTINODE_2_SPEEDUP),
                        (4, metric::MULTINODE_4_SPEEDUP),
                        (8, metric::MULTINODE_8_SPEEDUP),
                    ] {
                        let projection = network.project_multinode(sharding, nodes, base_ns);
                        push(name, projection.speedup());
                        if nodes == 8 {
                            push(
                                metric::MULTINODE_8_CROSS_FRACTION,
                                projection.cross_node_fraction(),
                            );
                        }
                    }
                }
            }
            if let Some(spill) = &o.spill {
                push(metric::BYTES_SPILLED, spill.bytes_spilled as f64);
                push(metric::RUNS_WRITTEN, spill.runs_written as f64);
                push(metric::MERGE_PASSES, f64::from(spill.merge_passes));
                push(
                    metric::PEAK_RESIDENT_BYTES,
                    spill.peak_resident_bytes as f64,
                );
            }
        }
        CellOutput::Batched(o) => {
            let sum = |f: fn(&nmp_pak_pakman::PhaseTimings) -> std::time::Duration| -> f64 {
                o.batch_timings.iter().map(|t| f(t).as_secs_f64()).sum()
            };
            push(
                metric::WALL_S,
                o.batch_timings
                    .iter()
                    .map(|t| t.total().as_secs_f64())
                    .sum(),
            );
            push(metric::ACCESS_READS_S, sum(|t| t.access_reads));
            push(metric::KMER_COUNTING_S, sum(|t| t.kmer_counting));
            push(
                metric::MACRONODE_CONSTRUCTION_S,
                sum(|t| t.macronode_construction),
            );
            push(metric::COMPACTION_S, sum(|t| t.compaction));
            push(metric::WALK_S, sum(|t| t.walk));
            push(
                metric::COMPACTION_ITERATIONS,
                o.batch_compaction
                    .iter()
                    .map(|c| c.iterations.len())
                    .sum::<usize>() as f64,
            );
            push(
                metric::PEAK_FOOTPRINT_BYTES,
                o.peak_batch_footprint.peak_bytes() as f64,
            );
            if !o.batch_sharding.is_empty() {
                let mailbox: u64 = o
                    .batch_sharding
                    .iter()
                    .map(|s| s.total_mailbox_bytes())
                    .sum();
                let cross: u64 = o
                    .batch_sharding
                    .iter()
                    .map(|s| s.total_cross_shard_bytes())
                    .sum();
                push(metric::MAILBOX_BYTES, mailbox as f64);
                push(metric::CROSS_SHARD_BYTES, cross as f64);
                if mailbox > 0 {
                    push(metric::CROSS_SHARD_FRACTION, cross as f64 / mailbox as f64);
                }
            }
            if !o.batch_spill.is_empty() {
                push(
                    metric::BYTES_SPILLED,
                    o.batch_spill.iter().map(|s| s.bytes_spilled).sum::<u64>() as f64,
                );
                push(
                    metric::RUNS_WRITTEN,
                    o.batch_spill.iter().map(|s| s.runs_written).sum::<u64>() as f64,
                );
                push(
                    metric::MERGE_PASSES,
                    o.batch_spill
                        .iter()
                        .map(|s| u64::from(s.merge_passes))
                        .sum::<u64>() as f64,
                );
            }
        }
    }
    push(metric::CONTIGS, stats.contig_count as f64);
    push(metric::N50, stats.n50 as f64);
    push(metric::TOTAL_LENGTH, stats.total_length as f64);
    push(metric::LARGEST_CONTIG, stats.largest_contig as f64);
    m
}

fn simulate_backend(
    registry: &BackendRegistry,
    system: &SystemConfig,
    id: BackendId,
    run_key: &RunKey,
    output: &CellOutput,
    baselines: &mut Vec<(RunKey, BackendResult)>,
) -> Result<Vec<(String, f64)>, RecipeError> {
    let CellOutput::Single(assembly) = output else {
        unreachable!("backend cells are validated to be single-batch");
    };
    let backend = registry
        .get(id)
        .ok_or_else(|| RecipeError::UnknownBackend { id: id.to_string() })?;
    let trace = assembly
        .trace
        .as_ref()
        .expect("backend cells record the compaction trace");
    let layout = NodeLayout::new(&trace.initial_sizes, &system.dram);
    let ctx = NmpPakAssembler::context_for(assembly);
    let result = backend.simulate(trace, &layout, &ctx);

    let baseline = match baselines.iter().find(|(k, _)| k == run_key) {
        Some((_, b)) => b.clone(),
        None => {
            let cpu = registry
                .get(BackendId::CPU_BASELINE)
                .expect("standard registry always has the CPU baseline");
            let b = cpu.simulate(trace, &layout, &ctx);
            baselines.push((*run_key, b.clone()));
            b
        }
    };

    Ok(vec![
        (
            metric::NORMALIZED_PERFORMANCE.to_string(),
            result.speedup_over(&baseline),
        ),
        (metric::BACKEND_RUNTIME_NS.to_string(), result.runtime_ns),
        (
            metric::BANDWIDTH_UTILIZATION.to_string(),
            result.bandwidth_utilization(),
        ),
    ])
}
