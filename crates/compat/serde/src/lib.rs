//! Offline stand-in for the `serde` crate (see `crates/compat/README.md`).
//!
//! Exposes `Serialize` / `Deserialize` as both traits and derive macros, which is
//! the only surface the workspace uses. The derives are no-ops, so deriving a type
//! does **not** implement the traits — nothing in the workspace requires it to.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
