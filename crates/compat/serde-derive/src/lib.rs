//! No-op derive macros standing in for `serde_derive` (offline build environment).
//!
//! The derives accept the `#[serde(...)]` helper attribute and emit no code: the
//! workspace only needs `#[derive(Serialize, Deserialize)]` to compile, never an
//! actual trait implementation (see `crates/compat/README.md`).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
