//! Offline stand-in for the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements the surface this workspace uses — `StdRng`, [`SeedableRng`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`] — on top of
//! xoshiro256++ seeded through SplitMix64. Deterministic per seed; the stream is
//! **not** the same as crates.io `rand`'s ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits → a double in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly; implemented for half-open and inclusive
/// ranges of the unsigned integer types the workspace draws from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Multiply-shift reduction of a 64-bit draw onto [0, span). The bias is
    // ≤ span/2⁶⁴, negligible for the simulation spans used here.
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + sample_span(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + sample_span(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Pre-seeded generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(0..3u8);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
