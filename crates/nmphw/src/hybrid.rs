//! Hybrid CPU-NMP processing (§4.3).
//!
//! MacroNode sizes are highly skewed: 92.6 % of nodes fit in 256 B–1 KB and only a
//! tiny tail grows to tens of KB (Figs. 7–8). Sizing every PE buffer for the tail
//! would waste area, so the runtime offloads nodes larger than the threshold (1 KB)
//! to the host CPU, overlapping their processing with the NMP PEs and synchronizing
//! both sides at every iteration boundary.

use crate::config::NmpConfig;
use nmp_pak_pakman::trace::IterationTrace;
use serde::{Deserialize, Serialize};

/// The split of one iteration's MacroNodes between the NMP PEs and the host CPU.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridSchedule {
    /// Slots processed by the NMP PEs (size ≤ threshold).
    pub nmp_slots: Vec<usize>,
    /// Slots offloaded to the CPU (size > threshold).
    pub cpu_slots: Vec<usize>,
    /// Bytes of MacroNode data handled by the NMP side.
    pub nmp_bytes: u64,
    /// Bytes of MacroNode data handled by the CPU side.
    pub cpu_bytes: u64,
}

impl HybridSchedule {
    /// Fraction of MacroNodes offloaded to the CPU.
    pub fn cpu_node_fraction(&self) -> f64 {
        let total = self.nmp_slots.len() + self.cpu_slots.len();
        if total == 0 {
            return 0.0;
        }
        self.cpu_slots.len() as f64 / total as f64
    }
}

/// Splits each iteration's node set by the offload threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridScheduler {
    /// Nodes strictly larger than this many bytes go to the CPU.
    pub threshold_bytes: usize,
}

impl HybridScheduler {
    /// Creates a scheduler from the NMP configuration.
    pub fn from_config(config: &NmpConfig) -> Self {
        HybridScheduler {
            threshold_bytes: config.cpu_offload_threshold_bytes,
        }
    }

    /// Splits one iteration's checks into NMP and CPU work.
    pub fn split(&self, iteration: &IterationTrace) -> HybridSchedule {
        let mut schedule = HybridSchedule::default();
        for check in &iteration.checks {
            if check.size_bytes > self.threshold_bytes {
                schedule.cpu_slots.push(check.slot);
                schedule.cpu_bytes += check.size_bytes as u64;
            } else {
                schedule.nmp_slots.push(check.slot);
                schedule.nmp_bytes += check.size_bytes as u64;
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::trace::NodeCheck;

    fn iteration_with_sizes(sizes: &[usize]) -> IterationTrace {
        IterationTrace {
            checks: sizes
                .iter()
                .enumerate()
                .map(|(slot, &size_bytes)| NodeCheck {
                    slot,
                    size_bytes,
                    invalidated: false,
                })
                .collect(),
            transfers: vec![],
            updates: vec![],
        }
    }

    #[test]
    fn split_respects_the_threshold() {
        let scheduler = HybridScheduler {
            threshold_bytes: 1024,
        };
        let schedule = scheduler.split(&iteration_with_sizes(&[256, 800, 1024, 1500, 40_000]));
        assert_eq!(schedule.nmp_slots, vec![0, 1, 2]);
        assert_eq!(schedule.cpu_slots, vec![3, 4]);
        assert_eq!(schedule.nmp_bytes, 256 + 800 + 1024);
        assert_eq!(schedule.cpu_bytes, 1500 + 40_000);
        assert!((schedule.cpu_node_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn skewed_distributions_offload_few_nodes() {
        // 99% small nodes, 1% oversized: the CPU handles a tiny node fraction, as in
        // the paper's analysis (only nodes > 1 KB, ≤ 7.4 % of the population).
        let mut sizes = vec![400usize; 990];
        sizes.extend(vec![4_000usize; 10]);
        let scheduler = HybridScheduler {
            threshold_bytes: 1024,
        };
        let schedule = scheduler.split(&iteration_with_sizes(&sizes));
        assert!(schedule.cpu_node_fraction() < 0.02);
        assert_eq!(schedule.cpu_slots.len(), 10);
    }

    #[test]
    fn from_config_uses_the_configured_threshold() {
        let scheduler = HybridScheduler::from_config(&NmpConfig::default());
        assert_eq!(scheduler.threshold_bytes, 1024);
    }

    #[test]
    fn empty_iteration_is_safe() {
        let scheduler = HybridScheduler {
            threshold_bytes: 1024,
        };
        let schedule = scheduler.split(&iteration_with_sizes(&[]));
        assert_eq!(schedule.cpu_node_fraction(), 0.0);
        assert!(schedule.nmp_slots.is_empty());
    }
}
