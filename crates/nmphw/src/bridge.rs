//! The inter-DIMM network bridge (DIMM-Link-style, §4.1 / [58]).
//!
//! TransferNodes whose destination MacroNode lives in a different DIMM leave the
//! buffer chip through the bridge. The bridge supports point-to-point transfers and a
//! broadcast mechanism; its 25 GB/s links are shared by all cross-DIMM traffic of a
//! compaction iteration.

use serde::{Deserialize, Serialize};

/// Network-bridge model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkBridge {
    /// Per-link bandwidth in GB/s (25 GB/s in the paper).
    pub link_bandwidth_gbps: f64,
    /// Number of DIMMs connected.
    pub dimms: usize,
    /// Per-message latency in nanoseconds.
    pub message_latency_ns: f64,
}

impl NetworkBridge {
    /// Creates a bridge connecting `dimms` DIMMs at `link_bandwidth_gbps`.
    pub fn new(dimms: usize, link_bandwidth_gbps: f64) -> Self {
        NetworkBridge {
            link_bandwidth_gbps,
            dimms,
            message_latency_ns: 40.0,
        }
    }

    /// Time to move `per_dimm_outgoing_bytes[i]` bytes out of DIMM `i` this iteration,
    /// in nanoseconds. Links operate in parallel, so the slowest link bounds the time;
    /// one message latency is charged for the iteration's routing.
    pub fn iteration_ns(&self, per_dimm_outgoing_bytes: &[u64]) -> f64 {
        let max_link = per_dimm_outgoing_bytes.iter().copied().max().unwrap_or(0);
        if max_link == 0 {
            return 0.0;
        }
        self.message_latency_ns + max_link as f64 / self.link_bandwidth_gbps
    }

    /// Time to broadcast `bytes` from one DIMM to all others.
    pub fn broadcast_ns(&self, bytes: usize) -> f64 {
        self.message_latency_ns + bytes as f64 / self.link_bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bridge_costs_nothing() {
        let bridge = NetworkBridge::new(8, 25.0);
        assert_eq!(bridge.iteration_ns(&[0; 8]), 0.0);
        assert_eq!(bridge.iteration_ns(&[]), 0.0);
    }

    #[test]
    fn slowest_link_bounds_the_iteration() {
        let bridge = NetworkBridge::new(8, 25.0);
        let balanced = bridge.iteration_ns(&[1_000_000; 8]);
        let skewed = bridge.iteration_ns(&[8_000_000, 0, 0, 0, 0, 0, 0, 0]);
        assert!(skewed > balanced);
        // 1 MB at 25 GB/s = 40 µs (plus latency).
        assert!((balanced - (40.0 + 40_000.0)).abs() < 1.0);
    }

    #[test]
    fn broadcast_scales_with_payload() {
        let bridge = NetworkBridge::new(8, 25.0);
        assert!(bridge.broadcast_ns(1 << 20) > bridge.broadcast_ns(64));
    }
}
