//! Full-system NMP-PaK simulation.
//!
//! [`NmpSystem::simulate`] replays a compaction trace against the hardware model:
//! every iteration, the MacroNodes resident in each DIMM are streamed through that
//! DIMM's PE array (stage P1/P2), TransferNodes are routed through the crossbar or the
//! network bridge, destination nodes are updated in their home DIMM (stage P3), and
//! oversized nodes are processed by the host CPU in parallel (hybrid processing,
//! §4.3). The per-iteration time is the maximum over the parallel resources —
//! channel DRAM bandwidth, PE compute, bridge links and the CPU-offload slice — plus
//! the iteration-lock-step synchronization.

use crate::bridge::NetworkBridge;
use crate::config::NmpConfig;
use crate::crossbar::CrossbarSwitch;
use crate::hybrid::HybridScheduler;
use crate::mapping::{DimmMappingTable, ShardChannelMap};
use crate::pe::PeCycleModel;
use nmp_pak_memsim::{CpuConfig, DramConfig, MemoryStats, NodeLayout, ProcessFlow, TrafficSummary};
use nmp_pak_pakman::{CompactionTrace, ShardingTelemetry};
use serde::{Deserialize, Serialize};

/// Communication-locality statistics for TransferNode routing (§6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Transfers whose source and destination are handled by the same PE.
    pub same_pe: u64,
    /// Transfers between different PEs of the same DIMM (crossbar traffic).
    pub cross_pe_same_dimm: u64,
    /// Transfers between DIMMs (network-bridge traffic).
    pub cross_dimm: u64,
}

impl CommStats {
    /// Total transfers routed.
    pub fn total(&self) -> u64 {
        self.same_pe + self.cross_pe_same_dimm + self.cross_dimm
    }

    /// Fraction of transfers that stay within one DIMM.
    pub fn intra_dimm_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.same_pe + self.cross_pe_same_dimm) as f64 / total as f64
    }

    /// Fraction of transfers that cross DIMMs.
    pub fn inter_dimm_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.cross_dimm as f64 / total as f64
    }

    /// Among intra-DIMM transfers, the fraction that needs the crossbar (different PE).
    pub fn cross_pe_fraction_of_intra(&self) -> f64 {
        let intra = self.same_pe + self.cross_pe_same_dimm;
        if intra == 0 {
            return 0.0;
        }
        self.cross_pe_same_dimm as f64 / intra as f64
    }
}

/// Result of one NMP-PaK simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmpRunResult {
    /// Simulated Iterative Compaction runtime in nanoseconds.
    pub runtime_ns: f64,
    /// DRAM traffic under the (optionally ideal-forwarding) optimized flow.
    pub traffic: TrafficSummary,
    /// Memory statistics over the run (achieved bandwidth, utilization).
    pub memory: MemoryStats,
    /// TransferNode routing locality.
    pub comm: CommStats,
    /// Fraction of MacroNode visits offloaded to the CPU by the hybrid runtime.
    pub cpu_offload_fraction: f64,
    /// Fraction of iterations in which the CPU-offload slice, not the NMP side,
    /// bounded the iteration time (should be small: the offload overlaps).
    pub cpu_bound_iteration_fraction: f64,
}

impl NmpRunResult {
    /// Fraction of peak DRAM bandwidth achieved.
    pub fn bandwidth_utilization(&self) -> f64 {
        self.memory.bandwidth_utilization()
    }
}

/// Per-channel load and traffic derived from **measured** sharded-execution
/// telemetry, replacing the uniform-work assumption: each owner-computes shard
/// folds onto one channel ([`ShardChannelMap`]), per-channel work is the summed
/// P1 evaluations of the shards it hosts, and cross-channel bytes come from the
/// mailbox's shard→shard byte matrix — only bytes whose source and destination
/// shards land on *different channels* count as bridge traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelLoadStats {
    /// The shard → channel mapping used.
    pub map: ShardChannelMap,
    /// P1 predicate evaluations hosted per channel (measured work).
    pub work_per_channel: Vec<u64>,
    /// Final alive MacroNodes resident per channel.
    pub resident_per_channel: Vec<u64>,
    /// Mailbox bytes that crossed channels (network-bridge traffic).
    pub cross_channel_bytes: u64,
    /// Mailbox bytes that stayed within one channel (crossbar / local traffic,
    /// including shard-to-shard traffic folded onto the same channel).
    pub intra_channel_bytes: u64,
}

impl ChannelLoadStats {
    /// Max-over-mean load imbalance across *occupied* channels (1.0 = perfectly
    /// balanced). The per-iteration lock-step (§4.3) means the slowest channel
    /// paces every iteration, so this factor stretches the critical path.
    pub fn imbalance(&self) -> f64 {
        let occupied: Vec<u64> = self
            .work_per_channel
            .iter()
            .copied()
            .filter(|&w| w > 0)
            .collect();
        let total: u64 = occupied.iter().sum();
        if occupied.is_empty() || total == 0 {
            return 1.0;
        }
        let mean = total as f64 / occupied.len() as f64;
        let max = occupied.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Fraction of mailbox bytes that crossed channels.
    pub fn cross_channel_fraction(&self) -> f64 {
        let total = self.cross_channel_bytes + self.intra_channel_bytes;
        if total == 0 {
            return 0.0;
        }
        self.cross_channel_bytes as f64 / total as f64
    }
}

/// The NMP-PaK system simulator.
#[derive(Debug, Clone)]
pub struct NmpSystem {
    nmp: NmpConfig,
    dram: DramConfig,
    cpu: CpuConfig,
    /// Measured channel load folded in by [`NmpSystem::with_sharding`];
    /// when present, [`NmpSystem::simulate`] uses it by default.
    sharding: Option<ChannelLoadStats>,
}

impl NmpSystem {
    /// Creates a system with the given NMP, DRAM and host-CPU configurations.
    pub fn new(nmp: NmpConfig, dram: DramConfig, cpu: CpuConfig) -> Self {
        NmpSystem {
            nmp,
            dram,
            cpu,
            sharding: None,
        }
    }

    /// Folds measured sharded-execution telemetry into this system: every
    /// subsequent [`NmpSystem::simulate`] call redistributes work by the
    /// measured owner-computes channel load instead of the uniform
    /// slot-interleaved assumption. Pass telemetry from the run being
    /// simulated; callers no longer need to opt in via
    /// [`NmpSystem::simulate_with_channel_load`].
    pub fn with_sharding(mut self, telemetry: &ShardingTelemetry) -> Self {
        self.sharding = Some(self.channel_load_from_sharding(telemetry));
        self
    }

    /// The measured channel load this system folds into [`NmpSystem::simulate`],
    /// if any was attached via [`NmpSystem::with_sharding`].
    pub fn sharding_load(&self) -> Option<&ChannelLoadStats> {
        self.sharding.as_ref()
    }

    /// The NMP configuration.
    pub fn nmp_config(&self) -> &NmpConfig {
        &self.nmp
    }

    /// Folds measured sharded-execution telemetry onto this system's channels:
    /// per-channel work and residency from the per-shard ledgers, and the
    /// mailbox's shard→shard byte matrix split into intra- versus cross-channel
    /// traffic. This is the hardware-facing view of the owner-computes
    /// decomposition — load imbalance and cross-channel bytes are *measured*,
    /// not assumed uniform.
    pub fn channel_load_from_sharding(&self, telemetry: &ShardingTelemetry) -> ChannelLoadStats {
        let channels = self.dram.channels.max(1);
        let map = ShardChannelMap::new(telemetry.shard_count, channels);
        let mut work_per_channel = vec![0u64; channels];
        for (shard, &checked) in telemetry.checked_per_shard.iter().enumerate() {
            work_per_channel[map.channel_of(shard)] += checked;
        }
        let mut resident_per_channel = vec![0u64; channels];
        for (shard, &alive) in telemetry.final_alive_per_shard.iter().enumerate() {
            resident_per_channel[map.channel_of(shard)] += alive as u64;
        }
        let shards = telemetry.shard_count;
        let mut cross_channel_bytes = 0u64;
        let mut intra_channel_bytes = 0u64;
        for src in 0..shards {
            for dst in 0..shards {
                let bytes = telemetry.routed_bytes(src, dst);
                if map.channel_of(src) == map.channel_of(dst) {
                    intra_channel_bytes += bytes;
                } else {
                    cross_channel_bytes += bytes;
                }
            }
        }
        ChannelLoadStats {
            map,
            work_per_channel,
            resident_per_channel,
            cross_channel_bytes,
            intra_channel_bytes,
        }
    }

    /// Projects the simulated one-host run onto a `nodes`-node cluster: the
    /// trace is simulated with the measured channel load folded in, then the
    /// telemetry's mailbox traffic is mapped onto nodes and charged to
    /// `network` (see [`NetworkModel::project_multinode`]).
    pub fn project_multinode(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        telemetry: &ShardingTelemetry,
        network: &crate::network::NetworkModel,
        nodes: usize,
    ) -> crate::network::MultinodeProjection {
        let base = self
            .clone()
            .with_sharding(telemetry)
            .simulate(trace, layout);
        network.project_multinode(telemetry, nodes, base.runtime_ns)
    }

    /// Simulates the compaction trace, returning runtime and statistics. When
    /// measured sharding telemetry was attached ([`NmpSystem::with_sharding`]),
    /// the measured channel load is folded in automatically.
    pub fn simulate(&self, trace: &CompactionTrace, layout: &NodeLayout) -> NmpRunResult {
        self.simulate_with_channel_load(trace, layout, self.sharding.as_ref())
    }

    /// [`NmpSystem::simulate`] with **measured** per-channel load folded in.
    ///
    /// Without `load` this is the uniform-placement model: every byte and PE
    /// cycle is attributed to the channel the slot-interleaved [`NodeLayout`]
    /// assigns it to. With `load` (from
    /// [`NmpSystem::channel_load_from_sharding`]) the *aggregate* per-iteration
    /// work is redistributed by the measured owner-computes decomposition
    /// instead:
    ///
    /// * check/update bytes and PE cycles land on channels in proportion to
    ///   each channel's measured share of P1 work, so the measured imbalance —
    ///   not the interleaved layout — paces the lock-step iteration;
    /// * interconnect payload bytes split into bridge (cross-channel) versus
    ///   crossbar (intra-channel) traffic by the measured
    ///   [`ChannelLoadStats::cross_channel_fraction`].
    ///
    /// Totals are conserved: the same bytes and cycles are simulated either
    /// way, only their placement changes. DRAM [`TrafficSummary`] accounting
    /// and the [`CommStats`] routing *counts* stay layout-based — they
    /// describe the trace, not the placement.
    pub fn simulate_with_channel_load(
        &self,
        trace: &CompactionTrace,
        layout: &NodeLayout,
        load: Option<&ChannelLoadStats>,
    ) -> NmpRunResult {
        let channels = self.dram.channels.max(1);
        // Measured per-channel work shares, normalized over `channels` slots.
        // A telemetry channel count differing from ours (a different system
        // config than the one that produced the stats) folds modulo ours.
        let measured_shares: Option<Vec<f64>> = load.and_then(|stats| {
            let mut shares = vec![0.0f64; channels];
            for (ch, &work) in stats.work_per_channel.iter().enumerate() {
                shares[ch % channels] += work as f64;
            }
            let total: f64 = shares.iter().sum();
            if total > 0.0 {
                shares.iter_mut().for_each(|s| *s /= total);
                Some(shares)
            } else {
                None
            }
        });
        let measured_cross_fraction = load.map(ChannelLoadStats::cross_channel_fraction);
        let pe_model = PeCycleModel::from_config(&self.nmp);
        let scheduler = HybridScheduler::from_config(&self.nmp);
        let mapping = DimmMappingTable::new(layout.slot_count(), channels);
        let crossbar = CrossbarSwitch::new(self.nmp.pes_per_channel);
        let bridge = NetworkBridge::new(channels, self.nmp.bridge_bandwidth_gbps);
        let flow = if self.nmp.ideal_forwarding {
            ProcessFlow::IdealForwarding
        } else {
            ProcessFlow::Optimized
        };
        // Internal bandwidth available to the PEs of one buffer chip (one DIMM's
        // DDR4-3200 interface).
        let channel_bandwidth_gbps = self.dram.channel_peak_bandwidth_gbps();

        let mut runtime_ns = 0.0f64;
        let mut traffic = TrafficSummary::default();
        let mut comm = CommStats::default();
        let mut offloaded_nodes = 0u64;
        let mut total_nodes = 0u64;
        let mut cpu_bound_iterations = 0usize;

        for iteration in &trace.iterations {
            traffic.add_requests(&nmp_pak_memsim::build_iteration_requests(
                iteration, layout, flow,
            ));

            let schedule = scheduler.split(iteration);
            offloaded_nodes += schedule.cpu_slots.len() as u64;
            total_nodes += iteration.checks.len() as u64;

            // --- NMP side: per-channel byte and PE-compute accounting -------------
            let mut channel_bytes = vec![0u64; channels];
            let pes = self.nmp.pes_per_channel.max(1);
            let mut pe_cycles = vec![vec![0u64; pes]; channels];

            for check in &iteration.checks {
                if check.size_bytes > self.nmp.cpu_offload_threshold_bytes {
                    continue; // handled by the CPU slice
                }
                let dimm = layout.dimm_of(check.slot);
                let pe = layout.pe_of(check.slot, pes);
                channel_bytes[dimm] += check.size_bytes as u64;
                pe_cycles[dimm][pe] += pe_model
                    .node_cycles(check.size_bytes, check.invalidated)
                    .total();
            }

            // Destination updates: read-modify-write in the destination's DIMM, plus
            // P3 compute on the destination's PE.
            for update in &iteration.updates {
                let dimm = layout.dimm_of(update.dest_slot);
                let pe = layout.pe_of(update.dest_slot, pes);
                let bytes = if self.nmp.ideal_forwarding {
                    update.size_bytes as u64 // write-back only
                } else {
                    2 * update.size_bytes as u64 // read + write
                };
                channel_bytes[dimm] += bytes;
                pe_cycles[dimm][pe] += pe_model.p3_cycles(64, update.size_bytes);
            }

            // TransferNode routing locality and interconnect payloads.
            let mut crossbar_port_bytes = vec![0u64; pes];
            let mut bridge_out_bytes = vec![0u64; channels];
            for transfer in &iteration.transfers {
                let src_dimm = mapping.dimm_of(transfer.source_slot);
                let dst_dimm = mapping.dimm_of(transfer.dest_slot);
                let src_pe = layout.pe_of(transfer.source_slot, pes);
                let dst_pe = layout.pe_of(transfer.dest_slot, pes);
                if src_dimm == dst_dimm {
                    if src_pe == dst_pe {
                        comm.same_pe += 1;
                    } else {
                        comm.cross_pe_same_dimm += 1;
                        crossbar_port_bytes[dst_pe] += transfer.size_bytes as u64;
                    }
                } else {
                    comm.cross_dimm += 1;
                    bridge_out_bytes[src_dimm] += transfer.size_bytes as u64;
                }
            }

            // Measured placement: redistribute the iteration's aggregate work by
            // the owner-computes channel shares, and re-split interconnect
            // payload by the measured cross-channel byte fraction. Totals are
            // conserved; only where the work lands changes.
            if let Some(shares) = &measured_shares {
                let total_bytes: u64 = channel_bytes.iter().sum();
                let total_cycles: u64 = pe_cycles.iter().flatten().sum();
                for ch in 0..channels {
                    channel_bytes[ch] = (total_bytes as f64 * shares[ch]).round() as u64;
                    // The telemetry has no per-PE resolution: a channel's
                    // measured compute spreads evenly over its PE array, so the
                    // per-PE max the timing model takes is the even share.
                    let ch_cycles = (total_cycles as f64 * shares[ch]).round() as u64;
                    pe_cycles[ch].fill(ch_cycles.div_ceil(pes as u64));
                }
                let payload: u64 =
                    crossbar_port_bytes.iter().sum::<u64>() + bridge_out_bytes.iter().sum::<u64>();
                let fraction = measured_cross_fraction.unwrap_or(0.0);
                let cross = (payload as f64 * fraction).round() as u64;
                let intra = payload.saturating_sub(cross);
                for ch in 0..channels {
                    bridge_out_bytes[ch] = (cross as f64 * shares[ch]).round() as u64;
                }
                crossbar_port_bytes.fill(intra.div_ceil(pes as u64));
            }

            // Per-channel time: the DIMM interface streams the bytes while the PEs
            // compute; whichever is longer bounds the channel.
            let mut nmp_time_ns = 0.0f64;
            for ch in 0..channels {
                let stream_ns = channel_bytes[ch] as f64 / channel_bandwidth_gbps
                    + if channel_bytes[ch] > 0 {
                        self.nmp.near_memory_latency_ns
                    } else {
                        0.0
                    };
                let compute_ns = pe_cycles[ch]
                    .iter()
                    .map(|&c| pe_model.cycles_to_ns(c))
                    .fold(0.0f64, f64::max);
                nmp_time_ns = nmp_time_ns.max(stream_ns.max(compute_ns));
            }
            let interconnect_ns = crossbar
                .route_ns(&crossbar_port_bytes)
                .max(bridge.iteration_ns(&bridge_out_bytes));
            let nmp_time_ns = nmp_time_ns.max(interconnect_ns);

            // --- CPU-offload slice (overlapped with the NMP side) -----------------
            let cpu_time_ns = self.cpu_offload_time_ns(&schedule.cpu_slots, iteration);
            if cpu_time_ns > nmp_time_ns {
                cpu_bound_iterations += 1;
            }

            runtime_ns += nmp_time_ns.max(cpu_time_ns) + self.nmp.iteration_sync_ns;
        }

        let memory = MemoryStats {
            read_lines: traffic.read_bytes / self.dram.line_bytes as u64,
            write_lines: traffic.write_bytes / self.dram.line_bytes as u64,
            read_bytes: traffic.read_bytes,
            write_bytes: traffic.write_bytes,
            elapsed_ns: runtime_ns,
            peak_bandwidth_gbps: self.dram.total_peak_bandwidth_gbps(),
            ..MemoryStats::default()
        };

        NmpRunResult {
            runtime_ns,
            traffic,
            memory,
            comm,
            cpu_offload_fraction: if total_nodes == 0 {
                0.0
            } else {
                offloaded_nodes as f64 / total_nodes as f64
            },
            cpu_bound_iteration_fraction: if trace.iterations.is_empty() {
                0.0
            } else {
                cpu_bound_iterations as f64 / trace.iterations.len() as f64
            },
        }
    }

    /// Time for the host CPU to process the iteration's oversized MacroNodes.
    fn cpu_offload_time_ns(
        &self,
        cpu_slots: &[usize],
        iteration: &nmp_pak_pakman::trace::IterationTrace,
    ) -> f64 {
        if cpu_slots.is_empty() {
            return 0.0;
        }
        let slots: std::collections::HashSet<usize> = cpu_slots.iter().copied().collect();
        let threads = self.cpu.threads.max(1) as f64;
        let mut total_ns = 0.0f64;
        for check in iteration.checks.iter().filter(|c| slots.contains(&c.slot)) {
            let lines = (check.size_bytes as f64 / self.dram.line_bytes as f64).ceil();
            let mem = self.cpu.dependent_accesses_per_node * self.cpu.dram_latency_ns
                + lines * self.cpu.dram_latency_ns / self.cpu.streaming_mlp;
            let compute = check.size_bytes as f64 * self.cpu.compute_ns_per_byte;
            total_ns += mem + compute;
        }
        total_ns / threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::trace::{IterationTrace, NodeCheck, TransferEvent, UpdateEvent};

    /// A synthetic trace with a skewed size distribution and uniformly random
    /// destinations, like real compaction behaviour.
    fn synthetic_trace(nodes: usize, iterations: usize) -> (CompactionTrace, NodeLayout) {
        let sizes: Vec<usize> = (0..nodes)
            .map(|i| {
                if i % 97 == 0 {
                    6_000
                } else {
                    200 + (i % 9) * 90
                }
            })
            .collect();
        let mut trace = CompactionTrace::new(nodes, sizes.clone());
        for it in 0..iterations {
            let alive = nodes - it * (nodes / (iterations + 1));
            let checks: Vec<NodeCheck> = (0..alive)
                .map(|slot| NodeCheck {
                    slot,
                    size_bytes: sizes[slot],
                    invalidated: slot % 5 == 2,
                })
                .collect();
            let transfers: Vec<TransferEvent> = checks
                .iter()
                .filter(|c| c.invalidated)
                .flat_map(|c| {
                    let d1 = (c.slot.wrapping_mul(7919) + 3) % alive.max(1);
                    let d2 = (c.slot.wrapping_mul(104_729) + 11) % alive.max(1);
                    [
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: d1,
                            size_bytes: 48,
                        },
                        TransferEvent {
                            source_slot: c.slot,
                            dest_slot: d2,
                            size_bytes: 48,
                        },
                    ]
                })
                .collect();
            let updates: Vec<UpdateEvent> = transfers
                .iter()
                .map(|t| UpdateEvent {
                    dest_slot: t.dest_slot,
                    size_bytes: sizes[t.dest_slot] + 32,
                })
                .collect();
            trace.iterations.push(IterationTrace {
                checks,
                transfers,
                updates,
            });
        }
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        (trace, layout)
    }

    fn system(nmp: NmpConfig) -> NmpSystem {
        NmpSystem::new(nmp, DramConfig::default(), CpuConfig::default())
    }

    #[test]
    fn nmp_is_much_faster_than_the_cpu_model() {
        let (trace, layout) = synthetic_trace(4_000, 6);
        let nmp = system(NmpConfig::default()).simulate(&trace, &layout);
        let cpu = nmp_pak_memsim::cpu::simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Baseline,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        let speedup = cpu.runtime_ns / nmp.runtime_ns;
        assert!(speedup > 4.0, "speedup = {speedup}");
    }

    #[test]
    fn bandwidth_utilization_is_much_higher_than_cpu() {
        let (trace, layout) = synthetic_trace(4_000, 6);
        let nmp = system(NmpConfig::default()).simulate(&trace, &layout);
        let cpu = nmp_pak_memsim::cpu::simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Baseline,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        assert!(
            nmp.bandwidth_utilization() > 3.0 * cpu.bandwidth_utilization(),
            "nmp {} cpu {}",
            nmp.bandwidth_utilization(),
            cpu.bandwidth_utilization()
        );
    }

    #[test]
    fn inter_dimm_communication_dominates_with_random_destinations() {
        let (trace, layout) = synthetic_trace(4_000, 4);
        let result = system(NmpConfig::sixteen_pes()).simulate(&trace, &layout);
        // With 8 DIMMs and uniform destinations ~7/8 of transfers cross DIMMs (§6.3
        // reports 87.5 %).
        assert!(result.comm.inter_dimm_fraction() > 0.7);
        assert!(result.comm.intra_dimm_fraction() < 0.3);
        // Most intra-DIMM transfers still change PE (94 % in the 16-PE case).
        assert!(result.comm.cross_pe_fraction_of_intra() > 0.8);
    }

    #[test]
    fn more_pes_is_never_slower_and_saturates() {
        let (trace, layout) = synthetic_trace(4_000, 4);
        let mut last = f64::INFINITY;
        let mut runtimes = Vec::new();
        for pes in [1usize, 2, 4, 8, 16, 32, 64] {
            let cfg = NmpConfig {
                pes_per_channel: pes,
                ..NmpConfig::default()
            };
            let r = system(cfg).simulate(&trace, &layout);
            assert!(
                r.runtime_ns <= last * 1.001,
                "{pes} PEs slower than previous"
            );
            last = r.runtime_ns;
            runtimes.push(r.runtime_ns);
        }
        // Saturation: 64 PEs is within a few percent of 32 PEs.
        let r32 = runtimes[5];
        let r64 = runtimes[6];
        assert!((r32 - r64).abs() / r32 < 0.05);
    }

    #[test]
    fn ideal_pe_changes_little_ideal_forwarding_helps_some() {
        let (trace, layout) = synthetic_trace(4_000, 5);
        let base = system(NmpConfig::default()).simulate(&trace, &layout);
        let ideal_pe = system(NmpConfig::ideal_pe()).simulate(&trace, &layout);
        let ideal_fwd = system(NmpConfig::ideal_forwarding()).simulate(&trace, &layout);
        // Ideal PEs: at most a small improvement (PEs are not the bottleneck).
        assert!(ideal_pe.runtime_ns <= base.runtime_ns);
        assert!(
            (base.runtime_ns - ideal_pe.runtime_ns) / base.runtime_ns < 0.2,
            "ideal PE gained too much"
        );
        // Ideal forwarding removes destination reads → less traffic, somewhat faster.
        assert!(ideal_fwd.traffic.read_bytes < base.traffic.read_bytes);
        assert!(ideal_fwd.runtime_ns <= base.runtime_ns);
    }

    #[test]
    fn hybrid_offload_fraction_is_small_and_overlapped() {
        let (trace, layout) = synthetic_trace(4_000, 4);
        let result = system(NmpConfig::default()).simulate(&trace, &layout);
        assert!(
            result.cpu_offload_fraction < 0.05,
            "{}",
            result.cpu_offload_fraction
        );
        assert!(result.cpu_bound_iteration_fraction < 0.5);
    }

    #[test]
    fn channel_load_folds_measured_shard_telemetry() {
        use nmp_pak_pakman::{MailboxIterationStats, ShardingTelemetry};
        // 12 shards on the default 8 channels: shards 8..12 fold onto channels
        // 0..4. Shard 0 did twice everyone's work; shard 0 → shard 8 traffic is
        // *intra*-channel (both on channel 0), shard 0 → shard 1 is cross.
        let shards = 12usize;
        let mut route_bytes = vec![0u64; shards * shards];
        route_bytes[/* 0 -> 8 */ 8] = 1_000;
        route_bytes[/* 0 -> 1 */ 1] = 3_000;
        let telemetry = ShardingTelemetry {
            shard_count: shards,
            initial_alive_per_shard: vec![100; shards],
            final_alive_per_shard: vec![50; shards],
            checked_per_shard: {
                let mut work = vec![100u64; shards];
                work[0] = 200;
                work
            },
            mailbox: vec![MailboxIterationStats {
                iteration: 0,
                transfers: 2,
                cross_shard_transfers: 2,
                bytes: 4_000,
                cross_shard_bytes: 4_000,
            }],
            route_bytes,
            flushes: Vec::new(),
            round_nanos: Vec::new(),
        };
        let stats = system(NmpConfig::default()).channel_load_from_sharding(&telemetry);
        assert_eq!(stats.map.channel_count(), 8);
        // Channel 0 hosts shards 0 and 8: 200 + 100 work units.
        assert_eq!(stats.work_per_channel[0], 300);
        assert_eq!(stats.work_per_channel[5], 100);
        assert_eq!(stats.resident_per_channel[0], 100);
        assert_eq!(stats.resident_per_channel[7], 50);
        // Shard-crossing bytes that stay on one channel are not bridge traffic.
        assert_eq!(stats.intra_channel_bytes, 1_000);
        assert_eq!(stats.cross_channel_bytes, 3_000);
        assert!((stats.cross_channel_fraction() - 0.75).abs() < 1e-12);
        assert!(stats.imbalance() > 1.0);

        // Uniform work is reported as balanced.
        let uniform = ShardingTelemetry {
            checked_per_shard: vec![100; shards],
            ..telemetry
        };
        let stats = system(NmpConfig::default()).channel_load_from_sharding(&uniform);
        assert!(
            (stats.imbalance() - 4.0 / 3.0).abs() < 1e-12,
            "12 uniform shards on 8 channels: 4 channels host 2 shards → max 200 vs mean 150"
        );
    }

    /// Telemetry where one shard did `skew`× the others' work and all mailbox
    /// bytes crossed shards that land on different channels.
    fn skewed_telemetry(shards: usize, skew: u64) -> nmp_pak_pakman::ShardingTelemetry {
        use nmp_pak_pakman::{MailboxIterationStats, ShardingTelemetry};
        let mut checked = vec![1_000u64; shards];
        checked[0] *= skew;
        let mut route_bytes = vec![0u64; shards * shards];
        route_bytes[1] = 10_000; // shard 0 → shard 1: cross-channel
        ShardingTelemetry {
            shard_count: shards,
            initial_alive_per_shard: vec![100; shards],
            final_alive_per_shard: vec![50; shards],
            checked_per_shard: checked,
            mailbox: vec![MailboxIterationStats {
                iteration: 0,
                transfers: 10,
                cross_shard_transfers: 10,
                bytes: 10_000,
                cross_shard_bytes: 10_000,
            }],
            route_bytes,
            flushes: Vec::new(),
            round_nanos: Vec::new(),
        }
    }

    #[test]
    fn measured_skew_slows_the_lock_step_and_balance_matches_uniform() {
        let (trace, layout) = synthetic_trace(4_000, 5);
        let sys = system(NmpConfig::default());
        let uniform = sys.simulate(&trace, &layout);

        // Strongly skewed measured load: one channel hosts ~8× its fair share,
        // so the lock-step iterations stretch.
        let skew_load = sys.channel_load_from_sharding(&skewed_telemetry(8, 64));
        assert!(skew_load.imbalance() > 4.0);
        let skewed = sys.simulate_with_channel_load(&trace, &layout, Some(&skew_load));
        assert!(
            skewed.runtime_ns > uniform.runtime_ns,
            "skewed {} vs uniform {}",
            skewed.runtime_ns,
            uniform.runtime_ns
        );

        // Balanced measured load: never slower than the layout model — the
        // even measured spread removes the layout's natural per-PE hotspots
        // (e.g. the oversized every-97th-slot nodes) — and much faster than
        // the skewed placement.
        let flat_load = sys.channel_load_from_sharding(&skewed_telemetry(8, 1));
        assert!((flat_load.imbalance() - 1.0).abs() < 1e-12);
        let flat = sys.simulate_with_channel_load(&trace, &layout, Some(&flat_load));
        assert!(flat.runtime_ns <= uniform.runtime_ns * 1.001);
        assert!(flat.runtime_ns < skewed.runtime_ns);

        // Placement changes timing only: DRAM traffic and routing counts are
        // properties of the trace, identical across placements.
        assert_eq!(skewed.traffic, uniform.traffic);
        assert_eq!(skewed.comm, uniform.comm);
    }

    #[test]
    fn with_sharding_folds_measured_load_into_default_simulate() {
        let (trace, layout) = synthetic_trace(4_000, 5);
        let sys = system(NmpConfig::default());
        let uniform = sys.simulate(&trace, &layout);
        // Attaching skewed telemetry changes the *default* simulate path…
        let folded = sys.clone().with_sharding(&skewed_telemetry(8, 64));
        let skewed = folded.simulate(&trace, &layout);
        assert!(
            skewed.runtime_ns > uniform.runtime_ns,
            "attached telemetry should stretch the lock-step"
        );
        // …and matches the explicit opt-in exactly.
        let explicit = sys.simulate_with_channel_load(&trace, &layout, folded.sharding_load());
        assert_eq!(skewed.runtime_ns, explicit.runtime_ns);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = CompactionTrace::new(0, vec![]);
        let layout = NodeLayout::new(&[], &DramConfig::default());
        let result = system(NmpConfig::default()).simulate(&trace, &layout);
        assert_eq!(result.runtime_ns, 0.0);
        assert_eq!(result.comm.total(), 0);
    }
}
