//! Cycle model of the pipelined systolic processing element (Fig. 10).
//!
//! Each PE runs a 3-stage pipeline at MacroNode granularity. The per-stage work
//! consists of simple integer operations — shifts, bitwise OR/AND, additions and
//! comparisons — dominated by the "append a base sequence" primitive, which touches
//! every byte of the extensions involved. The cycle model therefore charges a fixed
//! overhead per stage plus a per-byte cost for the node data each stage actually
//! reads, matching the paper's "execution time based on the RTL design and the
//! instruction count statistics for each stage" methodology (§5.2).

use crate::config::{NmpConfig, PeVariant};
use serde::{Deserialize, Serialize};

/// Cycle counts of one MacroNode's trip through the PE pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCycles {
    /// Stage P1: invalidation check (neighbour (k-1)-mer computation + comparisons).
    pub p1: u64,
    /// Stage P2: TransferNode extraction (appending prefix/suffix extensions).
    pub p2: u64,
    /// Stage P3: routing and destination update (destination lookup + splice + write).
    pub p3: u64,
}

impl StageCycles {
    /// Total cycles across the three stages.
    pub fn total(&self) -> u64 {
        self.p1 + self.p2 + self.p3
    }
}

/// The PE cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeCycleModel {
    /// Fixed cycles per stage (pipeline control, field decoding).
    pub fixed_cycles_per_stage: u64,
    /// Cycles per 8 bytes of node/extension data processed (shift+OR append datapath).
    pub cycles_per_word: u64,
    /// Which variant is modelled.
    pub variant: PeVariant,
    /// PE clock frequency in GHz.
    pub freq_ghz: f64,
}

impl PeCycleModel {
    /// Builds the cycle model from an [`NmpConfig`].
    pub fn from_config(config: &NmpConfig) -> Self {
        PeCycleModel {
            fixed_cycles_per_stage: 12,
            cycles_per_word: 1,
            variant: config.pe_variant,
            freq_ghz: config.pe_freq_ghz,
        }
    }

    /// Cycles spent in stage P1 for a node of `node_bytes`.
    pub fn p1_cycles(&self, node_bytes: usize) -> u64 {
        match self.variant {
            PeVariant::Ideal => 1,
            PeVariant::Pipelined => {
                self.fixed_cycles_per_stage + self.cycles_per_word * (node_bytes as u64).div_ceil(8)
            }
        }
    }

    /// Cycles spent in stage P2 for an invalidated node of `node_bytes`.
    pub fn p2_cycles(&self, node_bytes: usize) -> u64 {
        match self.variant {
            PeVariant::Ideal => 1,
            PeVariant::Pipelined => {
                self.fixed_cycles_per_stage
                    + self.cycles_per_word * (node_bytes as u64).div_ceil(8) / 2
            }
        }
    }

    /// Cycles spent in stage P3 to apply one TransferNode of `transfer_bytes` to a
    /// destination node of `dest_bytes`.
    pub fn p3_cycles(&self, transfer_bytes: usize, dest_bytes: usize) -> u64 {
        match self.variant {
            PeVariant::Ideal => 1,
            PeVariant::Pipelined => {
                self.fixed_cycles_per_stage
                    + self.cycles_per_word * ((transfer_bytes + dest_bytes / 4) as u64).div_ceil(8)
            }
        }
    }

    /// All three stages for one node (P2/P3 only when the node is invalidated /
    /// receives a transfer).
    pub fn node_cycles(&self, node_bytes: usize, invalidated: bool) -> StageCycles {
        StageCycles {
            p1: self.p1_cycles(node_bytes),
            p2: if invalidated {
                self.p2_cycles(node_bytes)
            } else {
                0
            },
            p3: 0,
        }
    }

    /// Converts cycles to nanoseconds at the PE clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PeCycleModel {
        PeCycleModel::from_config(&NmpConfig::default())
    }

    #[test]
    fn cycles_scale_with_node_size() {
        let m = model();
        assert!(m.p1_cycles(4096) > m.p1_cycles(256));
        assert!(m.p2_cycles(4096) > m.p2_cycles(256));
        assert!(m.p3_cycles(256, 4096) > m.p3_cycles(64, 256));
    }

    #[test]
    fn ideal_pe_is_single_cycle() {
        let m = PeCycleModel::from_config(&NmpConfig::ideal_pe());
        assert_eq!(m.p1_cycles(32_768), 1);
        assert_eq!(m.p2_cycles(32_768), 1);
        assert_eq!(m.p3_cycles(1024, 32_768), 1);
    }

    #[test]
    fn node_cycles_skip_p2_when_not_invalidated() {
        let m = model();
        let kept = m.node_cycles(512, false);
        let invalidated = m.node_cycles(512, true);
        assert_eq!(kept.p2, 0);
        assert!(invalidated.p2 > 0);
        assert!(invalidated.total() > kept.total());
    }

    #[test]
    fn cycles_to_ns_uses_the_pe_clock() {
        let m = model();
        // 1.6 GHz → 0.625 ns per cycle.
        assert!((m.cycles_to_ns(16) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn a_row_buffer_sized_node_fits_the_pipeline_budget() {
        // A 1 KB node (the offload threshold) should take well under a microsecond of
        // PE compute, keeping PEs from becoming the bottleneck (the paper's ideal-PE
        // study shows no gain from faster PEs).
        let m = model();
        let cycles = m.node_cycles(1024, true).total();
        assert!(m.cycles_to_ns(cycles) < 1_000.0);
    }
}
