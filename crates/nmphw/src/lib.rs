//! The NMP-PaK hardware model.
//!
//! This crate models the paper's channel-level near-memory processing architecture
//! (§4.1–4.3, Figs. 9–11):
//!
//! * [`pe`] — the 3-stage pipelined systolic processing element (P1 invalidation
//!   check, P2 TransferNode extraction, P3 routing & update) with a cycle model derived
//!   from the operation counts of each stage,
//! * [`crossbar`] — the (N+1)×(N+1) inter-PE crossbar switch inside each buffer chip,
//! * [`bridge`] — the inter-DIMM network bridge (point-to-point + broadcast),
//! * [`mapping`] — the static MacroNode-range → DIMM mapping table,
//! * [`hybrid`] — the hybrid CPU-NMP runtime that offloads oversized MacroNodes to the
//!   host CPU and keeps both sides in per-iteration lock-step,
//! * [`system`] — the full-system simulator that replays a
//!   [`nmp_pak_pakman::CompactionTrace`] against the PE arrays, the DRAM channels and
//!   the interconnect, producing runtime, traffic, bandwidth-utilization and
//!   communication-locality statistics,
//! * [`area_power`] — the 28 nm component area/power model behind Table 3.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area_power;
pub mod bridge;
pub mod config;
pub mod crossbar;
pub mod hybrid;
pub mod mapping;
pub mod network;
pub mod pe;
pub mod system;

pub use area_power::{AreaPowerModel, ComponentBudget};
pub use bridge::NetworkBridge;
pub use config::{NmpConfig, PeVariant};
pub use crossbar::CrossbarSwitch;
pub use hybrid::{HybridSchedule, HybridScheduler};
pub use mapping::{DimmMappingTable, ShardChannelMap};
pub use network::{MultinodeProjection, NetworkModel, Topology};
pub use pe::{PeCycleModel, StageCycles};
pub use system::{ChannelLoadStats, CommStats, NmpRunResult, NmpSystem};
