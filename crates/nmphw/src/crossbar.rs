//! The inter-PE crossbar switch inside each buffer chip (§4.1).
//!
//! The crossbar has one input/output port per PE plus one port for the network
//! bridge — a 17×17 configuration for 16 PEs. TransferNodes whose destination lives
//! in the same DIMM but a different PE traverse it; the model charges a fixed
//! per-hop latency plus output-port serialization.

use serde::{Deserialize, Serialize};

/// Crossbar model: per-transfer latency and per-port bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarSwitch {
    /// Number of PE ports (the bridge adds one more).
    pub pe_ports: usize,
    /// Fixed traversal latency per transfer in nanoseconds.
    pub hop_latency_ns: f64,
    /// Per-output-port bandwidth in GB/s.
    pub port_bandwidth_gbps: f64,
}

impl CrossbarSwitch {
    /// Creates a crossbar for `pe_ports` PEs.
    pub fn new(pe_ports: usize) -> Self {
        CrossbarSwitch {
            pe_ports,
            hop_latency_ns: 2.0,
            port_bandwidth_gbps: 25.6,
        }
    }

    /// Total ports including the network-bridge port (17 for 16 PEs).
    pub fn total_ports(&self) -> usize {
        self.pe_ports + 1
    }

    /// Time for one transfer of `bytes` to traverse the crossbar, in nanoseconds.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        self.hop_latency_ns + bytes as f64 / self.port_bandwidth_gbps
    }

    /// Time to deliver a set of transfers, accounting for serialization at the most
    /// contended output port. `per_port_bytes[i]` is the total payload destined to
    /// output port `i`.
    pub fn route_ns(&self, per_port_bytes: &[u64]) -> f64 {
        let max_port = per_port_bytes.iter().copied().max().unwrap_or(0);
        self.hop_latency_ns + max_port as f64 / self.port_bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_pes_make_a_17x17_crossbar() {
        let xbar = CrossbarSwitch::new(16);
        assert_eq!(xbar.total_ports(), 17);
    }

    #[test]
    fn transfer_time_scales_with_payload() {
        let xbar = CrossbarSwitch::new(16);
        assert!(xbar.transfer_ns(1024) > xbar.transfer_ns(64));
        assert!(xbar.transfer_ns(0) >= xbar.hop_latency_ns);
    }

    #[test]
    fn routing_time_is_set_by_the_hottest_port() {
        let xbar = CrossbarSwitch::new(4);
        let balanced = xbar.route_ns(&[256, 256, 256, 256]);
        let skewed = xbar.route_ns(&[1024, 0, 0, 0]);
        assert!(skewed > balanced);
        assert_eq!(xbar.route_ns(&[]), xbar.hop_latency_ns);
    }
}
