//! The static MacroNode-range → DIMM mapping table (§4.2, Fig. 11).
//!
//! MacroNodes are stored in ascending (k-1)-mer order across DIMMs, so the DIMM of a
//! destination MacroNode can be found by comparing its slot against one boundary per
//! DIMM — a tiny lookup table held in every PE's stage P3, eliminating any search.

use serde::{Deserialize, Serialize};

/// Mapping table from MacroNode slot ranges to DIMMs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimmMappingTable {
    /// `boundaries[d]` is the first slot index *not* stored in DIMM `d`
    /// (exclusive upper bound); boundaries are non-decreasing.
    boundaries: Vec<usize>,
}

impl DimmMappingTable {
    /// Builds the table for `slot_count` MacroNodes spread over `dimms` DIMMs with an
    /// equal number of consecutive slots per DIMM (the layout of
    /// [`nmp_pak_memsim::NodeLayout`]).
    pub fn new(slot_count: usize, dimms: usize) -> Self {
        let dimms = dimms.max(1);
        let per_dimm = slot_count.div_ceil(dimms).max(1);
        let boundaries = (0..dimms)
            .map(|d| ((d + 1) * per_dimm).min(slot_count))
            .collect();
        DimmMappingTable { boundaries }
    }

    /// Number of DIMMs in the table.
    pub fn dimm_count(&self) -> usize {
        self.boundaries.len()
    }

    /// The DIMM holding `slot`.
    pub fn dimm_of(&self, slot: usize) -> usize {
        match self.boundaries.iter().position(|&b| slot < b) {
            Some(d) => d,
            None => self.boundaries.len() - 1,
        }
    }

    /// The exclusive upper slot bound of each DIMM (the table contents of Fig. 11).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_partition_evenly() {
        let table = DimmMappingTable::new(80, 8);
        assert_eq!(table.dimm_count(), 8);
        for slot in 0..80 {
            assert_eq!(table.dimm_of(slot), slot / 10);
        }
    }

    #[test]
    fn agrees_with_the_memsim_layout() {
        use nmp_pak_memsim::{DramConfig, NodeLayout};
        let sizes = vec![300usize; 123];
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        let table = DimmMappingTable::new(sizes.len(), layout.dimm_count());
        for slot in 0..sizes.len() {
            assert_eq!(table.dimm_of(slot), layout.dimm_of(slot), "slot {slot}");
        }
    }

    #[test]
    fn out_of_range_slots_land_in_the_last_dimm() {
        let table = DimmMappingTable::new(16, 4);
        assert_eq!(table.dimm_of(999), 3);
    }

    #[test]
    fn single_dimm_table() {
        let table = DimmMappingTable::new(10, 1);
        assert_eq!(table.dimm_count(), 1);
        assert_eq!(table.dimm_of(5), 0);
    }

    #[test]
    fn empty_table_is_safe() {
        let table = DimmMappingTable::new(0, 8);
        assert_eq!(table.dimm_count(), 8);
        assert_eq!(table.dimm_of(0), 7);
    }
}
