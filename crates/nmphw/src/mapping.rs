//! The static MacroNode-range → DIMM mapping table (§4.2, Fig. 11).
//!
//! MacroNodes are stored in ascending (k-1)-mer order across DIMMs, so the DIMM of a
//! destination MacroNode can be found by comparing its slot against one boundary per
//! DIMM — a tiny lookup table held in every PE's stage P3, eliminating any search.

use serde::{Deserialize, Serialize};

/// Mapping table from MacroNode slot ranges to DIMMs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimmMappingTable {
    /// `boundaries[d]` is the first slot index *not* stored in DIMM `d`
    /// (exclusive upper bound); boundaries are non-decreasing.
    boundaries: Vec<usize>,
}

impl DimmMappingTable {
    /// Builds the table for `slot_count` MacroNodes spread over `dimms` DIMMs with an
    /// equal number of consecutive slots per DIMM (the layout of
    /// [`nmp_pak_memsim::NodeLayout`]).
    pub fn new(slot_count: usize, dimms: usize) -> Self {
        let dimms = dimms.max(1);
        let per_dimm = slot_count.div_ceil(dimms).max(1);
        let boundaries = (0..dimms)
            .map(|d| ((d + 1) * per_dimm).min(slot_count))
            .collect();
        DimmMappingTable { boundaries }
    }

    /// Number of DIMMs in the table.
    pub fn dimm_count(&self) -> usize {
        self.boundaries.len()
    }

    /// The DIMM holding `slot`.
    pub fn dimm_of(&self, slot: usize) -> usize {
        match self.boundaries.iter().position(|&b| slot < b) {
            Some(d) => d,
            None => self.boundaries.len() - 1,
        }
    }

    /// The exclusive upper slot bound of each DIMM (the table contents of Fig. 11).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }
}

/// The static shard → channel mapping of sharded subgraph execution.
///
/// The software pipeline partitions the PaK-graph into owner-computes shards;
/// the hardware maps each shard onto one NMP channel's local memory. When there
/// are more shards than channels, shards fold round-robin onto channels (the
/// same discipline as rank-over-node placement in distributed PaKman); fewer
/// shards than channels leave the surplus channels idle, which the load model
/// reports rather than hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardChannelMap {
    shards: usize,
    channels: usize,
}

impl ShardChannelMap {
    /// A mapping of `shards` shards onto `channels` channels (both clamped to ≥ 1).
    pub fn new(shards: usize, channels: usize) -> Self {
        ShardChannelMap {
            shards: shards.max(1),
            channels: channels.max(1),
        }
    }

    /// Number of shards mapped.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of channels mapped onto.
    pub fn channel_count(&self) -> usize {
        self.channels
    }

    /// The channel hosting `shard`.
    pub fn channel_of(&self, shard: usize) -> usize {
        debug_assert!(shard < self.shards);
        shard % self.channels
    }

    /// Channels that host at least one shard.
    pub fn occupied_channels(&self) -> usize {
        self.shards.min(self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_channel_map_folds_round_robin() {
        let map = ShardChannelMap::new(12, 8);
        assert_eq!(map.channel_of(0), 0);
        assert_eq!(map.channel_of(7), 7);
        assert_eq!(map.channel_of(8), 0);
        assert_eq!(map.channel_of(11), 3);
        assert_eq!(map.occupied_channels(), 8);

        let sparse = ShardChannelMap::new(3, 8);
        assert_eq!(sparse.occupied_channels(), 3);
        assert_eq!(ShardChannelMap::new(0, 0).channel_count(), 1);
    }

    #[test]
    fn slots_partition_evenly() {
        let table = DimmMappingTable::new(80, 8);
        assert_eq!(table.dimm_count(), 8);
        for slot in 0..80 {
            assert_eq!(table.dimm_of(slot), slot / 10);
        }
    }

    #[test]
    fn agrees_with_the_memsim_layout() {
        use nmp_pak_memsim::{DramConfig, NodeLayout};
        let sizes = vec![300usize; 123];
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        let table = DimmMappingTable::new(sizes.len(), layout.dimm_count());
        for slot in 0..sizes.len() {
            assert_eq!(table.dimm_of(slot), layout.dimm_of(slot), "slot {slot}");
        }
    }

    #[test]
    fn out_of_range_slots_land_in_the_last_dimm() {
        let table = DimmMappingTable::new(16, 4);
        assert_eq!(table.dimm_of(999), 3);
    }

    #[test]
    fn single_dimm_table() {
        let table = DimmMappingTable::new(10, 1);
        assert_eq!(table.dimm_count(), 1);
        assert_eq!(table.dimm_of(5), 0);
    }

    #[test]
    fn empty_table_is_safe() {
        let table = DimmMappingTable::new(0, 8);
        assert_eq!(table.dimm_count(), 8);
        assert_eq!(table.dimm_of(0), 7);
    }
}
