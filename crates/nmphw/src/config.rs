//! NMP hardware configuration (Table 2's "NMP Implementation" block).

use serde::{Deserialize, Serialize};

/// Which processing-element timing variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeVariant {
    /// The proposed pipelined systolic PE with its RTL-derived cycle counts.
    Pipelined,
    /// An infinitely fast PE: every stage completes in a single cycle (§5.3,
    /// "NMP-PaK with ideal PE"). Runtime is then limited purely by memory.
    Ideal,
}

/// Configuration of the NMP system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NmpConfig {
    /// Processing elements per channel (the paper evaluates 1–64 and picks 16–32).
    pub pes_per_channel: usize,
    /// PE clock frequency in GHz (1.6 GHz in Table 2).
    pub pe_freq_ghz: f64,
    /// MacroNode buffer size per PE in bytes (4 KB in Table 2).
    pub macronode_buffer_bytes: usize,
    /// TransferNode scratchpad size per PE in bytes (1 KB in Table 2).
    pub transfer_scratchpad_bytes: usize,
    /// MacroNodes larger than this are offloaded to the host CPU (1 KB, §4.3).
    pub cpu_offload_threshold_bytes: usize,
    /// Inter-DIMM network-bridge bandwidth in GB/s (25 GB/s, §4.6).
    pub bridge_bandwidth_gbps: f64,
    /// Average DRAM access latency seen from the buffer chip, in nanoseconds
    /// (shorter than the host's: no off-chip link or memory-controller queueing).
    pub near_memory_latency_ns: f64,
    /// Per-iteration CPU↔NMP synchronization overhead in nanoseconds (§4.3 lock-step).
    pub iteration_sync_ns: f64,
    /// PE timing variant.
    pub pe_variant: PeVariant,
    /// When `true`, stage P3 reuses the MacroNode data fetched in stage P1
    /// ("ideal forwarding logic", §5.3), eliminating the destination re-read.
    pub ideal_forwarding: bool,
}

impl Default for NmpConfig {
    fn default() -> Self {
        NmpConfig {
            pes_per_channel: 32,
            pe_freq_ghz: 1.6,
            macronode_buffer_bytes: 4 * 1024,
            transfer_scratchpad_bytes: 1024,
            cpu_offload_threshold_bytes: 1024,
            bridge_bandwidth_gbps: 25.0,
            near_memory_latency_ns: 45.0,
            iteration_sync_ns: 2_000.0,
            pe_variant: PeVariant::Pipelined,
            ideal_forwarding: false,
        }
    }
}

impl NmpConfig {
    /// The paper's cost-effective configuration: 16 PEs per channel (§6.2).
    pub fn sixteen_pes() -> Self {
        NmpConfig {
            pes_per_channel: 16,
            ..NmpConfig::default()
        }
    }

    /// The ideal-PE study configuration.
    pub fn ideal_pe() -> Self {
        NmpConfig {
            pe_variant: PeVariant::Ideal,
            ..NmpConfig::default()
        }
    }

    /// The ideal-forwarding study configuration.
    pub fn ideal_forwarding() -> Self {
        NmpConfig {
            ideal_forwarding: true,
            ..NmpConfig::default()
        }
    }

    /// Validates the configuration, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.pes_per_channel == 0 {
            return Err("at least one PE per channel is required".to_string());
        }
        if self.pe_freq_ghz <= 0.0 {
            return Err("PE frequency must be positive".to_string());
        }
        if self.macronode_buffer_bytes < self.cpu_offload_threshold_bytes {
            return Err(format!(
                "the MacroNode buffer ({} B) must hold any node below the CPU offload threshold ({} B)",
                self.macronode_buffer_bytes, self.cpu_offload_threshold_bytes
            ));
        }
        if self.bridge_bandwidth_gbps <= 0.0 {
            return Err("bridge bandwidth must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let cfg = NmpConfig::default();
        assert_eq!(cfg.pe_freq_ghz, 1.6);
        assert_eq!(cfg.macronode_buffer_bytes, 4096);
        assert_eq!(cfg.transfer_scratchpad_bytes, 1024);
        assert_eq!(cfg.cpu_offload_threshold_bytes, 1024);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn variants_toggle_the_right_knobs() {
        assert_eq!(NmpConfig::sixteen_pes().pes_per_channel, 16);
        assert_eq!(NmpConfig::ideal_pe().pe_variant, PeVariant::Ideal);
        assert!(NmpConfig::ideal_forwarding().ideal_forwarding);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NmpConfig {
            pes_per_channel: 0,
            ..NmpConfig::default()
        }
        .validate()
        .is_err());
        assert!(NmpConfig {
            pe_freq_ghz: 0.0,
            ..NmpConfig::default()
        }
        .validate()
        .is_err());
        assert!(NmpConfig {
            macronode_buffer_bytes: 512,
            ..NmpConfig::default()
        }
        .validate()
        .is_err());
        assert!(NmpConfig {
            bridge_bandwidth_gbps: 0.0,
            ..NmpConfig::default()
        }
        .validate()
        .is_err());
    }
}
