//! Inter-node network cost model: projecting multi-node PakMan from one-host
//! measurements (§6.3).
//!
//! The sharded engine measures the full shard→shard byte matrix and — under
//! async scheduling — the per-flush mailbox ledger. Mapping shards onto
//! simulated cluster nodes ([`ShardChannelMap`], the same round-robin fold as
//! rank-over-node placement in distributed PaKman) splits that traffic into
//! intra-node bytes (already paid for by the bridge) and cross-node bytes that
//! must ride an inter-node link. [`NetworkModel`] charges each cross-node flush
//! a topology-dependent hop latency plus byte serialization, and
//! [`NetworkModel::project_multinode`] combines the per-node compute share with
//! the per-node network time into a projected multi-node runtime — answering
//! the paper's scalability question (§6.3 reports ~87.5 % of transfers crossing
//! an 8-way partition, which is why multi-node scaling is communication-bound)
//! without running more than one host.

use serde::{Deserialize, Serialize};

use crate::mapping::ShardChannelMap;
use nmp_pak_pakman::ShardingTelemetry;

/// Inter-node wiring of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Topology {
    /// Every node pair has a direct link (one hop).
    #[default]
    FullMesh,
    /// Nodes form a ring; a flush traverses the shorter arc.
    Ring,
    /// Node 0 is the hub; spoke-to-spoke flushes relay through it (two hops).
    Star,
}

/// Cost model for one inter-node link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-hop wire + switch latency in nanoseconds.
    pub latency_ns: f64,
    /// Link bandwidth in GB/s (1 GB/s streams 1 byte per nanosecond).
    pub bandwidth_gbps: f64,
    /// How the nodes are wired.
    pub topology: Topology,
}

impl Default for NetworkModel {
    /// A 100 Gb-Ethernet-class full mesh: 12.5 GB/s per link and ~1.5 µs
    /// end-to-end latency — deliberately slower than the intra-node
    /// inter-DIMM bridge (25 GB/s, [`crate::NmpConfig::default`]).
    fn default() -> Self {
        NetworkModel {
            latency_ns: 1_500.0,
            bandwidth_gbps: 12.5,
            topology: Topology::FullMesh,
        }
    }
}

impl NetworkModel {
    /// Validates the model, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.latency_ns < 0.0 {
            return Err("network latency must be non-negative".to_string());
        }
        if self.bandwidth_gbps <= 0.0 {
            return Err("network bandwidth must be positive".to_string());
        }
        Ok(())
    }

    /// Link hops a flush from `src` to `dst` traverses in a `nodes`-node
    /// cluster (0 when both land on the same node).
    pub fn hops(&self, src: usize, dst: usize, nodes: usize) -> u64 {
        if src == dst || nodes <= 1 {
            return 0;
        }
        match self.topology {
            Topology::FullMesh => 1,
            Topology::Ring => {
                let d = src.abs_diff(dst);
                d.min(nodes - d) as u64
            }
            Topology::Star => {
                if src == 0 || dst == 0 {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// Time for one flush of `bytes` from node `src` to node `dst`: hop
    /// latency plus byte serialization. Zero for node-local flushes.
    pub fn flush_ns(&self, src: usize, dst: usize, bytes: u64, nodes: usize) -> f64 {
        let hops = self.hops(src, dst, nodes);
        if hops == 0 {
            return 0.0;
        }
        hops as f64 * self.latency_ns + bytes as f64 / self.bandwidth_gbps
    }

    /// Projects a measured one-host run onto a `nodes`-node cluster.
    ///
    /// Shards fold onto nodes round-robin. Each node's compute share is its
    /// measured fraction of P1 work (`checked_per_shard`) times the one-host
    /// runtime — the async engine's no-barrier schedule means a node is paced
    /// by its own work, not the global stragglers. Each node also pays to send
    /// its cross-node flushes: the per-flush mailbox ledger when present
    /// (async runs, and lock-step runs that decomposed their exchanges),
    /// otherwise one flush per non-empty lane of the byte matrix. The
    /// projected runtime is the slowest node's compute + send time.
    pub fn project_multinode(
        &self,
        telemetry: &ShardingTelemetry,
        nodes: usize,
        base_runtime_ns: f64,
    ) -> MultinodeProjection {
        let nodes = nodes.max(1);
        let map = ShardChannelMap::new(telemetry.shard_count, nodes);
        let node_of = |shard: usize| map.channel_of(shard) % nodes;

        let mut compute_ns = vec![0.0f64; nodes];
        let total_work: u64 = telemetry.checked_per_shard.iter().sum();
        for (shard, &checked) in telemetry.checked_per_shard.iter().enumerate() {
            if total_work > 0 {
                compute_ns[node_of(shard)] += base_runtime_ns * checked as f64 / total_work as f64;
            }
        }

        // (src shard, dst shard, bytes) per flush; the matrix fallback treats
        // each non-empty lane as one flush (an upper bound on batching, hence
        // a lower bound on latency charges).
        let flushes: Vec<(usize, usize, u64)> = if telemetry.flushes.is_empty() {
            let shards = telemetry.shard_count;
            (0..shards)
                .flat_map(|src| (0..shards).map(move |dst| (src, dst)))
                .map(|(src, dst)| (src, dst, telemetry.routed_bytes(src, dst)))
                .filter(|&(_, _, bytes)| bytes > 0)
                .collect()
        } else {
            telemetry
                .flushes
                .iter()
                .map(|f| (f.src, f.dst, f.bytes))
                .collect()
        };

        let mut network_ns = vec![0.0f64; nodes];
        let mut cross_node_bytes = 0u64;
        let mut intra_node_bytes = 0u64;
        let mut cross_node_flushes = 0u64;
        for (src, dst, bytes) in flushes {
            let (src_node, dst_node) = (node_of(src), node_of(dst));
            if src_node == dst_node {
                intra_node_bytes += bytes;
            } else {
                cross_node_bytes += bytes;
                cross_node_flushes += 1;
                network_ns[src_node] += self.flush_ns(src_node, dst_node, bytes, nodes);
            }
        }

        let projected_runtime_ns = compute_ns
            .iter()
            .zip(&network_ns)
            .map(|(c, n)| c + n)
            .fold(0.0f64, f64::max);
        MultinodeProjection {
            nodes,
            base_runtime_ns,
            projected_runtime_ns,
            cross_node_bytes,
            intra_node_bytes,
            cross_node_flushes,
            max_node_network_ns: network_ns.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// The projected cost of running a measured one-host workload on a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultinodeProjection {
    /// Cluster size the projection targets.
    pub nodes: usize,
    /// Measured one-host runtime the projection scales from.
    pub base_runtime_ns: f64,
    /// Projected runtime: slowest node's compute share + flush send time.
    pub projected_runtime_ns: f64,
    /// Mailbox bytes that crossed nodes (ride the modeled network).
    pub cross_node_bytes: u64,
    /// Mailbox bytes that stayed on one node (already paid by the bridge).
    pub intra_node_bytes: u64,
    /// Number of cross-node flushes (each pays the hop latency).
    pub cross_node_flushes: u64,
    /// Largest per-node network send time.
    pub max_node_network_ns: f64,
}

impl MultinodeProjection {
    /// Projected speedup over the measured one-host run (< 1 means the
    /// network eats the parallelism — the §6.3 communication wall).
    pub fn speedup(&self) -> f64 {
        if self.projected_runtime_ns <= 0.0 {
            return 1.0;
        }
        self.base_runtime_ns / self.projected_runtime_ns
    }

    /// Fraction of mailbox bytes that crossed nodes.
    pub fn cross_node_fraction(&self) -> f64 {
        let total = self.cross_node_bytes + self.intra_node_bytes;
        if total == 0 {
            return 0.0;
        }
        self.cross_node_bytes as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::MailboxFlushStats;

    fn telemetry(shards: usize, per_lane_bytes: u64) -> ShardingTelemetry {
        let mut route_bytes = vec![0u64; shards * shards];
        let mut flushes = Vec::new();
        for src in 0..shards {
            for dst in 0..shards {
                if src != dst {
                    route_bytes[src * shards + dst] = per_lane_bytes;
                    flushes.push(MailboxFlushStats {
                        src,
                        dst,
                        src_iteration: 0,
                        transfers: 1,
                        bytes: per_lane_bytes,
                    });
                }
            }
        }
        ShardingTelemetry {
            shard_count: shards,
            initial_alive_per_shard: vec![100; shards],
            final_alive_per_shard: vec![50; shards],
            checked_per_shard: vec![1_000; shards],
            mailbox: Vec::new(),
            route_bytes,
            flushes,
            round_nanos: Vec::new(),
        }
    }

    #[test]
    fn hop_counts_match_each_topology() {
        let mesh = NetworkModel::default();
        assert_eq!(mesh.hops(0, 3, 8), 1);
        assert_eq!(mesh.hops(3, 3, 8), 0);

        let ring = NetworkModel {
            topology: Topology::Ring,
            ..NetworkModel::default()
        };
        assert_eq!(ring.hops(0, 1, 8), 1);
        assert_eq!(ring.hops(0, 4, 8), 4);
        assert_eq!(ring.hops(0, 7, 8), 1, "shorter arc wraps");

        let star = NetworkModel {
            topology: Topology::Star,
            ..NetworkModel::default()
        };
        assert_eq!(star.hops(0, 5, 8), 1);
        assert_eq!(star.hops(5, 0, 8), 1);
        assert_eq!(star.hops(3, 5, 8), 2, "spoke to spoke relays via the hub");
    }

    #[test]
    fn projection_conserves_bytes_and_splits_by_node() {
        let t = telemetry(8, 1_000);
        let model = NetworkModel::default();
        let p = model.project_multinode(&t, 4, 1_000_000.0);
        let total: u64 = t.route_bytes.iter().sum();
        assert_eq!(p.cross_node_bytes + p.intra_node_bytes, total);
        // 8 shards on 4 nodes: 2 shards per node → of each shard's 7 lanes, 1
        // stays on-node (8 intra lanes of 56 total).
        assert_eq!(p.intra_node_bytes, 8_000);
        assert_eq!(p.cross_node_flushes, 48);
        assert!((p.cross_node_fraction() - 48.0 / 56.0).abs() < 1e-12);
    }

    #[test]
    fn cheap_network_scales_and_expensive_network_does_not() {
        let t = telemetry(8, 1_000);
        let base = 10_000_000.0;
        let cheap = NetworkModel {
            latency_ns: 100.0,
            bandwidth_gbps: 100.0,
            topology: Topology::FullMesh,
        };
        let p = cheap.project_multinode(&t, 8, base);
        assert!(p.speedup() > 4.0, "speedup = {}", p.speedup());

        let expensive = NetworkModel {
            latency_ns: 1_000_000.0,
            bandwidth_gbps: 0.001,
            topology: Topology::FullMesh,
        };
        let p = expensive.project_multinode(&t, 8, base);
        assert!(p.speedup() < 1.0, "speedup = {}", p.speedup());
    }

    #[test]
    fn single_node_projection_is_the_measured_run() {
        let t = telemetry(8, 1_000);
        let p = NetworkModel::default().project_multinode(&t, 1, 5_000.0);
        assert_eq!(p.cross_node_bytes, 0);
        assert_eq!(p.max_node_network_ns, 0.0);
        assert!((p.projected_runtime_ns - 5_000.0).abs() < 1e-6);
        assert!((p.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_fallback_matches_per_flush_ledger_with_one_flush_per_lane() {
        let mut t = telemetry(8, 1_000);
        let model = NetworkModel::default();
        let with_ledger = model.project_multinode(&t, 4, 1_000_000.0);
        t.flushes.clear();
        let from_matrix = model.project_multinode(&t, 4, 1_000_000.0);
        assert_eq!(with_ledger, from_matrix);
    }

    #[test]
    fn invalid_models_are_rejected() {
        assert!(NetworkModel::default().validate().is_ok());
        assert!(NetworkModel {
            latency_ns: -1.0,
            ..NetworkModel::default()
        }
        .validate()
        .is_err());
        assert!(NetworkModel {
            bandwidth_gbps: 0.0,
            ..NetworkModel::default()
        }
        .validate()
        .is_err());
    }
}
