//! Area and power model (Table 3 of the paper, 28 nm post-synthesis).
//!
//! The paper reports per-component area/power for one PE and for a 16-PE buffer-chip
//! integration, then compares against a 100 mm² buffer chip and a 13 W DIMM. The
//! component values are taken from the paper; this module reproduces the composition
//! for arbitrary PE counts and configurations, plus the §6.6 GPU-efficiency
//! comparison.

use crate::config::NmpConfig;
use serde::{Deserialize, Serialize};

/// Area (mm²) and power (mW) of one hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComponentBudget {
    /// Component name.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Reference buffer-chip area the overhead is compared against (mm², §6.5).
pub const BUFFER_CHIP_AREA_MM2: f64 = 100.0;
/// Reference DIMM power the overhead is compared against (W, §6.5).
pub const DIMM_POWER_W: f64 = 13.0;

/// The Table 3 component model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AreaPowerModel {
    /// Per-PE components (buffers, scratchpads, ALUs).
    pub pe_components: Vec<ComponentBudget>,
    /// Per-buffer-chip components shared by all PEs (the crossbar switch).
    pub shared_components: Vec<ComponentBudget>,
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        AreaPowerModel {
            pe_components: vec![
                ComponentBudget {
                    name: "MacroNode buffer (4 KB) x2",
                    area_mm2: 0.038,
                    power_mw: 9.2,
                },
                ComponentBudget {
                    name: "TransferNode scratchpad (1 KB) x2",
                    area_mm2: 0.009,
                    power_mw: 2.3,
                },
                ComponentBudget {
                    name: "ALU x3",
                    area_mm2: 0.037,
                    power_mw: 18.5,
                },
            ],
            shared_components: vec![ComponentBudget {
                name: "crossbar switch",
                area_mm2: 0.025,
                power_mw: 0.3,
            }],
        }
    }
}

impl AreaPowerModel {
    /// Area of one PE in mm² (the paper's 0.110 mm², including its crossbar share).
    pub fn pe_area_mm2(&self) -> f64 {
        self.pe_components.iter().map(|c| c.area_mm2).sum::<f64>()
            + self
                .shared_components
                .iter()
                .map(|c| c.area_mm2)
                .sum::<f64>()
    }

    /// Power of one PE in mW (the paper's 30.6 mW).
    pub fn pe_power_mw(&self) -> f64 {
        self.pe_components.iter().map(|c| c.power_mw).sum::<f64>()
            + self
                .shared_components
                .iter()
                .map(|c| c.power_mw)
                .sum::<f64>()
    }

    /// Area of `pes` PEs in one buffer chip, in mm².
    pub fn chip_area_mm2(&self, pes: usize) -> f64 {
        self.pe_area_mm2() * pes as f64
    }

    /// Power of `pes` PEs in one buffer chip, in mW.
    pub fn chip_power_mw(&self, pes: usize) -> f64 {
        self.pe_power_mw() * pes as f64
    }

    /// Area overhead relative to a standard buffer chip, as a fraction.
    pub fn area_overhead_fraction(&self, pes: usize) -> f64 {
        self.chip_area_mm2(pes) / BUFFER_CHIP_AREA_MM2
    }

    /// Power overhead relative to a DIMM, as a fraction.
    pub fn power_overhead_fraction(&self, pes: usize) -> f64 {
        self.chip_power_mw(pes) / 1_000.0 / DIMM_POWER_W
    }

    /// Total NMP area (mm²) and power (W) for a whole system configuration.
    pub fn system_totals(&self, config: &NmpConfig, channels: usize) -> (f64, f64) {
        let pes = config.pes_per_channel;
        let area = self.chip_area_mm2(pes) * channels as f64;
        let power_w = self.chip_power_mw(pes) / 1_000.0 * channels as f64;
        (area, power_w)
    }
}

/// §6.6 comparison: power and area advantage of an 8-DIMM NMP-PaK system over the GPU
/// cluster needed to hold the same footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuComparison {
    /// GPUs required for the footprint.
    pub gpus_needed: u64,
    /// GPU cluster power in watts.
    pub gpu_power_w: f64,
    /// GPU cluster die area in mm².
    pub gpu_area_mm2: f64,
    /// NMP system power in watts.
    pub nmp_power_w: f64,
    /// NMP system die area in mm².
    pub nmp_area_mm2: f64,
}

impl GpuComparison {
    /// Builds the comparison for a workload needing `footprint_bytes`.
    pub fn new(
        model: &AreaPowerModel,
        nmp_config: &NmpConfig,
        channels: usize,
        gpu: &nmp_pak_memsim::GpuConfig,
        footprint_bytes: u64,
    ) -> Self {
        let gpus_needed = gpu.devices_needed(footprint_bytes);
        let (nmp_area_mm2, nmp_power_w) = model.system_totals(nmp_config, channels);
        GpuComparison {
            gpus_needed,
            gpu_power_w: gpus_needed as f64 * gpu.board_power_w,
            gpu_area_mm2: gpus_needed as f64 * gpu.die_area_mm2,
            nmp_power_w,
            nmp_area_mm2,
        }
    }

    /// GPU-to-NMP power ratio (the paper reports 385×).
    pub fn power_ratio(&self) -> f64 {
        if self.nmp_power_w == 0.0 {
            return 0.0;
        }
        self.gpu_power_w / self.nmp_power_w
    }

    /// GPU-to-NMP area ratio (the paper reports 293×).
    pub fn area_ratio(&self) -> f64 {
        if self.nmp_area_mm2 == 0.0 {
            return 0.0;
        }
        self.gpu_area_mm2 / self.nmp_area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pe_totals_match_table3() {
        let model = AreaPowerModel::default();
        assert!(
            (model.pe_area_mm2() - 0.109).abs() < 0.005,
            "{}",
            model.pe_area_mm2()
        );
        assert!(
            (model.pe_power_mw() - 30.3).abs() < 0.5,
            "{}",
            model.pe_power_mw()
        );
    }

    #[test]
    fn sixteen_pe_totals_match_table3() {
        let model = AreaPowerModel::default();
        // Table 3: 1.763 mm² and 489.3 mW for 16 PEs.
        assert!((model.chip_area_mm2(16) - 1.763).abs() < 0.1);
        assert!((model.chip_power_mw(16) - 489.3).abs() < 10.0);
    }

    #[test]
    fn overheads_are_negligible() {
        let model = AreaPowerModel::default();
        // §6.5: 1.8 % area and 3.8 % power for 16 PEs.
        let area = model.area_overhead_fraction(16);
        let power = model.power_overhead_fraction(16);
        assert!(area > 0.015 && area < 0.02, "area fraction {area}");
        assert!(power > 0.03 && power < 0.045, "power fraction {power}");
    }

    #[test]
    fn system_totals_scale_with_channels_and_pes() {
        let model = AreaPowerModel::default();
        let (a8, p8) = model.system_totals(&NmpConfig::sixteen_pes(), 8);
        let (a4, p4) = model.system_totals(&NmpConfig::sixteen_pes(), 4);
        assert!((a8 - 2.0 * a4).abs() < 1e-9);
        assert!((p8 - 2.0 * p4).abs() < 1e-9);
        // 8 DIMMs with 16 PEs each: ~14.1 mm², ~3.9 W (§6.6).
        assert!(a8 > 12.0 && a8 < 16.0, "area {a8}");
        assert!(p8 > 3.0 && p8 < 4.5, "power {p8}");
    }

    #[test]
    fn gpu_comparison_reproduces_the_order_of_magnitude() {
        let model = AreaPowerModel::default();
        let gpu = nmp_pak_memsim::GpuConfig::a100_80gb();
        // §6.6: a 379 GB footprint needs five 80 GB A100s (1500 W with the paper's
        // 300 W-class boards; 400 W SXM boards here) and 4130 mm².
        let cmp = GpuComparison::new(&model, &NmpConfig::sixteen_pes(), 8, &gpu, 379 << 30);
        assert_eq!(cmp.gpus_needed, 5);
        assert!(
            cmp.power_ratio() > 100.0,
            "power ratio {}",
            cmp.power_ratio()
        );
        assert!(cmp.area_ratio() > 100.0, "area ratio {}", cmp.area_ratio());
    }
}
