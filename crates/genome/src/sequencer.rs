//! ART-like short-read sequencing simulation.
//!
//! The paper sequences its sample DNA with the ART simulator (Table 2: 100 bp reads,
//! 100× coverage, k = 32). This module reproduces that statistical process: reads are
//! sampled uniformly from both strands of the reference genome and each base is
//! independently substituted with a configurable error probability (< 1 % for Illumina
//! short reads, per §2.1).

use crate::dna::DnaString;
use crate::error::GenomeError;
use crate::reads::SequencingRead;
use crate::reference::ReferenceGenome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the short-read simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequencerConfig {
    /// Read length in base pairs. The paper uses 100.
    pub read_length: usize,
    /// Mean sequencing coverage (average number of reads covering each base).
    /// The paper uses 100×.
    pub coverage: f64,
    /// Per-base substitution error probability. Illumina short reads are < 1 %.
    pub substitution_error_rate: f64,
    /// Probability of sampling a read from the reverse strand.
    pub reverse_strand_probability: f64,
    /// RNG seed; the same seed and genome yield the same read set.
    pub seed: u64,
}

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig {
            read_length: 100,
            coverage: 100.0,
            substitution_error_rate: 0.005,
            reverse_strand_probability: 0.5,
            seed: 0xBEEF,
        }
    }
}

impl SequencerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidConfig`] if the read length is zero, coverage is
    /// not positive, or any probability lies outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), GenomeError> {
        if self.read_length == 0 {
            return Err(GenomeError::InvalidConfig {
                message: "read length must be positive".to_string(),
            });
        }
        if self.coverage <= 0.0 {
            return Err(GenomeError::InvalidConfig {
                message: format!("coverage {} must be positive", self.coverage),
            });
        }
        for (name, p) in [
            ("substitution error rate", self.substitution_error_rate),
            (
                "reverse strand probability",
                self.reverse_strand_probability,
            ),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(GenomeError::InvalidConfig {
                    message: format!("{name} {p} must lie in [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// Simulates Illumina-style short reads from a reference genome.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::{ReferenceGenome, ReadSimulator, SequencerConfig};
///
/// # fn main() -> Result<(), nmp_pak_genome::GenomeError> {
/// let genome = ReferenceGenome::builder().length(5_000).seed(1).build()?;
/// let reads = ReadSimulator::new(SequencerConfig {
///     coverage: 10.0,
///     ..SequencerConfig::default()
/// })
/// .simulate(&genome)?;
/// // coverage * genome_len / read_len reads, up to rounding
/// assert_eq!(reads.len(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReadSimulator {
    config: SequencerConfig,
}

impl ReadSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SequencerConfig) -> Self {
        ReadSimulator { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SequencerConfig {
        &self.config
    }

    /// Number of reads that will be produced for a genome of `genome_len` bases.
    pub fn read_count_for(&self, genome_len: usize) -> usize {
        ((genome_len as f64 * self.config.coverage) / self.config.read_length as f64).round()
            as usize
    }

    /// Samples reads from `genome` according to the configuration.
    ///
    /// # Errors
    ///
    /// * [`GenomeError::InvalidConfig`] if the configuration is invalid.
    /// * [`GenomeError::SequenceTooShort`] if the genome is shorter than one read.
    pub fn simulate(&self, genome: &ReferenceGenome) -> Result<Vec<SequencingRead>, GenomeError> {
        self.config.validate()?;
        let seq = genome.sequence();
        if seq.len() < self.config.read_length {
            return Err(GenomeError::SequenceTooShort {
                actual: seq.len(),
                required: self.config.read_length,
            });
        }

        let n_reads = self.read_count_for(seq.len());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut reads = Vec::with_capacity(n_reads);
        for idx in 0..n_reads {
            reads.push(sample_read(&self.config, genome, &mut rng, idx));
        }
        Ok(reads)
    }
}

/// Samples one read from `genome` — the shared per-read step of
/// [`ReadSimulator::simulate`] and the streaming
/// [`crate::source::SyntheticSource`]. Both draw from the same RNG stream, so a
/// chunked source concatenates to exactly the simulator's read set.
///
/// The configuration must be validated and the genome at least one read long.
pub(crate) fn sample_read(
    config: &SequencerConfig,
    genome: &ReferenceGenome,
    rng: &mut StdRng,
    idx: usize,
) -> SequencingRead {
    let seq = genome.sequence();
    let max_start = seq.len() - config.read_length;
    let start = rng.gen_range(0..=max_start);
    let reverse = rng.gen_bool(config.reverse_strand_probability);
    let window = seq.slice(start, config.read_length);
    let oriented = if reverse {
        window.reverse_complement()
    } else {
        window
    };

    let mut bases = Vec::with_capacity(oriented.len());
    let mut qualities = Vec::with_capacity(oriented.len());
    for b in oriented.iter() {
        if rng.gen_bool(config.substitution_error_rate) {
            bases.push(b.substitute(rng.gen_range(0..3u8)));
            qualities.push(15);
        } else {
            bases.push(b);
            qualities.push(38);
        }
    }
    let sequence: DnaString = bases.into_iter().collect();
    SequencingRead::with_provenance(
        format!("{}_{idx}", genome.name()),
        sequence,
        qualities,
        start,
        reverse,
    )
}

/// Convenience helper: counts how many sampled read bases differ from the reference
/// window they were drawn from. Used by tests to validate the error model.
pub fn count_substitutions(genome: &ReferenceGenome, read: &SequencingRead) -> Option<usize> {
    let origin = read.origin()?;
    let window = genome.sequence().slice(origin, read.len());
    let expected = if read.is_reverse_strand() {
        window.reverse_complement()
    } else {
        window
    };
    Some(
        expected
            .iter()
            .zip(read.sequence().iter())
            .filter(|(a, b)| a != b)
            .count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_genome() -> ReferenceGenome {
        ReferenceGenome::builder()
            .length(10_000)
            .no_repeats()
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn read_count_matches_coverage() {
        let genome = small_genome();
        let sim = ReadSimulator::new(SequencerConfig {
            coverage: 30.0,
            read_length: 100,
            ..SequencerConfig::default()
        });
        let reads = sim.simulate(&genome).unwrap();
        assert_eq!(reads.len(), 3_000);
        assert!(reads.iter().all(|r| r.len() == 100));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let genome = small_genome();
        let cfg = SequencerConfig {
            coverage: 5.0,
            seed: 7,
            ..SequencerConfig::default()
        };
        let a = ReadSimulator::new(cfg).simulate(&genome).unwrap();
        let b = ReadSimulator::new(cfg).simulate(&genome).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_free_reads_match_reference_exactly() {
        let genome = small_genome();
        let sim = ReadSimulator::new(SequencerConfig {
            coverage: 5.0,
            substitution_error_rate: 0.0,
            ..SequencerConfig::default()
        });
        for read in sim.simulate(&genome).unwrap() {
            assert_eq!(count_substitutions(&genome, &read), Some(0));
        }
    }

    #[test]
    fn substitution_rate_is_close_to_configured() {
        let genome = small_genome();
        let rate = 0.01;
        let sim = ReadSimulator::new(SequencerConfig {
            coverage: 20.0,
            substitution_error_rate: rate,
            ..SequencerConfig::default()
        });
        let reads = sim.simulate(&genome).unwrap();
        let total_bases: usize = reads.iter().map(SequencingRead::len).sum();
        let total_subs: usize = reads
            .iter()
            .map(|r| count_substitutions(&genome, r).unwrap())
            .sum();
        let observed = total_subs as f64 / total_bases as f64;
        assert!(
            (observed - rate).abs() < 0.002,
            "observed substitution rate {observed}"
        );
    }

    #[test]
    fn both_strands_are_sampled() {
        let genome = small_genome();
        let sim = ReadSimulator::new(SequencerConfig {
            coverage: 10.0,
            ..SequencerConfig::default()
        });
        let reads = sim.simulate(&genome).unwrap();
        let reverse = reads.iter().filter(|r| r.is_reverse_strand()).count();
        let fraction = reverse as f64 / reads.len() as f64;
        assert!((fraction - 0.5).abs() < 0.1, "reverse fraction {fraction}");
    }

    #[test]
    fn forward_only_when_probability_zero() {
        let genome = small_genome();
        let sim = ReadSimulator::new(SequencerConfig {
            coverage: 2.0,
            reverse_strand_probability: 0.0,
            ..SequencerConfig::default()
        });
        let reads = sim.simulate(&genome).unwrap();
        assert!(reads.iter().all(|r| !r.is_reverse_strand()));
    }

    #[test]
    fn rejects_invalid_configs_and_short_genomes() {
        let genome = small_genome();
        assert!(ReadSimulator::new(SequencerConfig {
            read_length: 0,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .is_err());
        assert!(ReadSimulator::new(SequencerConfig {
            coverage: -1.0,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .is_err());
        assert!(ReadSimulator::new(SequencerConfig {
            substitution_error_rate: 2.0,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .is_err());

        let tiny = ReferenceGenome::builder()
            .length(50)
            .no_repeats()
            .seed(1)
            .build()
            .unwrap();
        assert!(ReadSimulator::new(SequencerConfig::default())
            .simulate(&tiny)
            .is_err());
    }
}
