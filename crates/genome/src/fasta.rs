//! Minimal FASTA / FASTQ serialization.
//!
//! The real pipeline reads tens-of-GB FASTQ files; here the formats are supported so
//! that the examples can persist synthetic datasets and contigs, and so the test suite
//! can round-trip sequences through the on-disk representation.

use crate::dna::DnaString;
use crate::error::GenomeError;
use crate::reads::SequencingRead;
use std::io::{BufRead, Write};

/// A named sequence record, as stored in a FASTA file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Record name (text after `>`).
    pub name: String,
    /// The sequence.
    pub sequence: DnaString,
}

/// Writes FASTA records to `writer`, wrapping sequence lines at `width` characters.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), GenomeError> {
    let width = width.max(1);
    for record in records {
        writeln!(writer, ">{}", record.name)?;
        let text = record.sequence.to_ascii();
        for chunk in text.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Parses FASTA records from `reader`.
///
/// # Errors
///
/// Returns [`GenomeError::ParseError`] for malformed input (sequence data before the
/// first header or invalid bases) and propagates I/O errors.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, GenomeError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, DnaString)> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some((n, s)) = current.take() {
                records.push(FastaRecord {
                    name: n,
                    sequence: s,
                });
            }
            current = Some((name.trim().to_string(), DnaString::new()));
        } else {
            let (_, seq) = current.as_mut().ok_or(GenomeError::ParseError {
                line: lineno + 1,
                message: "sequence data before the first '>' header".to_string(),
            })?;
            let parsed = DnaString::from_ascii(line).map_err(|e| GenomeError::ParseError {
                line: lineno + 1,
                message: e.to_string(),
            })?;
            seq.extend_from(&parsed);
        }
    }
    if let Some((n, s)) = current.take() {
        records.push(FastaRecord {
            name: n,
            sequence: s,
        });
    }
    Ok(records)
}

/// Writes reads in FASTQ format (4 lines per read; Phred+33 qualities).
///
/// Reads without quality scores are written with a constant quality of 'I' (Q40).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_fastq<W: Write>(mut writer: W, reads: &[SequencingRead]) -> Result<(), GenomeError> {
    for read in reads {
        writeln!(writer, "@{}", read.id())?;
        writeln!(writer, "{}", read.sequence())?;
        writeln!(writer, "+")?;
        if read.qualities().is_empty() {
            let quals: String = std::iter::repeat_n('I', read.len()).collect();
            writeln!(writer, "{quals}")?;
        } else {
            let quals: String = read
                .qualities()
                .iter()
                .map(|q| (q.min(&93) + 33) as char)
                .collect();
            writeln!(writer, "{quals}")?;
        }
    }
    Ok(())
}

/// Parses reads from FASTQ text.
///
/// # Errors
///
/// Returns [`GenomeError::ParseError`] for truncated records or invalid bases.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<SequencingRead>, GenomeError> {
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut reads = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        if i + 3 >= lines.len() {
            return Err(GenomeError::ParseError {
                line: i + 1,
                message: "truncated fastq record".to_string(),
            });
        }
        let id = lines[i]
            .strip_prefix('@')
            .ok_or(GenomeError::ParseError {
                line: i + 1,
                message: "expected '@' header".to_string(),
            })?
            .trim()
            .to_string();
        let sequence =
            DnaString::from_ascii(lines[i + 1].trim()).map_err(|e| GenomeError::ParseError {
                line: i + 2,
                message: e.to_string(),
            })?;
        if !lines[i + 2].starts_with('+') {
            return Err(GenomeError::ParseError {
                line: i + 3,
                message: "expected '+' separator".to_string(),
            });
        }
        let qualities: Vec<u8> = lines[i + 3]
            .trim()
            .bytes()
            .map(|b| b.saturating_sub(33))
            .collect();
        if qualities.len() != sequence.len() {
            return Err(GenomeError::ParseError {
                line: i + 4,
                message: format!(
                    "quality string length {} does not match sequence length {}",
                    qualities.len(),
                    sequence.len()
                ),
            });
        }
        let mut read = SequencingRead::with_provenance(id, sequence, qualities, 0, false);
        // Plain FASTQ has no provenance; strip the placeholder origin.
        read = SequencingRead::new(read.id().to_string(), read.sequence().clone());
        reads.push(read);
        i += 4;
    }
    Ok(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fasta_round_trip() {
        let records = vec![
            FastaRecord {
                name: "contig_1".to_string(),
                sequence: "ACGTACGTACGTACGT".parse().unwrap(),
            },
            FastaRecord {
                name: "contig_2".to_string(),
                sequence: "TTTTGGGGCCCCAAAA".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 8).unwrap();
        let parsed = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_wraps_lines() {
        let records = vec![FastaRecord {
            name: "x".to_string(),
            sequence: "ACGTACGTACGT".parse().unwrap(),
        }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, ">x\nACGT\nACGT\nACGT\n");
    }

    #[test]
    fn fasta_rejects_sequence_before_header() {
        let err = read_fasta(Cursor::new("ACGT\n>x\n")).unwrap_err();
        assert!(matches!(err, GenomeError::ParseError { line: 1, .. }));
    }

    #[test]
    fn fasta_rejects_invalid_bases() {
        let err = read_fasta(Cursor::new(">x\nACGN\n")).unwrap_err();
        assert!(matches!(err, GenomeError::ParseError { line: 2, .. }));
    }

    #[test]
    fn fastq_round_trip_preserves_sequences() {
        let reads = vec![
            SequencingRead::new("r1", "ACGTACGT".parse().unwrap()),
            SequencingRead::new("r2", "GGGGTTTT".parse().unwrap()),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        let parsed = read_fastq(Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id(), "r1");
        assert_eq!(parsed[0].sequence(), reads[0].sequence());
        assert_eq!(parsed[1].sequence(), reads[1].sequence());
    }

    #[test]
    fn fastq_rejects_truncated_records() {
        assert!(read_fastq(Cursor::new("@r1\nACGT\n+")).is_err());
        assert!(read_fastq(Cursor::new("@r1\nACGT\nX\nIIII\n")).is_err());
        assert!(read_fastq(Cursor::new("@r1\nACGT\n+\nII\n")).is_err());
    }
}
