//! FASTA / FASTQ serialization — batch helpers and incremental record readers.
//!
//! The real pipeline reads tens-of-GB FASTQ files, so parsing is structured
//! around two incremental readers — [`FastaReader`] and [`FastqReader`] — that
//! pull one record at a time off a [`BufRead`] without materializing the file.
//! [`crate::source::FastaFastqSource`] wraps them into a bounded-memory
//! [`crate::source::ReadSource`]; the batch helpers [`read_fasta`] /
//! [`read_fastq`] collect the same record streams for the examples and tests.
//!
//! Both readers accept CRLF line endings, blank lines between records, and
//! (for FASTA) sequences wrapped across any number of lines.

use crate::dna::DnaString;
use crate::error::GenomeError;
use crate::reads::SequencingRead;
use std::io::{BufRead, Write};

/// A named sequence record, as stored in a FASTA file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Record name (text after `>`).
    pub name: String,
    /// The sequence.
    pub sequence: DnaString,
}

/// Writes one FASTA record to `writer`, wrapping sequence lines at `width`
/// characters. This is the streaming primitive behind [`write_fasta`]: callers
/// producing records one at a time (e.g. a graph walk) emit each as it is
/// generated instead of materializing the whole record set.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_fasta_record<W: Write>(
    writer: &mut W,
    name: &str,
    sequence: &DnaString,
    width: usize,
) -> Result<(), GenomeError> {
    let width = width.max(1);
    writeln!(writer, ">{name}")?;
    let text = sequence.to_ascii();
    for chunk in text.as_bytes().chunks(width) {
        writer.write_all(chunk)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes FASTA records to `writer`, wrapping sequence lines at `width` characters.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), GenomeError> {
    for record in records {
        write_fasta_record(&mut writer, &record.name, &record.sequence, width)?;
    }
    Ok(())
}

/// Parses FASTA records from `reader` (collects the [`FastaReader`] stream).
///
/// # Errors
///
/// Returns [`GenomeError::ParseError`] for malformed input (sequence data before the
/// first header or invalid bases) and propagates I/O errors.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, GenomeError> {
    let mut records = Vec::new();
    let mut fasta = FastaReader::new(reader);
    while let Some(record) = fasta.next_record()? {
        records.push(record);
    }
    Ok(records)
}

/// Writes reads in FASTQ format (4 lines per read; Phred+33 qualities).
///
/// Reads without quality scores are written with a constant quality of 'I' (Q40).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_fastq<W: Write>(mut writer: W, reads: &[SequencingRead]) -> Result<(), GenomeError> {
    for read in reads {
        writeln!(writer, "@{}", read.id())?;
        writeln!(writer, "{}", read.sequence())?;
        writeln!(writer, "+")?;
        if read.qualities().is_empty() {
            let quals: String = std::iter::repeat_n('I', read.len()).collect();
            writeln!(writer, "{quals}")?;
        } else {
            let quals: String = read
                .qualities()
                .iter()
                .map(|q| (q.min(&93) + 33) as char)
                .collect();
            writeln!(writer, "{quals}")?;
        }
    }
    Ok(())
}

/// Parses reads from FASTQ text (collects the [`FastqReader`] stream).
///
/// # Errors
///
/// Returns [`GenomeError::ParseError`] for truncated records or invalid bases.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<SequencingRead>, GenomeError> {
    let mut reads = Vec::new();
    let mut fastq = FastqReader::new(reader);
    while let Some(read) = fastq.next_record()? {
        reads.push(read);
    }
    Ok(reads)
}

/// Reads one line (without the trailing `\n` / `\r\n`), returning `None` at EOF.
fn read_line<R: BufRead>(
    reader: &mut R,
    lineno: &mut usize,
) -> Result<Option<String>, GenomeError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    *lineno += 1;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Incremental FASTA parser: yields one [`FastaRecord`] per call without reading
/// the rest of the file.
///
/// Sequences may be wrapped across any number of lines; blank lines and CRLF
/// endings are accepted anywhere.
#[derive(Debug)]
pub struct FastaReader<R: BufRead> {
    reader: R,
    lineno: usize,
    /// One line of lookahead (with its 1-based line number): a record ends at
    /// the next `>` header, which must not be consumed.
    peeked: Option<(usize, String)>,
}

impl<R: BufRead> FastaReader<R> {
    /// Wraps a buffered reader positioned at the start of FASTA text.
    pub fn new(reader: R) -> Self {
        FastaReader {
            reader,
            lineno: 0,
            peeked: None,
        }
    }

    fn take_line(&mut self) -> Result<Option<(usize, String)>, GenomeError> {
        if let Some(peeked) = self.peeked.take() {
            return Ok(Some(peeked));
        }
        Ok(read_line(&mut self.reader, &mut self.lineno)?.map(|line| (self.lineno, line)))
    }

    fn peek_line(&mut self) -> Result<Option<&(usize, String)>, GenomeError> {
        if self.peeked.is_none() {
            self.peeked =
                read_line(&mut self.reader, &mut self.lineno)?.map(|line| (self.lineno, line));
        }
        Ok(self.peeked.as_ref())
    }

    /// Parses the next record, or `Ok(None)` at end of input.
    ///
    /// A header with no following sequence lines yields a record with an empty
    /// sequence.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ParseError`] for sequence data before the first
    /// header or invalid bases, and propagates I/O errors.
    pub fn next_record(&mut self) -> Result<Option<FastaRecord>, GenomeError> {
        let name = loop {
            let Some((lineno, line)) = self.take_line()? else {
                return Ok(None);
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match line.strip_prefix('>') {
                Some(name) => break name.trim().to_string(),
                None => {
                    return Err(GenomeError::ParseError {
                        line: lineno,
                        message: "sequence data before the first '>' header".to_string(),
                    })
                }
            }
        };

        let mut sequence = DnaString::new();
        loop {
            match self.peek_line()? {
                None => break,
                Some((_, line)) if line.trim_start().starts_with('>') => break,
                Some(_) => {}
            }
            let (lineno, line) = self.take_line()?.expect("line was just peeked");
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed = DnaString::from_ascii(line).map_err(|e| GenomeError::ParseError {
                line: lineno,
                message: e.to_string(),
            })?;
            sequence.extend_from(&parsed);
        }
        Ok(Some(FastaRecord { name, sequence }))
    }
}

/// Incremental FASTQ parser: yields one read per call without reading the rest
/// of the file.
///
/// Records are the standard four lines (`@id`, sequence, `+`, qualities); blank
/// lines between records and CRLF endings are accepted. Quality scores are
/// decoded from Phred+33 and kept on the read.
#[derive(Debug)]
pub struct FastqReader<R: BufRead> {
    reader: R,
    lineno: usize,
}

impl<R: BufRead> FastqReader<R> {
    /// Wraps a buffered reader positioned at the start of FASTQ text.
    pub fn new(reader: R) -> Self {
        FastqReader { reader, lineno: 0 }
    }

    fn next_line(&mut self) -> Result<Option<String>, GenomeError> {
        read_line(&mut self.reader, &mut self.lineno)
    }

    fn line_or_truncated(&mut self) -> Result<String, GenomeError> {
        self.next_line()?.ok_or(GenomeError::ParseError {
            line: self.lineno + 1,
            message: "truncated fastq record".to_string(),
        })
    }

    /// Parses the next read, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ParseError`] for truncated records, missing
    /// `@`/`+` markers, invalid bases, or quality strings whose length does not
    /// match the sequence, and propagates I/O errors.
    pub fn next_record(&mut self) -> Result<Option<SequencingRead>, GenomeError> {
        let header = loop {
            let Some(line) = self.next_line()? else {
                return Ok(None);
            };
            if !line.trim().is_empty() {
                break line;
            }
        };
        let id = header
            .trim()
            .strip_prefix('@')
            .ok_or(GenomeError::ParseError {
                line: self.lineno,
                message: "expected '@' header".to_string(),
            })?
            .trim()
            .to_string();

        let seq_line = self.line_or_truncated()?;
        let sequence =
            DnaString::from_ascii(seq_line.trim()).map_err(|e| GenomeError::ParseError {
                line: self.lineno,
                message: e.to_string(),
            })?;

        let plus = self.line_or_truncated()?;
        if !plus.trim_start().starts_with('+') {
            return Err(GenomeError::ParseError {
                line: self.lineno,
                message: "expected '+' separator".to_string(),
            });
        }

        let qual_line = self.line_or_truncated()?;
        let qualities: Vec<u8> = qual_line
            .trim()
            .bytes()
            .map(|b| b.saturating_sub(33))
            .collect();
        if qualities.len() != sequence.len() {
            return Err(GenomeError::ParseError {
                line: self.lineno,
                message: format!(
                    "quality string length {} does not match sequence length {}",
                    qualities.len(),
                    sequence.len()
                ),
            });
        }
        Ok(Some(SequencingRead::with_qualities(
            id, sequence, qualities,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fasta_round_trip() {
        let records = vec![
            FastaRecord {
                name: "contig_1".to_string(),
                sequence: "ACGTACGTACGTACGT".parse().unwrap(),
            },
            FastaRecord {
                name: "contig_2".to_string(),
                sequence: "TTTTGGGGCCCCAAAA".parse().unwrap(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 8).unwrap();
        let parsed = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fasta_wraps_lines() {
        let records = vec![FastaRecord {
            name: "x".to_string(),
            sequence: "ACGTACGTACGT".parse().unwrap(),
        }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, ">x\nACGT\nACGT\nACGT\n");
    }

    #[test]
    fn single_record_writer_matches_the_batch_writer() {
        let record = FastaRecord {
            name: "contig_0 length=12".to_string(),
            sequence: "ACGTACGTACGT".parse().unwrap(),
        };
        let mut streamed = Vec::new();
        write_fasta_record(&mut streamed, &record.name, &record.sequence, 5).unwrap();
        let mut batch = Vec::new();
        write_fasta(&mut batch, std::slice::from_ref(&record), 5).unwrap();
        assert_eq!(streamed, batch);
        let parsed = read_fasta(Cursor::new(streamed)).unwrap();
        assert_eq!(parsed, vec![record]);
    }

    #[test]
    fn fasta_rejects_sequence_before_header() {
        let err = read_fasta(Cursor::new("ACGT\n>x\n")).unwrap_err();
        assert!(matches!(err, GenomeError::ParseError { line: 1, .. }));
    }

    #[test]
    fn fasta_rejects_invalid_bases() {
        let err = read_fasta(Cursor::new(">x\nACGN\n")).unwrap_err();
        assert!(matches!(err, GenomeError::ParseError { line: 2, .. }));
    }

    #[test]
    fn fasta_accepts_crlf_and_blank_lines() {
        let text = ">first\r\nACGT\r\nTTGG\r\n\r\n>second\r\n\r\nCCCC\r\n";
        let parsed = read_fasta(Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "first");
        assert_eq!(parsed[0].sequence.to_string(), "ACGTTTGG");
        assert_eq!(parsed[1].sequence.to_string(), "CCCC");
    }

    #[test]
    fn fasta_multi_line_sequences_concatenate() {
        let text = ">wrapped\nAC\nGT\nAC\nGT\n";
        let parsed = read_fasta(Cursor::new(text)).unwrap();
        assert_eq!(parsed[0].sequence.to_string(), "ACGTACGT");
    }

    #[test]
    fn fasta_header_without_sequence_is_an_empty_record() {
        let parsed = read_fasta(Cursor::new(">empty\n>full\nACGT\n")).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].sequence.is_empty());
        assert_eq!(parsed[1].sequence.to_string(), "ACGT");
    }

    #[test]
    fn fasta_empty_input_has_no_records() {
        assert!(read_fasta(Cursor::new("")).unwrap().is_empty());
        assert!(read_fasta(Cursor::new("\n\n  \n")).unwrap().is_empty());
    }

    #[test]
    fn fasta_reader_is_incremental() {
        let mut reader = FastaReader::new(Cursor::new(">a\nAC\n>b\nGT\n"));
        assert_eq!(reader.next_record().unwrap().unwrap().name, "a");
        assert_eq!(reader.next_record().unwrap().unwrap().name, "b");
        assert!(reader.next_record().unwrap().is_none());
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn fastq_round_trip_preserves_sequences_and_qualities() {
        let reads = vec![
            SequencingRead::with_qualities("r1", "ACGTACGT".parse().unwrap(), vec![30; 8]),
            SequencingRead::new("r2", "GGGGTTTT".parse().unwrap()),
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        let parsed = read_fastq(Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id(), "r1");
        assert_eq!(parsed[0].sequence(), reads[0].sequence());
        assert_eq!(parsed[0].qualities(), &[30; 8]);
        assert_eq!(parsed[1].sequence(), reads[1].sequence());
        // Reads without qualities are written at constant Q40.
        assert_eq!(parsed[1].qualities(), &[40; 8]);
    }

    #[test]
    fn fastq_rejects_truncated_records() {
        assert!(read_fastq(Cursor::new("@r1\nACGT\n+")).is_err());
        assert!(read_fastq(Cursor::new("@r1\nACGT\nX\nIIII\n")).is_err());
        assert!(read_fastq(Cursor::new("@r1\nACGT\n+\nII\n")).is_err());
        assert!(read_fastq(Cursor::new("@r1\nACGT\n")).is_err());
        assert!(read_fastq(Cursor::new("@r1\n")).is_err());
    }

    #[test]
    fn fastq_rejects_missing_at_header() {
        let err = read_fastq(Cursor::new("r1\nACGT\n+\nIIII\n")).unwrap_err();
        assert!(matches!(err, GenomeError::ParseError { line: 1, .. }));
    }

    #[test]
    fn fastq_accepts_crlf_and_blank_lines_between_records() {
        let text = "@r1\r\nACGT\r\n+\r\nIIII\r\n\r\n@r2\r\nTTGG\r\n+r2\r\nJJJJ\r\n";
        let parsed = read_fastq(Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].sequence().to_string(), "ACGT");
        assert_eq!(parsed[1].id(), "r2");
        assert_eq!(parsed[1].sequence().to_string(), "TTGG");
        assert_eq!(parsed[1].qualities(), &[41; 4]);
    }

    #[test]
    fn fastq_empty_input_has_no_reads() {
        assert!(read_fastq(Cursor::new("")).unwrap().is_empty());
        assert!(read_fastq(Cursor::new("\r\n\n")).unwrap().is_empty());
    }
}
