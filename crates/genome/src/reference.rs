//! Synthetic reference-genome generation.
//!
//! The paper evaluates on the full human genome (383 GB of reads). That dataset is a
//! hardware/data gate for a laptop-scale reproduction, so this module generates
//! synthetic reference genomes whose *structural* properties — GC content, tandem and
//! dispersed repeats — drive the same algorithmic behaviour in the assembler
//! (k-mer multiplicities, de Bruijn graph branching, MacroNode size skew) at a
//! configurable, much smaller scale. See `DESIGN.md` for the substitution rationale.

use crate::base::Base;
use crate::dna::DnaString;
use crate::error::GenomeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of repeat structure to embed in a synthetic genome.
///
/// Repeats are what make real de novo assembly hard: they create high-multiplicity
/// k-mers and branching MacroNodes, which in turn produce the long-tailed MacroNode
/// size distribution the paper reports (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatSpec {
    /// Length of each repeated unit in bases.
    pub unit_length: usize,
    /// Number of copies of the unit scattered across the genome.
    pub copies: usize,
}

impl RepeatSpec {
    /// A repeat family with `copies` copies of a `unit_length`-base unit.
    pub fn new(unit_length: usize, copies: usize) -> Self {
        RepeatSpec {
            unit_length,
            copies,
        }
    }
}

/// A synthetic reference genome.
///
/// Use [`ReferenceGenome::builder`] to configure length, GC bias, repeat content and
/// the RNG seed, then [`ReferenceGenomeBuilder::build`] to generate the sequence.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::ReferenceGenome;
///
/// let genome = ReferenceGenome::builder()
///     .length(50_000)
///     .gc_content(0.41) // human-like GC fraction
///     .seed(42)
///     .build()
///     .unwrap();
/// assert_eq!(genome.len(), 50_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceGenome {
    sequence: DnaString,
    name: String,
}

impl ReferenceGenome {
    /// Starts building a synthetic genome with default parameters.
    pub fn builder() -> ReferenceGenomeBuilder {
        ReferenceGenomeBuilder::default()
    }

    /// Wraps an existing sequence as a reference genome.
    pub fn from_sequence(name: impl Into<String>, sequence: DnaString) -> Self {
        ReferenceGenome {
            sequence,
            name: name.into(),
        }
    }

    /// The genome sequence.
    pub fn sequence(&self) -> &DnaString {
        &self.sequence
    }

    /// The genome name (used as the FASTA header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Builder for [`ReferenceGenome`]. Created by [`ReferenceGenome::builder`].
#[derive(Debug, Clone)]
pub struct ReferenceGenomeBuilder {
    length: usize,
    gc_content: f64,
    seed: u64,
    name: String,
    repeats: Vec<RepeatSpec>,
}

impl Default for ReferenceGenomeBuilder {
    fn default() -> Self {
        ReferenceGenomeBuilder {
            length: 100_000,
            gc_content: 0.41,
            seed: 0xD1CE,
            name: "synthetic".to_string(),
            repeats: vec![RepeatSpec::new(500, 8), RepeatSpec::new(200, 20)],
        }
    }
}

impl ReferenceGenomeBuilder {
    /// Sets the genome length in bases.
    pub fn length(mut self, length: usize) -> Self {
        self.length = length;
        self
    }

    /// Sets the target GC fraction in `[0, 1]`.
    pub fn gc_content(mut self, gc: f64) -> Self {
        self.gc_content = gc;
        self
    }

    /// Sets the RNG seed; the same seed always yields the same genome.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the genome name (FASTA header).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the repeat families embedded in the genome.
    pub fn repeats(mut self, repeats: Vec<RepeatSpec>) -> Self {
        self.repeats = repeats;
        self
    }

    /// Removes all repeat families (a purely random genome).
    pub fn no_repeats(mut self) -> Self {
        self.repeats.clear();
        self
    }

    /// Generates the genome.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidConfig`] if the length is zero, the GC content is
    /// outside `[0, 1]`, or a repeat unit is longer than the genome.
    pub fn build(self) -> Result<ReferenceGenome, GenomeError> {
        if self.length == 0 {
            return Err(GenomeError::InvalidConfig {
                message: "genome length must be positive".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.gc_content) {
            return Err(GenomeError::InvalidConfig {
                message: format!("gc content {} must lie in [0, 1]", self.gc_content),
            });
        }
        for r in &self.repeats {
            if r.unit_length == 0 {
                return Err(GenomeError::InvalidConfig {
                    message: "repeat unit length must be positive".to_string(),
                });
            }
            if r.unit_length > self.length {
                return Err(GenomeError::InvalidConfig {
                    message: format!(
                        "repeat unit of {} bases does not fit in a {}-base genome",
                        r.unit_length, self.length
                    ),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut bases: Vec<Base> = (0..self.length)
            .map(|_| random_base(&mut rng, self.gc_content))
            .collect();

        // Stamp repeat copies at random (non-wrapping) offsets. Copies of the same
        // family share the same unit, creating genuinely repeated k-mer content.
        for family in &self.repeats {
            let unit: Vec<Base> = (0..family.unit_length)
                .map(|_| random_base(&mut rng, self.gc_content))
                .collect();
            for _ in 0..family.copies {
                if self.length <= family.unit_length {
                    continue;
                }
                let start = rng.gen_range(0..=self.length - family.unit_length);
                bases[start..start + family.unit_length].copy_from_slice(&unit);
            }
        }

        let sequence: DnaString = bases.into_iter().collect();
        Ok(ReferenceGenome {
            sequence,
            name: self.name,
        })
    }
}

fn random_base<R: Rng>(rng: &mut R, gc: f64) -> Base {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            Base::G
        } else {
            Base::C
        }
    } else if rng.gen_bool(0.5) {
        Base::A
    } else {
        Base::T
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_genome_of_requested_length() {
        let g = ReferenceGenome::builder()
            .length(12_345)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(g.len(), 12_345);
        assert!(!g.is_empty());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = ReferenceGenome::builder()
            .length(5_000)
            .seed(99)
            .build()
            .unwrap();
        let b = ReferenceGenome::builder()
            .length(5_000)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ReferenceGenome::builder()
            .length(5_000)
            .seed(1)
            .build()
            .unwrap();
        let b = ReferenceGenome::builder()
            .length(5_000)
            .seed(2)
            .build()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn gc_content_tracks_target() {
        let g = ReferenceGenome::builder()
            .length(200_000)
            .gc_content(0.7)
            .no_repeats()
            .seed(3)
            .build()
            .unwrap();
        let gc = g.sequence().gc_content();
        assert!((gc - 0.7).abs() < 0.02, "observed GC {gc}");
    }

    #[test]
    fn repeats_create_duplicated_kmers() {
        use crate::kmer::Kmer;
        use std::collections::HashMap;

        let g = ReferenceGenome::builder()
            .length(20_000)
            .repeats(vec![RepeatSpec::new(400, 10)])
            .seed(5)
            .build()
            .unwrap();
        let mut counts: HashMap<Kmer, u32> = HashMap::new();
        for kmer in Kmer::iter_windows(g.sequence(), 31).unwrap() {
            *counts.entry(kmer).or_insert(0) += 1;
        }
        let repeated = counts.values().filter(|&&c| c > 1).count();
        assert!(
            repeated > 100,
            "expected repeated 31-mers, found {repeated}"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ReferenceGenome::builder().length(0).build().is_err());
        assert!(ReferenceGenome::builder().gc_content(1.5).build().is_err());
        assert!(ReferenceGenome::builder()
            .length(100)
            .repeats(vec![RepeatSpec::new(500, 1)])
            .build()
            .is_err());
        assert!(ReferenceGenome::builder()
            .repeats(vec![RepeatSpec::new(0, 1)])
            .build()
            .is_err());
    }

    #[test]
    fn from_sequence_preserves_name_and_content() {
        let seq: DnaString = "ACGTACGT".parse().unwrap();
        let g = ReferenceGenome::from_sequence("chrTest", seq.clone());
        assert_eq!(g.name(), "chrTest");
        assert_eq!(g.sequence(), &seq);
    }
}
