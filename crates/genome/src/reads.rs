//! Sequencing reads.

use crate::dna::DnaString;

/// A single short sequencing read (Illumina-style, ~100 bp in the paper's setup).
///
/// A read records where it was sampled from and whether it came from the reverse
/// strand, which the tests use to validate the simulator; the assembler itself only
/// looks at [`SequencingRead::sequence`].
///
/// # Example
///
/// ```
/// use nmp_pak_genome::{DnaString, SequencingRead};
///
/// let read = SequencingRead::new("read_0", "ACGTACGT".parse::<DnaString>().unwrap());
/// assert_eq!(read.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencingRead {
    id: String,
    sequence: DnaString,
    /// Per-base Phred quality scores; empty when not simulated.
    qualities: Vec<u8>,
    /// 0-based position on the reference the read was sampled from, if known.
    origin: Option<usize>,
    /// True if the read was sampled from the reverse-complement strand.
    reverse_strand: bool,
}

impl SequencingRead {
    /// Creates a read with the given identifier and sequence.
    pub fn new(id: impl Into<String>, sequence: DnaString) -> Self {
        SequencingRead {
            id: id.into(),
            sequence,
            qualities: Vec::new(),
            origin: None,
            reverse_strand: false,
        }
    }

    /// Creates a read with quality scores but no provenance (e.g. parsed from a
    /// FASTQ file, where the sampling origin is unknown).
    pub fn with_qualities(id: impl Into<String>, sequence: DnaString, qualities: Vec<u8>) -> Self {
        SequencingRead {
            id: id.into(),
            sequence,
            qualities,
            origin: None,
            reverse_strand: false,
        }
    }

    /// Creates a read annotated with simulation provenance.
    pub fn with_provenance(
        id: impl Into<String>,
        sequence: DnaString,
        qualities: Vec<u8>,
        origin: usize,
        reverse_strand: bool,
    ) -> Self {
        SequencingRead {
            id: id.into(),
            sequence,
            qualities,
            origin: Some(origin),
            reverse_strand,
        }
    }

    /// The read identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The read sequence.
    pub fn sequence(&self) -> &DnaString {
        &self.sequence
    }

    /// Per-base Phred quality scores (empty if not available).
    pub fn qualities(&self) -> &[u8] {
        &self.qualities
    }

    /// The 0-based reference position the read was sampled from, if known.
    pub fn origin(&self) -> Option<usize> {
        self.origin
    }

    /// Whether the read was sampled from the reverse strand.
    pub fn is_reverse_strand(&self) -> bool {
        self.reverse_strand
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if the read is empty.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_read_has_no_provenance() {
        let read = SequencingRead::new("r1", "ACGT".parse().unwrap());
        assert_eq!(read.id(), "r1");
        assert_eq!(read.len(), 4);
        assert!(!read.is_empty());
        assert_eq!(read.origin(), None);
        assert!(!read.is_reverse_strand());
        assert!(read.qualities().is_empty());
    }

    #[test]
    fn provenance_is_recorded() {
        let read = SequencingRead::with_provenance(
            "r2",
            "ACGT".parse().unwrap(),
            vec![30, 30, 30, 30],
            1234,
            true,
        );
        assert_eq!(read.origin(), Some(1234));
        assert!(read.is_reverse_strand());
        assert_eq!(read.qualities().len(), 4);
    }
}
