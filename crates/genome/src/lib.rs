//! DNA substrate for the NMP-PaK reproduction.
//!
//! This crate provides everything the assembler needs to know about DNA as data:
//!
//! * [`Base`] — a single nucleotide with 2-bit encoding,
//! * [`DnaString`] — a growable, 2-bit-packed DNA sequence,
//! * [`Kmer`] — a fixed-length (≤32) k-mer packed into a `u64`,
//! * [`ReferenceGenome`] — a synthetic reference-genome generator (substitute for the
//!   human genome dataset used in the paper),
//! * [`ReadSimulator`] — an ART-like short-read simulator (100 bp reads, configurable
//!   coverage and substitution-error rate),
//! * FASTA/FASTQ serialization in [`fasta`],
//! * [`ReadSource`] — chunked, bounded-memory streaming ingestion of reads
//!   (in-memory slices, FASTA/FASTQ files, seeded synthetic generation) in
//!   [`source`].
//!
//! # Example
//!
//! ```
//! use nmp_pak_genome::{ReferenceGenome, ReadSimulator, SequencerConfig};
//!
//! # fn main() -> Result<(), nmp_pak_genome::GenomeError> {
//! let genome = ReferenceGenome::builder()
//!     .length(10_000)
//!     .seed(7)
//!     .build()?;
//! let reads = ReadSimulator::new(SequencerConfig {
//!     read_length: 100,
//!     coverage: 20.0,
//!     substitution_error_rate: 0.005,
//!     seed: 11,
//!     ..SequencerConfig::default()
//! })
//! .simulate(&genome)?;
//! assert!(!reads.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod base;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod kmer;
pub mod reads;
pub mod reference;
pub mod sequencer;
pub mod shard;
pub mod source;

pub use base::Base;
pub use dna::DnaString;
pub use error::GenomeError;
pub use kmer::{Kmer, KmerIter};
pub use reads::SequencingRead;
pub use reference::{ReferenceGenome, ReferenceGenomeBuilder, RepeatSpec};
pub use sequencer::{ReadSimulator, SequencerConfig};
pub use shard::{shard_of_k1mer, shard_of_packed};
pub use source::{
    FastaFastqSource, InMemorySource, OwnedMemorySource, PrefetchSource, ReadChunk, ReadSource,
    SequenceFileFormat, SyntheticSource,
};
