//! Error type for the genome substrate.

use std::fmt;

/// Errors produced while constructing or manipulating DNA data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenomeError {
    /// A character that is not one of `A`, `C`, `G`, `T` (case-insensitive) was encountered.
    InvalidBase {
        /// The offending character.
        character: char,
        /// Byte offset at which it was found, when known.
        position: Option<usize>,
    },
    /// A k-mer length outside the supported `1..=32` range was requested.
    InvalidK {
        /// The requested k.
        k: usize,
    },
    /// A sequence was too short for the requested operation (e.g. extracting k-mers
    /// from a read shorter than k).
    SequenceTooShort {
        /// Length of the sequence that was provided.
        actual: usize,
        /// Minimum length required.
        required: usize,
    },
    /// An invalid configuration value was supplied to a builder.
    InvalidConfig {
        /// Human readable description of the problem.
        message: String,
    },
    /// FASTA/FASTQ text could not be parsed.
    ParseError {
        /// Line number (1-based) at which parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error occurred while reading or writing sequence files.
    Io {
        /// Stringified `std::io::Error`, kept as a string so the error stays `Clone + Eq`.
        message: String,
    },
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::InvalidBase {
                character,
                position,
            } => match position {
                Some(pos) => write!(f, "invalid base '{character}' at position {pos}"),
                None => write!(f, "invalid base '{character}'"),
            },
            GenomeError::InvalidK { k } => {
                write!(f, "k-mer length {k} is outside the supported range 1..=32")
            }
            GenomeError::SequenceTooShort { actual, required } => write!(
                f,
                "sequence of length {actual} is shorter than the required {required}"
            ),
            GenomeError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            GenomeError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GenomeError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GenomeError {}

impl From<std::io::Error> for GenomeError {
    fn from(err: std::io::Error) -> Self {
        GenomeError::Io {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = GenomeError::InvalidBase {
            character: 'N',
            position: Some(12),
        };
        assert_eq!(err.to_string(), "invalid base 'N' at position 12");

        let err = GenomeError::InvalidK { k: 64 };
        assert!(err.to_string().contains("64"));

        let err = GenomeError::SequenceTooShort {
            actual: 10,
            required: 32,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("32"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: GenomeError = io.into();
        assert!(err.to_string().contains("missing file"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GenomeError>();
    }
}
