//! Deterministic k-mer → shard ownership (the owner-computes decomposition).
//!
//! Distributed PaKman partitions the MacroNode graph across MPI ranks by hashing
//! each (k-1)-mer; NMP-PaK maps the same decomposition onto NMP channels: every
//! MacroNode has exactly one *owner* shard, determined by a stable hash of its
//! packed 2-bit code, and all work on a node (invalidation checks, TransferNode
//! application) happens on the owner. The function here is that hash: a pure
//! function of the packed code and the shard count — independent of thread
//! count, batch boundaries, or platform — so shard assignment can never perturb
//! the determinism contract.
//!
//! The hash is the SplitMix64 finalizer: cheap (three multiplies/xors), well
//! mixed even though packed (k-1)-mers occupy only the low `2·(k-1)` bits, and
//! frozen forever (changing it would silently re-partition every recorded
//! workload).

use crate::kmer::Kmer;

/// Mixes a packed 2-bit code into a uniformly distributed 64-bit value
/// (SplitMix64 finalizer). Exposed so layout tooling can reproduce the shard
/// assignment without a [`Kmer`] in hand.
#[inline]
pub fn mix_packed(packed: u64) -> u64 {
    let mut x = packed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard that owns the (k-1)-mer with this packed code, out of
/// `shard_count` shards.
///
/// `shard_count` is clamped to at least 1 (a zero shard count is a
/// configuration error upstream; clamping keeps this hot-path function
/// branch-light and panic-free).
#[inline]
pub fn shard_of_packed(packed: u64, shard_count: usize) -> usize {
    let shards = shard_count.max(1) as u64;
    (mix_packed(packed) % shards) as usize
}

/// The shard that owns `k1mer` (its MacroNode's home), out of `shard_count`
/// shards. See [`shard_of_packed`].
#[inline]
pub fn shard_of_k1mer(k1mer: &Kmer, shard_count: usize) -> usize {
    shard_of_packed(k1mer.packed(), shard_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 32] {
            for packed in 0..4096u64 {
                let a = shard_of_packed(packed, shards);
                let b = shard_of_packed(packed, shards);
                assert_eq!(a, b, "ownership must be a pure function");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        for packed in 0..1024u64 {
            assert_eq!(shard_of_packed(packed, 1), 0);
        }
        // Clamped: a zero shard count degrades to one shard rather than panicking.
        assert_eq!(shard_of_packed(42, 0), 0);
    }

    #[test]
    fn hash_spreads_dense_low_bit_keys() {
        // Packed (k-1)-mers are dense small integers; the mix must still spread
        // them across shards instead of landing consecutive keys on one shard.
        let shards = 8usize;
        let mut counts = vec![0usize; shards];
        let n = 8192u64;
        for packed in 0..n {
            counts[shard_of_packed(packed, shards)] += 1;
        }
        let expect = n as usize / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {s} holds {c} of {n} keys (expected ≈{expect})"
            );
        }
    }

    #[test]
    fn kmer_and_packed_agree() {
        let kmer = Kmer::from_ascii("ACGTACGTAC").unwrap();
        assert_eq!(shard_of_k1mer(&kmer, 7), shard_of_packed(kmer.packed(), 7));
    }
}
