//! Fixed-length k-mers (k ≤ 32) packed into a single `u64`.
//!
//! The paper's pipeline operates on 32-mers extracted with a sliding window
//! (Fig. 2 A/B) and groups k-mers that share a (k-1)-mer into MacroNodes (Fig. 3).
//! This module provides the packed k-mer value type and the sliding-window iterator
//! used by the k-mer counting phase, plus the (k-1)-mer manipulations the
//! MacroNode construction and Iterative Compaction stages rely on:
//! dropping the first or last base and appending prefix/suffix extensions.

use crate::base::Base;
use crate::dna::DnaString;
use crate::error::GenomeError;
use std::cmp::Ordering;
use std::fmt;

/// Maximum supported k-mer length (bases) for the packed representation.
pub const MAX_K: usize = 32;

/// A DNA substring of fixed length `k ≤ 32`, packed 2 bits per base into a `u64`.
///
/// Bases are stored with the *first* base in the most-significant position, so for two
/// k-mers of equal length the numeric order of the packed word equals lexicographic
/// order under the paper's `A < C < T < G` base ordering. This is exactly the ordering
/// the Iterative Compaction invalidation check uses ("invalidate if the current node's
/// (k-1)-mer is the largest", Fig. 4).
///
/// # Example
///
/// ```
/// use nmp_pak_genome::Kmer;
///
/// let k = Kmer::from_ascii("GTCAT").unwrap();
/// assert_eq!(k.k(), 5);
/// assert_eq!(k.prefix_k1().to_string(), "GTCA");
/// assert_eq!(k.suffix_k1().to_string(), "TCAT");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kmer {
    /// Packed bases; first base occupies the highest-order 2-bit group in use.
    packed: u64,
    /// Number of bases (1..=32).
    k: u8,
}

impl Kmer {
    /// Builds a k-mer from the `k` bases starting at `start` in `dna`.
    ///
    /// # Errors
    ///
    /// * [`GenomeError::InvalidK`] if `k` is zero or exceeds [`MAX_K`].
    /// * [`GenomeError::SequenceTooShort`] if the window does not fit in `dna`.
    pub fn from_dna(dna: &DnaString, start: usize, k: usize) -> Result<Kmer, GenomeError> {
        if k == 0 || k > MAX_K {
            return Err(GenomeError::InvalidK { k });
        }
        if start + k > dna.len() {
            return Err(GenomeError::SequenceTooShort {
                actual: dna.len(),
                required: start + k,
            });
        }
        let mut packed = 0u64;
        for i in 0..k {
            packed = (packed << 2) | dna.base(start + i).code() as u64;
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// Builds a k-mer from an iterator of bases; `k` is the number of items consumed.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidK`] if the iterator yields zero or more than
    /// [`MAX_K`] bases.
    pub fn from_bases<I: IntoIterator<Item = Base>>(bases: I) -> Result<Kmer, GenomeError> {
        let mut packed = 0u64;
        let mut k = 0usize;
        for b in bases {
            if k == MAX_K {
                return Err(GenomeError::InvalidK { k: k + 1 });
            }
            packed = (packed << 2) | b.code() as u64;
            k += 1;
        }
        if k == 0 {
            return Err(GenomeError::InvalidK { k: 0 });
        }
        Ok(Kmer { packed, k: k as u8 })
    }

    /// Reconstructs a k-mer from its packed 2-bit representation.
    ///
    /// This is the cheap constructor the hot paths use: counting produces sorted
    /// packed `u64` values and turns them back into [`Kmer`]s without touching
    /// individual bases. Infallible by construction — bits above the `2 * k` in use
    /// are masked off, so any `u64` yields a valid k-mer of length `k`.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `k` lies in `1..=`[`MAX_K`]; release builds clamp
    /// nothing and rely on the caller having validated `k` (every pipeline entry
    /// point does).
    #[inline]
    pub fn from_packed(packed: u64, k: usize) -> Kmer {
        debug_assert!((1..=MAX_K).contains(&k), "k = {k} must lie in 1..={MAX_K}");
        Kmer {
            packed: packed & mask_for(k),
            k: k as u8,
        }
    }

    /// Parses a k-mer from ASCII text.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid characters or unsupported lengths.
    pub fn from_ascii(text: &str) -> Result<Kmer, GenomeError> {
        let dna = DnaString::from_ascii(text)?;
        Kmer::from_dna(&dna, 0, dna.len())
    }

    /// The k-mer length in bases.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The raw packed representation. First base in the highest-order occupied bits.
    #[inline]
    pub fn packed(&self) -> u64 {
        self.packed
    }

    /// Returns the base at position `index` (0 = first / leftmost base).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.k()`.
    #[inline]
    pub fn base(&self, index: usize) -> Base {
        assert!(
            index < self.k(),
            "k-mer index {index} out of range (k={})",
            self.k
        );
        let shift = 2 * (self.k() - 1 - index);
        Base::from_code(((self.packed >> shift) & 0b11) as u8)
    }

    /// The first (leftmost) base.
    #[inline]
    pub fn first_base(&self) -> Base {
        self.base(0)
    }

    /// The last (rightmost) base.
    #[inline]
    pub fn last_base(&self) -> Base {
        self.base(self.k() - 1)
    }

    /// Returns the (k-1)-mer obtained by dropping the **last** base.
    ///
    /// For k-mer `GTTAC` this is `GTTA` — the MacroNode that receives suffix `C`
    /// in Fig. 3(b).
    ///
    /// # Panics
    ///
    /// Panics if `k == 1`.
    pub fn prefix_k1(&self) -> Kmer {
        assert!(self.k > 1, "cannot take (k-1)-mer of a 1-mer");
        Kmer {
            packed: self.packed >> 2,
            k: self.k - 1,
        }
    }

    /// Returns the (k-1)-mer obtained by dropping the **first** base.
    ///
    /// For k-mer `GTTAC` this is `TTAC` — the MacroNode that receives prefix `G`
    /// in Fig. 3(b).
    ///
    /// # Panics
    ///
    /// Panics if `k == 1`.
    pub fn suffix_k1(&self) -> Kmer {
        assert!(self.k > 1, "cannot take (k-1)-mer of a 1-mer");
        let mask = mask_for(self.k as usize - 1);
        Kmer {
            packed: self.packed & mask,
            k: self.k - 1,
        }
    }

    /// Appends `base` at the end, producing a (k+1)-mer.
    ///
    /// This is the "appending genome base pair sequences … implemented using shift and
    /// bitwise OR" operation the PE datapath performs (§4.2). Used to compute a
    /// succeeding neighbour's (k-1)-mer: `suffix_k1()` of the current node appended
    /// with one of its suffix extensions.
    ///
    /// # Panics
    ///
    /// Panics if the result would exceed [`MAX_K`] bases.
    pub fn append(&self, base: Base) -> Kmer {
        assert!(self.k() < MAX_K, "cannot extend a {MAX_K}-mer");
        Kmer {
            packed: (self.packed << 2) | base.code() as u64,
            k: self.k + 1,
        }
    }

    /// Prepends `base` at the front, producing a (k+1)-mer.
    ///
    /// Used to compute a preceding neighbour's (k-1)-mer: one of the current node's
    /// prefix extensions prepended to `prefix_k1()`.
    ///
    /// # Panics
    ///
    /// Panics if the result would exceed [`MAX_K`] bases.
    pub fn prepend(&self, base: Base) -> Kmer {
        assert!(self.k() < MAX_K, "cannot extend a {MAX_K}-mer");
        Kmer {
            packed: ((base.code() as u64) << (2 * self.k())) | self.packed,
            k: self.k + 1,
        }
    }

    /// Slides the window right: drops the first base and appends `base`, keeping `k` fixed.
    pub fn roll(&self, base: Base) -> Kmer {
        let mask = mask_for(self.k as usize);
        Kmer {
            packed: ((self.packed << 2) | base.code() as u64) & mask,
            k: self.k,
        }
    }

    /// The reverse complement of this k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        let mut packed = 0u64;
        for i in (0..self.k()).rev() {
            packed = (packed << 2) | self.base(i).complement().code() as u64;
        }
        Kmer { packed, k: self.k }
    }

    /// The canonical form: the lexicographically smaller of this k-mer and its reverse
    /// complement.
    pub fn canonical(&self) -> Kmer {
        let rc = self.reverse_complement();
        if rc < *self {
            rc
        } else {
            *self
        }
    }

    /// Converts to an owned [`DnaString`].
    pub fn to_dna_string(&self) -> DnaString {
        (0..self.k()).map(|i| self.base(i)).collect()
    }

    /// Iterates over all k-mers of `dna` with a sliding window of size `k`.
    ///
    /// # Errors
    ///
    /// * [`GenomeError::InvalidK`] for unsupported `k`.
    /// * [`GenomeError::SequenceTooShort`] if `dna` is shorter than `k`.
    pub fn iter_windows(dna: &DnaString, k: usize) -> Result<KmerIter<'_>, GenomeError> {
        if k == 0 || k > MAX_K {
            return Err(GenomeError::InvalidK { k });
        }
        if dna.len() < k {
            return Err(GenomeError::SequenceTooShort {
                actual: dna.len(),
                required: k,
            });
        }
        Ok(KmerIter {
            dna,
            k,
            next_end: 0,
            current: None,
        })
    }
}

#[inline]
fn mask_for(k: usize) -> u64 {
    if k >= 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

impl PartialOrd for Kmer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Kmer {
    /// Lexicographic comparison under `A < C < T < G`; k-mers of different lengths are
    /// compared base-by-base with the shorter one ordered first on a tie.
    fn cmp(&self, other: &Self) -> Ordering {
        if self.k == other.k {
            return self.packed.cmp(&other.packed);
        }
        let min_k = self.k.min(other.k) as usize;
        for i in 0..min_k {
            match self.base(i).cmp(&other.base(i)) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.k.cmp(&other.k)
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", self.base(i).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kmer(\"{self}\")")
    }
}

/// Sliding-window iterator over the k-mers of a [`DnaString`], produced by
/// [`Kmer::iter_windows`].
#[derive(Debug, Clone)]
pub struct KmerIter<'a> {
    dna: &'a DnaString,
    k: usize,
    /// Index one past the end of the next window to produce.
    next_end: usize,
    current: Option<Kmer>,
}

impl Iterator for KmerIter<'_> {
    type Item = Kmer;

    fn next(&mut self) -> Option<Kmer> {
        match self.current {
            None => {
                // First window.
                let first = Kmer::from_dna(self.dna, 0, self.k).ok()?;
                self.current = Some(first);
                self.next_end = self.k;
                Some(first)
            }
            Some(prev) => {
                if self.next_end >= self.dna.len() {
                    return None;
                }
                let rolled = prev.roll(self.dna.base(self.next_end));
                self.next_end += 1;
                self.current = Some(rolled);
                Some(rolled)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self.dna.len() + 1 - self.k;
        let produced = if self.current.is_none() {
            0
        } else {
            self.next_end + 1 - self.k
        };
        let remaining = total - produced;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for KmerIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let k = Kmer::from_ascii("ACGTACGTACGTACGTACGTACGTACGTACGT").unwrap();
        assert_eq!(k.k(), 32);
        assert_eq!(k.to_string(), "ACGTACGTACGTACGTACGTACGTACGTACGT");
    }

    #[test]
    fn rejects_unsupported_k() {
        assert!(matches!(
            Kmer::from_ascii(""),
            Err(GenomeError::InvalidK { k: 0 })
        ));
        let too_long = "A".repeat(33);
        assert!(Kmer::from_ascii(&too_long).is_err());
    }

    #[test]
    fn prefix_and_suffix_k1_match_paper_example() {
        // Fig. 3(b): k-mer GTTAC splits into (k-1)-mers GTTA (keeps suffix C)
        // and TTAC (keeps prefix G).
        let k = Kmer::from_ascii("GTTAC").unwrap();
        assert_eq!(k.prefix_k1().to_string(), "GTTA");
        assert_eq!(k.suffix_k1().to_string(), "TTAC");
        assert_eq!(k.first_base(), Base::G);
        assert_eq!(k.last_base(), Base::C);
    }

    #[test]
    fn append_and_prepend_reconstruct_kmer() {
        let k = Kmer::from_ascii("GTTAC").unwrap();
        let reconstructed_from_prefix = k.prefix_k1().append(Base::C);
        let reconstructed_from_suffix = k.suffix_k1().prepend(Base::G);
        assert_eq!(reconstructed_from_prefix, k);
        assert_eq!(reconstructed_from_suffix, k);
    }

    #[test]
    fn roll_slides_the_window() {
        let dna: DnaString = "ACGTT".parse().unwrap();
        let first = Kmer::from_dna(&dna, 0, 4).unwrap();
        assert_eq!(first.to_string(), "ACGT");
        let second = first.roll(Base::T);
        assert_eq!(second.to_string(), "CGTT");
        assert_eq!(second, Kmer::from_dna(&dna, 1, 4).unwrap());
    }

    #[test]
    fn ordering_follows_paper_base_order() {
        // Fig. 4: A=0, C=1, T=2, G=3, so "AGTC" < "CAGT" < "TCAG" < "GTCA"? Let's use
        // exactly the paper's comparison: GTCA (3210) is the largest among
        // {AGTC=0321, CAGT=1032, TCAT=2102, TCAG=2103, GTCA=3210}.
        let gtca = Kmer::from_ascii("GTCA").unwrap();
        let others = ["AGTC", "CAGT", "TCAT", "TCAG"];
        for o in others {
            let other = Kmer::from_ascii(o).unwrap();
            assert!(gtca > other, "GTCA should be larger than {o}");
        }
    }

    #[test]
    fn ordering_across_lengths_is_prefix_based() {
        let a = Kmer::from_ascii("ACG").unwrap();
        let b = Kmer::from_ascii("ACGT").unwrap();
        assert!(a < b);
        let c = Kmer::from_ascii("AT").unwrap();
        assert!(c > b);
    }

    #[test]
    fn reverse_complement_and_canonical() {
        let k = Kmer::from_ascii("AACGT").unwrap();
        assert_eq!(k.reverse_complement().to_string(), "ACGTT");
        assert_eq!(k.reverse_complement().reverse_complement(), k);
        let canon = k.canonical();
        assert!(canon == k || canon == k.reverse_complement());
        assert!(canon <= k && canon <= k.reverse_complement());
    }

    #[test]
    fn window_iterator_produces_all_kmers() {
        let dna: DnaString = "ACGTACG".parse().unwrap();
        let kmers: Vec<String> = Kmer::iter_windows(&dna, 4)
            .unwrap()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(kmers, vec!["ACGT", "CGTA", "GTAC", "TACG"]);
    }

    #[test]
    fn window_iterator_len_is_exact() {
        let dna: DnaString = "ACGTACGTAC".parse().unwrap();
        let iter = Kmer::iter_windows(&dna, 4).unwrap();
        assert_eq!(iter.len(), 7);
        assert_eq!(iter.count(), 7);
    }

    #[test]
    fn window_iterator_rejects_short_sequences() {
        let dna: DnaString = "ACG".parse().unwrap();
        assert!(Kmer::iter_windows(&dna, 4).is_err());
    }

    #[test]
    fn base_accessor_positions() {
        let k = Kmer::from_ascii("GATC").unwrap();
        assert_eq!(k.base(0), Base::G);
        assert_eq!(k.base(1), Base::A);
        assert_eq!(k.base(2), Base::T);
        assert_eq!(k.base(3), Base::C);
    }

    #[test]
    fn from_packed_round_trips() {
        for text in ["A", "GTTAC", "ACGTACGTACGTACGTACGTACGTACGTACGT"] {
            let k = Kmer::from_ascii(text).unwrap();
            assert_eq!(Kmer::from_packed(k.packed(), k.k()), k);
        }
    }

    #[test]
    fn from_packed_masks_unused_high_bits() {
        // Garbage above the 2k bits in use must not affect equality or ordering.
        let k = Kmer::from_ascii("GTTAC").unwrap();
        let noisy = Kmer::from_packed(k.packed() | (0xDEAD << (2 * k.k())), k.k());
        assert_eq!(noisy, k);
        assert_eq!(noisy.to_string(), "GTTAC");
    }

    #[test]
    fn from_bases_matches_from_ascii() {
        let text = "GGTTACCA";
        let via_ascii = Kmer::from_ascii(text).unwrap();
        let via_bases =
            Kmer::from_bases(text.chars().map(|c| Base::from_char(c).unwrap())).unwrap();
        assert_eq!(via_ascii, via_bases);
    }
}
