//! Streaming read ingestion: the [`ReadSource`] trait and its implementations.
//!
//! NMP-PaK's batched process flow (§4.4 of the paper) exists because real read
//! sets are far larger than memory. A [`ReadSource`] is the ingestion side of
//! that contract: a chunked, bounded-memory pull API that hands the assembler
//! one [`ReadChunk`] at a time, so downstream stages never require the full
//! read set to be materialized.
//!
//! Three implementations cover the common cases:
//!
//! * [`InMemorySource`] — wraps an existing `&[SequencingRead]` slice and hands
//!   out zero-copy borrowed chunks (the compatibility path for the old
//!   slice-based APIs);
//! * [`FastaFastqSource`] — streams records off a [`BufRead`] (a FASTA or
//!   FASTQ file) via the incremental parsers in [`crate::fasta`], holding at
//!   most one chunk of reads in memory;
//! * [`SyntheticSource`] — generates simulated reads chunk by chunk from a
//!   seeded RNG, producing exactly the same read stream as
//!   [`crate::ReadSimulator`] with the same configuration.
//!
//! The trait is parameterized by the lifetime `'src` of the data a chunk may
//! borrow: sources that own or generate their reads implement
//! `ReadSource<'static>` and return owned chunks, while [`InMemorySource`]
//! borrows from the wrapped slice. Chunks outlive the `&mut self` borrow of
//! [`ReadSource::next_chunk`], which is what lets a pipelined scheduler keep
//! several chunks in flight on worker threads while pulling the next one.
//!
//! [`PrefetchSource`] wraps any owning source with a dedicated parse/generate
//! worker thread behind a bounded two-slot channel, double-buffering ingestion
//! so disk latency overlaps the consumer's compute even in a sequential
//! schedule.

use crate::error::GenomeError;
use crate::fasta::{FastaReader, FastqReader};
use crate::reads::SequencingRead;
use crate::reference::ReferenceGenome;
use crate::sequencer::{sample_read, SequencerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::ops::Range;
use std::path::Path;

/// Default number of reads per chunk for owning sources (~100 bp short reads →
/// a few hundred KB of in-flight data per chunk).
pub const DEFAULT_CHUNK_READS: usize = 4_096;

/// One chunk of reads pulled from a [`ReadSource`] — either borrowed from the
/// source's backing slice (zero-copy) or owned by the chunk.
#[derive(Debug, Clone)]
pub enum ReadChunk<'a> {
    /// Reads borrowed from data that outlives the source (e.g. the slice an
    /// [`InMemorySource`] wraps).
    Borrowed(&'a [SequencingRead]),
    /// Reads owned by the chunk (streamed off disk or generated).
    Owned(Vec<SequencingRead>),
}

impl<'a> ReadChunk<'a> {
    /// The reads in this chunk.
    pub fn reads(&self) -> &[SequencingRead] {
        match self {
            ReadChunk::Borrowed(reads) => reads,
            ReadChunk::Owned(reads) => reads,
        }
    }

    /// Number of reads in the chunk.
    pub fn len(&self) -> usize {
        self.reads().len()
    }

    /// `true` if the chunk holds no reads.
    pub fn is_empty(&self) -> bool {
        self.reads().is_empty()
    }

    /// Consumes the chunk, returning its reads — a move for owned chunks, a
    /// copy only for borrowed ones (materializing consumers use this so the
    /// owned streaming path never re-allocates read data).
    pub fn into_reads(self) -> Vec<SequencingRead> {
        match self {
            ReadChunk::Borrowed(reads) => reads.to_vec(),
            ReadChunk::Owned(reads) => reads,
        }
    }

    /// Total bases across the chunk's reads.
    pub fn total_bases(&self) -> u64 {
        self.reads().iter().map(|r| r.len() as u64).sum()
    }

    /// Approximate in-memory footprint of the chunk's reads in bytes (2-bit
    /// packed sequence + qualities + id + per-read bookkeeping). This is the
    /// quantity the pipelined batch scheduler budgets with
    /// `max_inflight_bytes`; it is an estimate, not an allocator measurement.
    pub fn approx_read_bytes(&self) -> u64 {
        self.reads()
            .iter()
            .map(|r| {
                (r.len().div_ceil(4) + r.qualities().len() + r.id().len()) as u64
                    + APPROX_READ_OVERHEAD_BYTES
            })
            .sum()
    }
}

/// Fixed per-read bookkeeping charged by [`ReadChunk::approx_read_bytes`]
/// (struct fields plus allocator overhead).
const APPROX_READ_OVERHEAD_BYTES: u64 = 64;

impl std::ops::Deref for ReadChunk<'_> {
    type Target = [SequencingRead];

    fn deref(&self) -> &[SequencingRead] {
        self.reads()
    }
}

impl From<Vec<SequencingRead>> for ReadChunk<'static> {
    fn from(reads: Vec<SequencingRead>) -> Self {
        ReadChunk::Owned(reads)
    }
}

impl<'a> From<&'a [SequencingRead]> for ReadChunk<'a> {
    fn from(reads: &'a [SequencingRead]) -> Self {
        ReadChunk::Borrowed(reads)
    }
}

/// A chunked, bounded-memory producer of sequencing reads.
///
/// `'src` is the lifetime of the data chunks may borrow; owning sources use
/// `'static`. Implementations must be deterministic: pulling the chunks of the
/// same source configuration twice yields the same read stream, which is what
/// makes batch schedules over a source bit-reproducible.
pub trait ReadSource<'src> {
    /// Pulls the next chunk of reads, or `Ok(None)` once the source is
    /// exhausted. Chunks are non-overlapping and arrive in read order;
    /// implementations should not return empty chunks, and consumers skip any
    /// that do appear.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError`] for I/O or parse failures in the underlying
    /// medium.
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'src>>, GenomeError>;

    /// Bounds on the number of reads remaining: `(lower, Some(upper))` when
    /// known exactly, `(lower, None)` when the total is unknown (e.g. an
    /// unparsed file).
    fn reads_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Upper bound on the total bases remaining, when known.
    fn bases_hint(&self) -> Option<u64> {
        None
    }
}

/// Zero-copy [`ReadSource`] over an in-memory slice.
///
/// The chunk boundaries are explicit index ranges, so a batch planner can map
/// its plan directly onto the source (one range per batch).
#[derive(Debug, Clone)]
pub struct InMemorySource<'r> {
    reads: &'r [SequencingRead],
    ranges: Vec<Range<usize>>,
    next: usize,
}

impl<'r> InMemorySource<'r> {
    /// A source yielding the whole slice as a single chunk.
    pub fn new(reads: &'r [SequencingRead]) -> InMemorySource<'r> {
        InMemorySource {
            ranges: if reads.is_empty() {
                Vec::new()
            } else {
                std::iter::once(0..reads.len()).collect()
            },
            reads,
            next: 0,
        }
    }

    /// A source yielding chunks of at most `chunk_reads` reads.
    pub fn chunked(reads: &'r [SequencingRead], chunk_reads: usize) -> InMemorySource<'r> {
        let chunk_reads = chunk_reads.max(1);
        let ranges = (0..reads.len())
            .step_by(chunk_reads)
            .map(|start| start..(start + chunk_reads).min(reads.len()))
            .collect();
        InMemorySource {
            reads,
            ranges,
            next: 0,
        }
    }

    /// A source yielding exactly the given index ranges, one chunk per range
    /// (the hook a batch planner uses to control batch boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidConfig`] if any range is inverted or
    /// exceeds the slice.
    pub fn with_ranges(
        reads: &'r [SequencingRead],
        ranges: Vec<Range<usize>>,
    ) -> Result<InMemorySource<'r>, GenomeError> {
        if let Some(range) = ranges.iter().find(|r| r.start > r.end) {
            return Err(GenomeError::InvalidConfig {
                message: format!("chunk range {range:?} is inverted (start > end)"),
            });
        }
        if let Some(range) = ranges.iter().find(|r| r.end > reads.len()) {
            return Err(GenomeError::InvalidConfig {
                message: format!(
                    "chunk range {range:?} exceeds the read slice of length {}",
                    reads.len()
                ),
            });
        }
        Ok(InMemorySource {
            reads,
            ranges,
            next: 0,
        })
    }
}

impl<'r> ReadSource<'r> for InMemorySource<'r> {
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'r>>, GenomeError> {
        let Some(range) = self.ranges.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        Ok(Some(ReadChunk::Borrowed(&self.reads[range.clone()])))
    }

    fn reads_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.ranges[self.next..].iter().map(Range::len).sum();
        (remaining, Some(remaining))
    }

    fn bases_hint(&self) -> Option<u64> {
        Some(
            self.ranges[self.next..]
                .iter()
                .flat_map(|range| &self.reads[range.clone()])
                .map(|r| r.len() as u64)
                .sum(),
        )
    }
}

/// Owning [`ReadSource`] over a materialized read set.
///
/// The owning counterpart of [`InMemorySource`], for callers that hand the
/// reads themselves to a consumer with no slice to borrow from (e.g. a job
/// server accepting reads in a submitted job spec). Implements
/// `ReadSource<'static>` and yields owned chunks; the concatenated stream is
/// exactly the wrapped `Vec`, in order.
#[derive(Debug, Clone)]
pub struct OwnedMemorySource {
    reads: std::collections::VecDeque<SequencingRead>,
    chunk_reads: usize,
}

impl OwnedMemorySource {
    /// A source yielding chunks of at most [`DEFAULT_CHUNK_READS`] reads.
    pub fn new(reads: Vec<SequencingRead>) -> OwnedMemorySource {
        OwnedMemorySource::with_chunk_reads(reads, DEFAULT_CHUNK_READS)
    }

    /// A source yielding chunks of at most `chunk_reads` reads (clamped to at
    /// least 1).
    pub fn with_chunk_reads(reads: Vec<SequencingRead>, chunk_reads: usize) -> OwnedMemorySource {
        OwnedMemorySource {
            reads: reads.into(),
            chunk_reads: chunk_reads.max(1),
        }
    }
}

impl ReadSource<'static> for OwnedMemorySource {
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'static>>, GenomeError> {
        if self.reads.is_empty() {
            return Ok(None);
        }
        let take = self.chunk_reads.min(self.reads.len());
        Ok(Some(ReadChunk::Owned(self.reads.drain(..take).collect())))
    }

    fn reads_hint(&self) -> (usize, Option<usize>) {
        (self.reads.len(), Some(self.reads.len()))
    }

    fn bases_hint(&self) -> Option<u64> {
        Some(self.reads.iter().map(|r| r.len() as u64).sum())
    }
}

/// The on-disk format a [`FastaFastqSource`] is parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceFileFormat {
    /// `>`-headed records, sequences wrapped over multiple lines.
    Fasta,
    /// Four-line `@`-headed records with Phred+33 qualities.
    Fastq,
}

#[derive(Debug)]
enum RecordStream<R: BufRead> {
    Fasta(FastaReader<R>),
    Fastq(FastqReader<R>),
}

/// Buffered streaming [`ReadSource`] over FASTA or FASTQ text.
///
/// Records are parsed incrementally — the file is never materialized — and
/// grouped into owned chunks of [`FastaFastqSource::chunk_reads`] reads, so the
/// peak ingestion memory is one chunk regardless of file size. FASTA records
/// become reads named after their header; FASTQ qualities are kept.
#[derive(Debug)]
pub struct FastaFastqSource<R: BufRead> {
    stream: RecordStream<R>,
    chunk_reads: usize,
    /// Size of the backing file in bytes, when known (set by
    /// [`FastaFastqSource::open`] from file metadata, or explicitly via
    /// [`FastaFastqSource::with_size_hint`]). Feeds [`ReadSource::bases_hint`]
    /// so byte-budget admission works for streamed files.
    byte_size: Option<u64>,
}

impl<R: BufRead> FastaFastqSource<R> {
    /// A source parsing `reader` as FASTA.
    pub fn fasta(reader: R) -> FastaFastqSource<R> {
        FastaFastqSource {
            stream: RecordStream::Fasta(FastaReader::new(reader)),
            chunk_reads: DEFAULT_CHUNK_READS,
            byte_size: None,
        }
    }

    /// A source parsing `reader` as FASTQ.
    pub fn fastq(reader: R) -> FastaFastqSource<R> {
        FastaFastqSource {
            stream: RecordStream::Fastq(FastqReader::new(reader)),
            chunk_reads: DEFAULT_CHUNK_READS,
            byte_size: None,
        }
    }

    /// A source that sniffs the format from the first significant byte of
    /// `reader` (`>` → FASTA, anything else → FASTQ).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the probe.
    pub fn sniff(mut reader: R) -> Result<FastaFastqSource<R>, GenomeError> {
        let buffered = reader.fill_buf()?;
        let format = match buffered.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'>') => SequenceFileFormat::Fasta,
            _ => SequenceFileFormat::Fastq,
        };
        Ok(match format {
            SequenceFileFormat::Fasta => FastaFastqSource::fasta(reader),
            SequenceFileFormat::Fastq => FastaFastqSource::fastq(reader),
        })
    }

    /// Sets the number of reads per chunk (the ingestion memory granule).
    pub fn with_chunk_reads(mut self, chunk_reads: usize) -> FastaFastqSource<R> {
        self.chunk_reads = chunk_reads.max(1);
        self
    }

    /// Declares the byte size of the backing data, enabling
    /// [`ReadSource::bases_hint`] for readers that are not files (network
    /// streams, compressed wrappers). [`FastaFastqSource::open`] sets this
    /// automatically from file metadata.
    pub fn with_size_hint(mut self, byte_size: u64) -> FastaFastqSource<R> {
        self.byte_size = Some(byte_size);
        self
    }

    /// The format this source is parsing.
    pub fn format(&self) -> SequenceFileFormat {
        match self.stream {
            RecordStream::Fasta(_) => SequenceFileFormat::Fasta,
            RecordStream::Fastq(_) => SequenceFileFormat::Fastq,
        }
    }

    fn next_read(&mut self) -> Result<Option<SequencingRead>, GenomeError> {
        match &mut self.stream {
            RecordStream::Fasta(reader) => Ok(reader
                .next_record()?
                .map(|record| SequencingRead::new(record.name, record.sequence))),
            RecordStream::Fastq(reader) => reader.next_record(),
        }
    }
}

impl FastaFastqSource<BufReader<File>> {
    /// Opens a FASTA/FASTQ file, sniffing the format from its content. The
    /// file's metadata size becomes the source's size hint, so byte-budget
    /// admission ([`ReadSource::bases_hint`]) works for streamed files.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or probing the file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, GenomeError> {
        let file = File::open(path)?;
        let byte_size = file.metadata().map(|m| m.len()).ok();
        let mut source = FastaFastqSource::sniff(BufReader::new(file))?;
        source.byte_size = byte_size;
        Ok(source)
    }
}

impl<R: BufRead> ReadSource<'static> for FastaFastqSource<R> {
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'static>>, GenomeError> {
        let mut reads = Vec::with_capacity(self.chunk_reads);
        while reads.len() < self.chunk_reads {
            match self.next_read()? {
                Some(read) => reads.push(read),
                None => break,
            }
        }
        Ok(if reads.is_empty() {
            None
        } else {
            Some(ReadChunk::Owned(reads))
        })
    }

    fn bases_hint(&self) -> Option<u64> {
        // An upper bound from the file size: FASTA bases are at most the byte
        // count (headers and newlines only subtract), and every FASTQ base
        // carries at least one quality byte, halving the bound.
        self.byte_size.map(|bytes| match self.format() {
            SequenceFileFormat::Fasta => bytes,
            SequenceFileFormat::Fastq => bytes / 2,
        })
    }
}

/// Double-buffered prefetching adapter over any owning [`ReadSource`].
///
/// Parsing/generation moves onto a dedicated worker thread that pushes chunks
/// through a bounded channel ([`PrefetchSource::DEFAULT_DEPTH`] slots, the
/// classic double buffer): while the consumer computes on chunk *i*, the worker
/// is already parsing chunk *i + 1*, so disk latency hides under stage B even
/// in a `Sequential` batch schedule. The chunk stream — order, boundaries,
/// contents — is exactly the inner source's, so wrapping a source cannot
/// change any assembly bit.
///
/// Dropping the source mid-stream shuts the worker down cleanly: the stop flag
/// is raised, the queued chunks are drained (unblocking a worker parked on a
/// full channel), and the worker is joined — the ingestion thread can never
/// outlive the source, even when a consumer (e.g. a cancelled assembly job)
/// abandons it mid-chunk. A worker-side I/O error that the consumer never
/// pulled is not lost on shutdown: [`PrefetchSource::close`] surfaces it.
#[derive(Debug)]
pub struct PrefetchSource {
    /// `None` once the stream ended or the source shut down.
    rx: Option<std::sync::mpsc::Receiver<Result<ReadChunk<'static>, GenomeError>>>,
    worker: Option<std::thread::JoinHandle<()>>,
    /// Raised to tell the worker to stop between chunks; shutdown then drains
    /// the channel so a worker parked on a full buffer can finish its send and
    /// observe the flag.
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    /// An error the worker could not deliver through the channel (the consumer
    /// was already gone). Recovered by [`PrefetchSource::close`].
    pending_error: std::sync::Arc<std::sync::Mutex<Option<GenomeError>>>,
    /// Hints captured from the inner source at construction and counted down
    /// as chunks are consumed (the worker owns the source afterwards).
    reads_lower: usize,
    reads_upper: Option<usize>,
    bases_upper: Option<u64>,
}

impl PrefetchSource {
    /// Default channel depth: two slots — one chunk being consumed, one being
    /// parsed ahead.
    pub const DEFAULT_DEPTH: usize = 2;

    /// Wraps `source` with a prefetching worker at the default depth.
    pub fn new<S>(source: S) -> PrefetchSource
    where
        S: ReadSource<'static> + Send + 'static,
    {
        PrefetchSource::with_depth(source, Self::DEFAULT_DEPTH)
    }

    /// Wraps `source` with a prefetching worker and a `depth`-slot channel
    /// (clamped to at least 1).
    pub fn with_depth<S>(mut source: S, depth: usize) -> PrefetchSource
    where
        S: ReadSource<'static> + Send + 'static,
    {
        let (reads_lower, reads_upper) = source.reads_hint();
        let bases_upper = source.bases_hint();
        let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pending_error: std::sync::Arc<std::sync::Mutex<Option<GenomeError>>> =
            std::sync::Arc::new(std::sync::Mutex::new(None));
        let worker_stop = std::sync::Arc::clone(&stop);
        let worker_pending = std::sync::Arc::clone(&pending_error);
        let worker = std::thread::spawn(move || {
            while !worker_stop.load(std::sync::atomic::Ordering::Acquire) {
                match source.next_chunk() {
                    Ok(Some(chunk)) => {
                        if tx.send(Ok(chunk)).is_err() {
                            // Receiver dropped: the consumer is done with us.
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(err) => {
                        // The consumer may already be gone; park the error
                        // where `close` can still recover it.
                        if let Err(std::sync::mpsc::SendError(Err(err))) = tx.send(Err(err)) {
                            *worker_pending.lock().expect("pending-error lock poisoned") =
                                Some(err);
                        }
                        break;
                    }
                }
            }
        });
        PrefetchSource {
            rx: Some(rx),
            worker: Some(worker),
            stop,
            pending_error,
            reads_lower,
            reads_upper,
            bases_upper,
        }
    }

    /// Shuts the source down and surfaces any I/O or parse error the worker
    /// hit that [`ReadSource::next_chunk`] was never called to observe — e.g.
    /// when a job is cancelled mid-ingestion and stops pulling chunks. Joins
    /// the worker thread in all cases.
    ///
    /// # Errors
    ///
    /// Returns the worker's pending [`GenomeError`], if one was outstanding.
    pub fn close(mut self) -> Result<(), GenomeError> {
        match self.shutdown() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Stops and joins the worker, returning any undelivered error: the stop
    /// flag is raised first, then the queued chunks are drained (a worker
    /// parked on the full channel completes its send, re-checks the flag, and
    /// exits), then the worker is joined and the pending-error slot checked.
    fn shutdown(&mut self) -> Option<GenomeError> {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        let mut queued_error = None;
        if let Some(rx) = self.rx.take() {
            // Iteration ends when the worker drops its sender.
            for message in rx.iter() {
                if let Err(err) = message {
                    queued_error.get_or_insert(err);
                }
            }
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        queued_error.or_else(|| {
            self.pending_error
                .lock()
                .expect("pending-error lock poisoned")
                .take()
        })
    }
}

impl ReadSource<'static> for PrefetchSource {
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'static>>, GenomeError> {
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(chunk)) => {
                self.reads_lower = self.reads_lower.saturating_sub(chunk.len());
                if let Some(upper) = &mut self.reads_upper {
                    *upper = upper.saturating_sub(chunk.len());
                }
                if let Some(bases) = &mut self.bases_upper {
                    *bases = bases.saturating_sub(chunk.total_bases());
                }
                Ok(Some(chunk))
            }
            Ok(Err(err)) => {
                let _ = self.shutdown();
                Err(err)
            }
            // Sender dropped: the inner source is exhausted (or the worker
            // stashed an undeliverable error, which shutdown recovers).
            Err(std::sync::mpsc::RecvError) => match self.shutdown() {
                Some(err) => Err(err),
                None => Ok(None),
            },
        }
    }

    fn reads_hint(&self) -> (usize, Option<usize>) {
        (self.reads_lower, self.reads_upper)
    }

    fn bases_hint(&self) -> Option<u64> {
        self.bases_upper
    }
}

impl Drop for PrefetchSource {
    fn drop(&mut self) {
        // Joins the worker even when dropped mid-chunk; an undelivered error is
        // recovered but has nowhere to go from a destructor — consumers that
        // must observe it call [`PrefetchSource::close`] instead of dropping.
        let _ = self.shutdown();
    }
}

/// Seeded streaming generator of simulated reads (for benchmarks and scale
/// tests that want multi-GB workloads without materializing them).
///
/// Produces exactly the read stream of [`crate::ReadSimulator::simulate`] with
/// the same genome and configuration, chunk by chunk: concatenating every chunk
/// equals the simulator's output bit for bit.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    genome: ReferenceGenome,
    config: SequencerConfig,
    rng: StdRng,
    total_reads: usize,
    next_index: usize,
    chunk_reads: usize,
}

impl SyntheticSource {
    /// Creates a source generating the configured coverage over `genome`.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidConfig`] for an invalid sequencer
    /// configuration and [`GenomeError::SequenceTooShort`] if the genome is
    /// shorter than one read.
    pub fn new(genome: ReferenceGenome, config: SequencerConfig) -> Result<Self, GenomeError> {
        config.validate()?;
        if genome.len() < config.read_length {
            return Err(GenomeError::SequenceTooShort {
                actual: genome.len(),
                required: config.read_length,
            });
        }
        // The simulator's formula, so the two agree by construction.
        let total_reads = crate::sequencer::ReadSimulator::new(config).read_count_for(genome.len());
        Ok(SyntheticSource {
            rng: StdRng::seed_from_u64(config.seed),
            genome,
            config,
            total_reads,
            next_index: 0,
            chunk_reads: DEFAULT_CHUNK_READS,
        })
    }

    /// Sets the number of reads generated per chunk.
    pub fn with_chunk_reads(mut self, chunk_reads: usize) -> SyntheticSource {
        self.chunk_reads = chunk_reads.max(1);
        self
    }

    /// Total number of reads this source will generate.
    pub fn total_reads(&self) -> usize {
        self.total_reads
    }
}

impl ReadSource<'static> for SyntheticSource {
    fn next_chunk(&mut self) -> Result<Option<ReadChunk<'static>>, GenomeError> {
        if self.next_index >= self.total_reads {
            return Ok(None);
        }
        let count = self.chunk_reads.min(self.total_reads - self.next_index);
        let mut reads = Vec::with_capacity(count);
        for _ in 0..count {
            reads.push(sample_read(
                &self.config,
                &self.genome,
                &mut self.rng,
                self.next_index,
            ));
            self.next_index += 1;
        }
        Ok(Some(ReadChunk::Owned(reads)))
    }

    fn reads_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total_reads - self.next_index;
        (remaining, Some(remaining))
    }

    fn bases_hint(&self) -> Option<u64> {
        Some(((self.total_reads - self.next_index) * self.config.read_length) as u64)
    }
}

/// Drains a source into a single vector (the materializing convenience path;
/// bounded-memory consumers should pull chunks instead).
///
/// # Errors
///
/// Propagates the source's errors.
pub fn collect_reads<'s>(
    mut source: impl ReadSource<'s>,
) -> Result<Vec<SequencingRead>, GenomeError> {
    let mut reads = Vec::with_capacity(source.reads_hint().0);
    while let Some(chunk) = source.next_chunk()? {
        // Move owned chunks; only borrowed ones are copied.
        reads.append(&mut chunk.into_reads());
    }
    Ok(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::write_fastq;
    use crate::sequencer::ReadSimulator;
    use std::io::Cursor;

    fn sample_reads(n: usize) -> Vec<SequencingRead> {
        (0..n)
            .map(|i| SequencingRead::new(format!("r{i}"), "ACGTACGTACGT".parse().unwrap()))
            .collect()
    }

    #[test]
    fn in_memory_source_yields_the_whole_slice_once() {
        let reads = sample_reads(5);
        let mut source = InMemorySource::new(&reads);
        assert_eq!(source.reads_hint(), (5, Some(5)));
        assert_eq!(source.bases_hint(), Some(60));
        let chunk = source.next_chunk().unwrap().unwrap();
        assert_eq!(chunk.len(), 5);
        assert!(matches!(chunk, ReadChunk::Borrowed(_)));
        assert!(source.next_chunk().unwrap().is_none());
        assert_eq!(source.reads_hint(), (0, Some(0)));
    }

    #[test]
    fn in_memory_source_chunks_evenly() {
        let reads = sample_reads(10);
        let mut source = InMemorySource::chunked(&reads, 4);
        let lens: Vec<usize> = std::iter::from_fn(|| source.next_chunk().unwrap())
            .map(|c| c.len())
            .collect();
        assert_eq!(lens, vec![4, 4, 2]);
    }

    #[test]
    fn in_memory_source_respects_explicit_ranges() {
        let reads = sample_reads(6);
        let mut source = InMemorySource::with_ranges(&reads, vec![0..2, 2..6]).unwrap();
        assert_eq!(source.next_chunk().unwrap().unwrap().len(), 2);
        assert_eq!(source.next_chunk().unwrap().unwrap().len(), 4);
        assert!(source.next_chunk().unwrap().is_none());
        let out_of_bounds: Vec<std::ops::Range<usize>> = std::iter::once(0..7).collect();
        assert!(InMemorySource::with_ranges(&reads, out_of_bounds).is_err());
    }

    #[test]
    fn collect_reads_round_trips_a_source() {
        let reads = sample_reads(9);
        let collected = collect_reads(InMemorySource::chunked(&reads, 2)).unwrap();
        assert_eq!(collected, reads);
    }

    #[test]
    fn chunk_size_accounting_is_positive_and_monotonic() {
        let reads = sample_reads(3);
        let one = ReadChunk::Borrowed(&reads[..1]);
        let all = ReadChunk::Borrowed(&reads[..]);
        assert!(one.approx_read_bytes() > 0);
        assert!(all.approx_read_bytes() > one.approx_read_bytes());
        assert_eq!(all.total_bases(), 36);
    }

    #[test]
    fn fastq_source_streams_in_chunks() {
        let reads = sample_reads(7);
        let mut text = Vec::new();
        write_fastq(&mut text, &reads).unwrap();
        let mut source = FastaFastqSource::fastq(Cursor::new(text)).with_chunk_reads(3);
        assert_eq!(source.format(), SequenceFileFormat::Fastq);
        let mut total = 0;
        let mut chunks = 0;
        while let Some(chunk) = source.next_chunk().unwrap() {
            assert!(chunk.len() <= 3);
            total += chunk.len();
            chunks += 1;
        }
        assert_eq!(total, 7);
        assert_eq!(chunks, 3);
    }

    #[test]
    fn fasta_source_names_reads_after_headers() {
        let text = ">r0\nACGT\n>r1\nTTGG\nCCAA\n";
        let mut source = FastaFastqSource::fasta(Cursor::new(text));
        let chunk = source.next_chunk().unwrap().unwrap();
        assert_eq!(chunk[0].id(), "r0");
        assert_eq!(chunk[1].sequence().to_string(), "TTGGCCAA");
    }

    #[test]
    fn sniffing_detects_both_formats() {
        let fasta = FastaFastqSource::sniff(Cursor::new(">x\nACGT\n".as_bytes())).unwrap();
        assert_eq!(fasta.format(), SequenceFileFormat::Fasta);
        let fastq = FastaFastqSource::sniff(Cursor::new("@x\nACGT\n+\nIIII\n".as_bytes())).unwrap();
        assert_eq!(fastq.format(), SequenceFileFormat::Fastq);
        // Leading blank lines do not confuse the probe.
        let padded = FastaFastqSource::sniff(Cursor::new("\n\n>y\nAC\n".as_bytes())).unwrap();
        assert_eq!(padded.format(), SequenceFileFormat::Fasta);
    }

    #[test]
    fn fastq_source_round_trips_simulated_reads() {
        let genome = ReferenceGenome::builder()
            .length(2_000)
            .no_repeats()
            .seed(5)
            .build()
            .unwrap();
        let reads = ReadSimulator::new(SequencerConfig {
            coverage: 5.0,
            substitution_error_rate: 0.0,
            ..SequencerConfig::default()
        })
        .simulate(&genome)
        .unwrap();
        let mut text = Vec::new();
        write_fastq(&mut text, &reads).unwrap();
        let parsed =
            collect_reads(FastaFastqSource::fastq(Cursor::new(text)).with_chunk_reads(16)).unwrap();
        assert_eq!(parsed.len(), reads.len());
        for (parsed, original) in parsed.iter().zip(&reads) {
            assert_eq!(parsed.id(), original.id());
            assert_eq!(parsed.sequence(), original.sequence());
        }
    }

    #[test]
    fn file_sources_hint_bases_from_the_byte_size() {
        let fasta = FastaFastqSource::fasta(Cursor::new(">x\nACGT\n")).with_size_hint(1_000);
        assert_eq!(fasta.bases_hint(), Some(1_000));
        let fastq =
            FastaFastqSource::fastq(Cursor::new("@x\nACGT\n+\nIIII\n")).with_size_hint(1_000);
        assert_eq!(fastq.bases_hint(), Some(500));
        // Without a hint, the bound is unknown.
        assert_eq!(
            FastaFastqSource::fasta(Cursor::new(">x\nACGT\n")).bases_hint(),
            None
        );
    }

    #[test]
    fn open_sets_the_size_hint_from_file_metadata() {
        let dir = std::env::temp_dir().join(format!("nmp-pak-src-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fasta");
        let text = ">r0\nACGTACGT\n>r1\nTTGGCCAA\n";
        std::fs::write(&path, text).unwrap();
        let source = FastaFastqSource::open(&path).unwrap();
        assert_eq!(source.format(), SequenceFileFormat::Fasta);
        assert_eq!(source.bases_hint(), Some(text.len() as u64));
        let reads = collect_reads(source).unwrap();
        assert_eq!(reads.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefetch_source_streams_the_same_chunks() {
        let reads = sample_reads(20);
        let mut text = Vec::new();
        write_fastq(&mut text, &reads).unwrap();
        let direct =
            collect_reads(FastaFastqSource::fastq(Cursor::new(text.clone())).with_chunk_reads(3))
                .unwrap();
        let prefetched = collect_reads(PrefetchSource::new(
            FastaFastqSource::fastq(Cursor::new(text)).with_chunk_reads(3),
        ))
        .unwrap();
        assert_eq!(prefetched, direct);
        // The FASTQ round trip fills in constant qualities; ids and sequences
        // must still match the originals exactly.
        assert_eq!(prefetched.len(), reads.len());
        for (got, want) in prefetched.iter().zip(&reads) {
            assert_eq!(got.id(), want.id());
            assert_eq!(got.sequence(), want.sequence());
        }
    }

    #[test]
    fn prefetch_source_counts_hints_down() {
        let genome = ReferenceGenome::builder()
            .length(1_000)
            .no_repeats()
            .seed(3)
            .build()
            .unwrap();
        let inner = SyntheticSource::new(
            genome,
            SequencerConfig {
                coverage: 2.0,
                ..SequencerConfig::default()
            },
        )
        .unwrap()
        .with_chunk_reads(8);
        let (total, _) = inner.reads_hint();
        let bases = inner.bases_hint().unwrap();
        let mut source = PrefetchSource::new(inner);
        assert_eq!(source.reads_hint(), (total, Some(total)));
        assert_eq!(source.bases_hint(), Some(bases));
        let chunk = source.next_chunk().unwrap().unwrap();
        assert_eq!(source.reads_hint().0, total - chunk.len());
        assert_eq!(
            source.bases_hint(),
            Some(bases - chunk.total_bases()),
            "bases hint counts down by consumed bases"
        );
    }

    #[test]
    fn prefetch_source_propagates_parse_errors() {
        // Truncated FASTQ record: the worker forwards the error.
        let text = "@x\nACGT\n+\n";
        let mut source = PrefetchSource::new(FastaFastqSource::fastq(Cursor::new(text)));
        assert!(source.next_chunk().is_err());
        // After the error the stream is closed.
        assert!(source.next_chunk().unwrap().is_none());
    }

    #[test]
    fn dropping_a_prefetch_source_mid_stream_does_not_hang() {
        let genome = ReferenceGenome::builder()
            .length(5_000)
            .no_repeats()
            .seed(7)
            .build()
            .unwrap();
        let inner = SyntheticSource::new(
            genome,
            SequencerConfig {
                coverage: 10.0,
                ..SequencerConfig::default()
            },
        )
        .unwrap()
        .with_chunk_reads(4);
        let mut source = PrefetchSource::with_depth(inner, 1);
        // Consume one chunk, then drop with the worker parked on a full channel.
        source.next_chunk().unwrap().unwrap();
        drop(source);
    }

    #[test]
    fn synthetic_source_matches_the_simulator_exactly() {
        let genome = ReferenceGenome::builder()
            .length(3_000)
            .seed(11)
            .build()
            .unwrap();
        let config = SequencerConfig {
            coverage: 4.0,
            seed: 99,
            ..SequencerConfig::default()
        };
        let simulated = ReadSimulator::new(config).simulate(&genome).unwrap();
        let source = SyntheticSource::new(genome, config)
            .unwrap()
            .with_chunk_reads(17);
        assert_eq!(source.total_reads(), simulated.len());
        let streamed = collect_reads(source).unwrap();
        assert_eq!(streamed, simulated);
    }

    #[test]
    fn synthetic_source_hints_count_down() {
        let genome = ReferenceGenome::builder()
            .length(1_000)
            .no_repeats()
            .seed(3)
            .build()
            .unwrap();
        let mut source = SyntheticSource::new(
            genome,
            SequencerConfig {
                coverage: 2.0,
                ..SequencerConfig::default()
            },
        )
        .unwrap()
        .with_chunk_reads(8);
        let (total, upper) = source.reads_hint();
        assert_eq!(upper, Some(total));
        source.next_chunk().unwrap().unwrap();
        assert_eq!(source.reads_hint().0, total - 8);
        assert_eq!(source.bases_hint(), Some(((total - 8) * 100) as u64));
    }

    #[test]
    fn synthetic_source_rejects_bad_configs() {
        let genome = ReferenceGenome::builder()
            .length(1_000)
            .no_repeats()
            .seed(3)
            .build()
            .unwrap();
        assert!(SyntheticSource::new(
            genome.clone(),
            SequencerConfig {
                coverage: -1.0,
                ..SequencerConfig::default()
            }
        )
        .is_err());
        let tiny = ReferenceGenome::builder()
            .length(50)
            .no_repeats()
            .seed(1)
            .build()
            .unwrap();
        assert!(SyntheticSource::new(tiny, SequencerConfig::default()).is_err());
    }
}
