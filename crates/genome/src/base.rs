//! Single-nucleotide representation with a 2-bit encoding.
//!
//! The encoding (`A=0, C=1, T=2, G=3`) follows the ordering the paper uses in its
//! invalidation-check example (Fig. 4: "A=0, C=1, T=2, G=3"), so lexicographic
//! comparisons of packed k-mers match the paper's MacroNode invalidation rule.

use crate::error::GenomeError;
use std::fmt;

/// A single DNA nucleotide.
///
/// `Base` uses the 2-bit code `A=0, C=1, T=2, G=3` (the ordering used by the paper's
/// compaction example), so packed sequences compare in the same order the paper's
/// invalidation check assumes.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::Base;
///
/// let b = Base::from_char('g').unwrap();
/// assert_eq!(b, Base::G);
/// assert_eq!(b.complement(), Base::C);
/// assert_eq!(b.to_char(), 'G');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[derive(Default)]
pub enum Base {
    /// Adenine (code 0).
    #[default]
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Thymine (code 2).
    T = 2,
    /// Guanine (code 3).
    G = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::T, Base::G];

    /// Decodes a 2-bit code into a base.
    ///
    /// Only the two least-significant bits of `code` are inspected.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::T,
            _ => Base::G,
        }
    }

    /// Returns the 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a base from an ASCII character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] for any character other than
    /// `A`, `C`, `G`, `T` (in either case).
    pub fn from_char(c: char) -> Result<Base, GenomeError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Base::A),
            'C' => Ok(Base::C),
            'T' => Ok(Base::T),
            'G' => Ok(Base::G),
            other => Err(GenomeError::InvalidBase {
                character: other,
                position: None,
            }),
        }
    }

    /// Returns the uppercase ASCII character for this base.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::T => 'T',
            Base::G => 'G',
        }
    }

    /// Returns the Watson–Crick complement (`A↔T`, `C↔G`).
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
        }
    }

    /// Returns a base different from `self`, selected by `choice` (0..3).
    ///
    /// Used by the read simulator to inject substitution errors: the three possible
    /// substitutions are indexed 0, 1, 2; values ≥ 3 wrap around.
    #[inline]
    pub fn substitute(self, choice: u8) -> Base {
        let mut others = [Base::A; 3];
        let mut n = 0;
        for b in Base::ALL {
            if b != self {
                others[n] = b;
                n += 1;
            }
        }
        others[(choice % 3) as usize]
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for Base {
    type Error = GenomeError;

    fn try_from(value: char) -> Result<Self, Self::Error> {
        Base::from_char(value)
    }
}

impl From<Base> for char {
    fn from(value: Base) -> Self {
        value.to_char()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn char_round_trip_upper_and_lower() {
        for (c, b) in [
            ('A', Base::A),
            ('C', Base::C),
            ('T', Base::T),
            ('G', Base::G),
        ] {
            assert_eq!(Base::from_char(c).unwrap(), b);
            assert_eq!(Base::from_char(c.to_ascii_lowercase()).unwrap(), b);
            assert_eq!(b.to_char(), c);
        }
    }

    #[test]
    fn invalid_char_is_rejected() {
        assert!(Base::from_char('N').is_err());
        assert!(Base::from_char('x').is_err());
        assert!(Base::from_char('-').is_err());
    }

    #[test]
    fn complement_is_an_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn paper_ordering_a_c_t_g() {
        // Fig. 4 of the paper assigns A=0, C=1, T=2, G=3.
        assert_eq!(Base::A.code(), 0);
        assert_eq!(Base::C.code(), 1);
        assert_eq!(Base::T.code(), 2);
        assert_eq!(Base::G.code(), 3);
        assert!(Base::A < Base::C && Base::C < Base::T && Base::T < Base::G);
    }

    #[test]
    fn substitute_never_returns_self() {
        for b in Base::ALL {
            for choice in 0..=10u8 {
                assert_ne!(b.substitute(choice), b);
            }
        }
    }

    #[test]
    fn substitute_covers_all_other_bases() {
        for b in Base::ALL {
            let mut seen = std::collections::HashSet::new();
            for choice in 0..3u8 {
                seen.insert(b.substitute(choice));
            }
            assert_eq!(seen.len(), 3);
            assert!(!seen.contains(&b));
        }
    }

    #[test]
    fn display_matches_to_char() {
        assert_eq!(Base::G.to_string(), "G");
    }
}
