//! Growable, 2-bit-packed DNA sequences.

use crate::base::Base;
use crate::error::GenomeError;
use std::fmt;

/// Number of packed bytes stored inline before spilling to the heap; 16 bytes hold
/// 64 bases, which covers every (k-1)-mer, every single-base extension, and the
/// overwhelming majority of MacroNode extensions during early compaction.
const INLINE_BYTES: usize = 16;

/// Maximum number of bases the inline representation holds.
pub const INLINE_BASES: usize = INLINE_BYTES * 4;

/// Packed storage: a fixed inline buffer for short sequences (no heap allocation),
/// spilling to a `Vec<u8>` once the sequence outgrows it.
///
/// Invariants: the inline buffer's bytes beyond the sequence are zero, the unused
/// high bits of the last partial byte are zero in both variants, and a heap vector
/// has exactly `len.div_ceil(4)` bytes. Together these make byte-slice comparison
/// an exact equality check regardless of which variant holds the data.
#[derive(Clone)]
enum Repr {
    Inline([u8; INLINE_BYTES]),
    Heap(Vec<u8>),
}

/// A DNA sequence stored with 2 bits per base.
///
/// `DnaString` is the in-memory representation for reference genomes, reads and
/// contigs. Four bases are packed per byte, which keeps the synthetic workloads used
/// by the experiments an order of magnitude smaller than an ASCII representation —
/// the same reason the paper packs k-mers into machine words. Sequences of up to
/// [`INLINE_BASES`] bases live entirely inline (no heap allocation), which is what
/// keeps MacroNode wiring and TransferNode extraction off the allocator: nearly all
/// extensions flowing through Iterative Compaction are short.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::DnaString;
///
/// let s: DnaString = "ACGTACGT".parse().unwrap();
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.to_string(), "ACGTACGT");
/// assert_eq!(s.reverse_complement().to_string(), "ACGTACGT");
/// ```
#[derive(Clone)]
pub struct DnaString {
    /// Packed bases, 4 per byte, little-end first within each byte.
    repr: Repr,
    /// Number of bases stored.
    len: usize,
}

impl Default for DnaString {
    fn default() -> Self {
        DnaString {
            repr: Repr::Inline([0; INLINE_BYTES]),
            len: 0,
        }
    }
}

impl PartialEq for DnaString {
    fn eq(&self, other: &Self) -> bool {
        // Compare content, not representation: the same sequence may be inline in
        // one value and heap-allocated in another (e.g. a slice of a long contig).
        self.len == other.len && self.used_bytes() == other.used_bytes()
    }
}

impl Eq for DnaString {}

impl std::hash::Hash for DnaString {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.used_bytes().hash(state);
    }
}

impl DnaString {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        DnaString::default()
    }

    /// Creates an empty sequence with capacity for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity <= INLINE_BASES {
            return DnaString::new();
        }
        DnaString {
            repr: Repr::Heap(Vec::with_capacity(capacity.div_ceil(4))),
            len: 0,
        }
    }

    /// The packed bytes currently holding the sequence (`len.div_ceil(4)` of them).
    #[inline]
    fn used_bytes(&self) -> &[u8] {
        let used = self.len.div_ceil(4);
        match &self.repr {
            Repr::Inline(buf) => &buf[..used],
            Repr::Heap(v) => &v[..used],
        }
    }

    /// Moves an inline buffer to the heap so it can hold `nbytes` packed bytes.
    #[cold]
    fn spill_to_heap(&mut self, nbytes: usize) {
        if let Repr::Inline(buf) = &self.repr {
            let used = self.len.div_ceil(4);
            let mut v = Vec::with_capacity(nbytes.max(2 * INLINE_BYTES));
            v.extend_from_slice(&buf[..used]);
            self.repr = Repr::Heap(v);
        }
    }

    /// Builds a sequence from an ASCII string of `ACGT` characters (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] with the offending position for any other
    /// character.
    pub fn from_ascii(text: &str) -> Result<Self, GenomeError> {
        let mut s = DnaString::with_capacity(text.len());
        for (idx, c) in text.chars().enumerate() {
            let base = Base::from_char(c).map_err(|_| GenomeError::InvalidBase {
                character: c,
                position: Some(idx),
            })?;
            s.push(base);
        }
        Ok(s)
    }

    /// Number of bases in the sequence.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence contains no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        self.push_code(base.code());
    }

    /// Appends one base given as its 2-bit code (the representation
    /// [`DnaString::codes`] yields), skipping the enum round-trip. Only the low
    /// two bits are used; callers on the packed fast path (the graph walk)
    /// append codes straight from another packed sequence.
    pub fn push_code(&mut self, code: u8) {
        let code = code & 0b11;
        let byte_idx = self.len / 4;
        let shift = (self.len % 4) * 2;
        match &mut self.repr {
            Repr::Inline(buf) if byte_idx < INLINE_BYTES => {
                // Bytes beyond the sequence are zero by invariant; just OR the bits.
                buf[byte_idx] |= code << shift;
            }
            Repr::Inline(_) => {
                self.spill_to_heap(byte_idx + 1);
                self.push_code(code);
                return;
            }
            Repr::Heap(v) => {
                if byte_idx == v.len() {
                    v.push(0);
                }
                v[byte_idx] |= code << shift;
            }
        }
        self.len += 1;
    }

    /// Appends every base of `other`.
    pub fn extend_from(&mut self, other: &DnaString) {
        if self.len.is_multiple_of(4) && !other.is_empty() {
            // Byte-aligned destination: splice other's packed bytes wholesale.
            // Other's trailing partial byte has zeroed spare bits (the invariant),
            // so the result's invariant holds too.
            let start = self.len / 4;
            let nbytes = (self.len + other.len).div_ceil(4);
            if matches!(&self.repr, Repr::Inline(_)) && nbytes > INLINE_BYTES {
                self.spill_to_heap(nbytes);
            }
            let src = other.used_bytes();
            match &mut self.repr {
                Repr::Inline(buf) => buf[start..start + src.len()].copy_from_slice(src),
                Repr::Heap(v) => {
                    debug_assert_eq!(v.len(), start);
                    v.extend_from_slice(src);
                }
            }
            self.len += other.len;
            return;
        }
        for i in 0..other.len() {
            self.push(other.get(i).expect("index within other"));
        }
    }

    /// Returns the base at `index`, or `None` if out of range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let byte = match &self.repr {
            Repr::Inline(buf) => buf[index / 4],
            Repr::Heap(v) => v[index / 4],
        };
        let shift = (index % 4) * 2;
        Some(Base::from_code((byte >> shift) & 0b11))
    }

    /// Returns the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn base(&self, index: usize) -> Base {
        self.get(index)
            .unwrap_or_else(|| panic!("base index {index} out of range (len {})", self.len))
    }

    /// Iterates over the bases in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { dna: self, pos: 0 }
    }

    /// Iterates over the raw 2-bit codes in order, reading the packed bytes
    /// directly. This is the hot-path accessor the k-mer extractor uses: it avoids
    /// the per-base representation dispatch and enum round-trip of [`Self::base`],
    /// which matters when sliding a window over hundreds of thousands of reads.
    #[inline]
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        let bytes = self.used_bytes();
        (0..self.len).map(move |i| (bytes[i >> 2] >> ((i & 3) * 2)) & 0b11)
    }

    /// Returns the sub-sequence `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the sequence.
    pub fn slice(&self, start: usize, len: usize) -> DnaString {
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) out of range (len {})",
            start + len,
            self.len
        );
        let mut out = DnaString::with_capacity(len);
        for i in start..start + len {
            out.push(self.base(i));
        }
        out
    }

    /// Returns the reverse complement of the sequence.
    pub fn reverse_complement(&self) -> DnaString {
        let mut out = DnaString::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.base(i).complement());
        }
        out
    }

    /// Fraction of bases that are G or C, in `[0, 1]`. Returns 0 for an empty sequence.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self
            .iter()
            .filter(|b| matches!(b, Base::G | Base::C))
            .count();
        gc as f64 / self.len as f64
    }

    /// Number of packed bytes used by the representation (4 bases per byte),
    /// whether they live inline or on the heap.
    pub fn packed_size_bytes(&self) -> usize {
        self.len.div_ceil(4)
    }

    /// `true` while the sequence fits in the inline buffer (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Converts the sequence to an ASCII `String` of `ACGT` characters.
    pub fn to_ascii(&self) -> String {
        self.iter().map(Base::to_char).collect()
    }
}

impl fmt::Display for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "DnaString(\"{self}\")")
        } else {
            write!(f, "DnaString(len={}, \"{}…\")", self.len, self.slice(0, 32))
        }
    }
}

impl std::str::FromStr for DnaString {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaString::from_ascii(s)
    }
}

impl FromIterator<Base> for DnaString {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        let mut s = DnaString::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

impl Extend<Base> for DnaString {
    fn extend<T: IntoIterator<Item = Base>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a DnaString {
    type Item = Base;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bases of a [`DnaString`], produced by [`DnaString::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    dna: &'a DnaString,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        let b = self.dna.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.dna.len.saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_code_matches_push_across_the_inline_boundary() {
        // Long enough to spill from the inline buffer to the heap.
        let mut by_base = DnaString::new();
        let mut by_code = DnaString::new();
        for i in 0..200usize {
            let base = match i % 4 {
                0 => Base::A,
                1 => Base::C,
                2 => Base::G,
                _ => Base::T,
            };
            by_base.push(base);
            by_code.push_code(base.code());
        }
        assert_eq!(by_base, by_code);
        assert_eq!(by_base.to_string(), by_code.to_string());
        // High bits of the code are masked, preserving the packed invariant.
        let mut masked = DnaString::new();
        masked.push_code(0b1111_1110);
        assert_eq!(masked.base(0), Base::from_code(0b10));
        assert_eq!(masked.len(), 1);
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut s = DnaString::new();
        let bases = [Base::A, Base::C, Base::G, Base::T, Base::T, Base::G];
        for b in bases {
            s.push(b);
        }
        assert_eq!(s.len(), 6);
        for (i, b) in bases.iter().enumerate() {
            assert_eq!(s.base(i), *b);
        }
        assert_eq!(s.get(6), None);
    }

    #[test]
    fn ascii_round_trip() {
        let text = "ACGTTGCAACGTTTTGGGGCCCCAAAA";
        let s = DnaString::from_ascii(text).unwrap();
        assert_eq!(s.to_ascii(), text);
        assert_eq!(s.to_string(), text);
    }

    #[test]
    fn from_ascii_reports_position_of_bad_base() {
        let err = DnaString::from_ascii("ACGNX").unwrap_err();
        match err {
            GenomeError::InvalidBase {
                character,
                position,
            } => {
                assert_eq!(character, 'N');
                assert_eq!(position, Some(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn slice_extracts_expected_window() {
        let s: DnaString = "ACGTACGTAC".parse().unwrap();
        assert_eq!(s.slice(2, 4).to_string(), "GTAC");
        assert_eq!(s.slice(0, 0).len(), 0);
        assert_eq!(s.slice(9, 1).to_string(), "C");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let s: DnaString = "ACGT".parse().unwrap();
        let _ = s.slice(2, 5);
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: DnaString = "ACGGTTTACGATCG".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaString = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn gc_content_computed() {
        let s: DnaString = "GGCC".parse().unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s: DnaString = "AATT".parse().unwrap();
        assert!(s.gc_content().abs() < 1e-12);
        let s: DnaString = "ACGT".parse().unwrap();
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
        assert_eq!(DnaString::new().gc_content(), 0.0);
    }

    #[test]
    fn packing_uses_quarter_byte_per_base() {
        let s: DnaString = "ACGTACGTACGTACGT".parse().unwrap();
        assert_eq!(s.packed_size_bytes(), 4);
    }

    #[test]
    fn codes_match_bases() {
        let s: DnaString = "ACGTTGCAACGTTTTGGGGCCCCAAAA".parse().unwrap();
        let via_codes: Vec<u8> = s.codes().collect();
        let via_bases: Vec<u8> = s.iter().map(Base::code).collect();
        assert_eq!(via_codes, via_bases);
        // And across the inline/heap boundary.
        let long: DnaString = "ACGT".repeat(40).parse().unwrap();
        assert_eq!(
            long.codes().collect::<Vec<_>>(),
            long.iter().map(Base::code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn iterator_and_collect() {
        let s: DnaString = "ACGT".parse().unwrap();
        let collected: DnaString = s.iter().collect();
        assert_eq!(collected, s);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a: DnaString = "ACG".parse().unwrap();
        let b: DnaString = "TTT".parse().unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "ACGTTT");
        // Byte-aligned fast path (len % 4 == 0).
        let mut c: DnaString = "ACGT".parse().unwrap();
        c.extend_from(&b);
        assert_eq!(c.to_string(), "ACGTTTT");
    }

    #[test]
    fn short_sequences_stay_inline_and_long_ones_spill() {
        let short: DnaString = "ACGT".repeat(16).parse().unwrap(); // 64 bases
        assert!(short.is_inline());
        let mut spilled = short.clone();
        spilled.push(Base::G); // 65th base
        assert!(!spilled.is_inline());
        assert_eq!(spilled.len(), 65);
        assert_eq!(spilled.to_string(), format!("{}G", "ACGT".repeat(16)));
        // Pushing across the boundary preserves every earlier base.
        for i in 0..64 {
            assert_eq!(spilled.base(i), short.base(i));
        }
    }

    #[test]
    fn equality_ignores_representation() {
        // Same content, one inline and one heap-backed (reserved for more).
        let mut heap_backed = DnaString::with_capacity(100);
        for c in "ACGTACGT".chars() {
            heap_backed.push(Base::from_char(c).unwrap());
        }
        assert!(!heap_backed.is_inline());
        let inline: DnaString = "ACGTACGT".parse().unwrap();
        assert!(inline.is_inline());
        assert_eq!(inline, heap_backed);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &DnaString| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&inline), hash(&heap_backed));
    }

    #[test]
    fn extend_across_inline_boundary() {
        let unit: DnaString = "ACGTTGCA".parse().unwrap();
        let mut grown = DnaString::new();
        let mut expected = String::new();
        for _ in 0..20 {
            grown.extend_from(&unit);
            expected.push_str("ACGTTGCA");
        }
        assert_eq!(grown.len(), 160);
        assert_eq!(grown.to_string(), expected);
        // Unaligned growth across the boundary too.
        let tri: DnaString = "ACG".parse().unwrap();
        let mut grown = DnaString::new();
        let mut expected = String::new();
        for _ in 0..30 {
            grown.extend_from(&tri);
            expected.push_str("ACG");
        }
        assert_eq!(grown.to_string(), expected);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", DnaString::new()).is_empty());
        let long: DnaString = "ACGT".repeat(40).parse().unwrap();
        assert!(format!("{long:?}").contains("len=160"));
    }
}
