//! Growable, 2-bit-packed DNA sequences.

use crate::base::Base;
use crate::error::GenomeError;
use std::fmt;

/// A DNA sequence stored with 2 bits per base.
///
/// `DnaString` is the in-memory representation for reference genomes, reads and
/// contigs. Four bases are packed per byte, which keeps the synthetic workloads used
/// by the experiments an order of magnitude smaller than an ASCII representation —
/// the same reason the paper packs k-mers into machine words.
///
/// # Example
///
/// ```
/// use nmp_pak_genome::DnaString;
///
/// let s: DnaString = "ACGTACGT".parse().unwrap();
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.to_string(), "ACGTACGT");
/// assert_eq!(s.reverse_complement().to_string(), "ACGTACGT");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct DnaString {
    /// Packed bases, 4 per byte, little-end first within each byte.
    packed: Vec<u8>,
    /// Number of bases stored.
    len: usize,
}

impl DnaString {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        DnaString::default()
    }

    /// Creates an empty sequence with capacity for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Self {
        DnaString {
            packed: Vec::with_capacity(capacity.div_ceil(4)),
            len: 0,
        }
    }

    /// Builds a sequence from an ASCII string of `ACGT` characters (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::InvalidBase`] with the offending position for any other
    /// character.
    pub fn from_ascii(text: &str) -> Result<Self, GenomeError> {
        let mut s = DnaString::with_capacity(text.len());
        for (idx, c) in text.chars().enumerate() {
            let base = Base::from_char(c).map_err(|_| GenomeError::InvalidBase {
                character: c,
                position: Some(idx),
            })?;
            s.push(base);
        }
        Ok(s)
    }

    /// Number of bases in the sequence.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sequence contains no bases.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        let byte_idx = self.len / 4;
        let shift = (self.len % 4) * 2;
        if byte_idx == self.packed.len() {
            self.packed.push(0);
        }
        self.packed[byte_idx] |= (base.code() as u8) << shift;
        self.len += 1;
    }

    /// Appends every base of `other`.
    pub fn extend_from(&mut self, other: &DnaString) {
        for i in 0..other.len() {
            self.push(other.get(i).expect("index within other"));
        }
    }

    /// Returns the base at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let byte = self.packed[index / 4];
        let shift = (index % 4) * 2;
        Some(Base::from_code((byte >> shift) & 0b11))
    }

    /// Returns the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn base(&self, index: usize) -> Base {
        self.get(index)
            .unwrap_or_else(|| panic!("base index {index} out of range (len {})", self.len))
    }

    /// Iterates over the bases in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { dna: self, pos: 0 }
    }

    /// Returns the sub-sequence `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the sequence.
    pub fn slice(&self, start: usize, len: usize) -> DnaString {
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) out of range (len {})",
            start + len,
            self.len
        );
        let mut out = DnaString::with_capacity(len);
        for i in start..start + len {
            out.push(self.base(i));
        }
        out
    }

    /// Returns the reverse complement of the sequence.
    pub fn reverse_complement(&self) -> DnaString {
        let mut out = DnaString::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.base(i).complement());
        }
        out
    }

    /// Fraction of bases that are G or C, in `[0, 1]`. Returns 0 for an empty sequence.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self
            .iter()
            .filter(|b| matches!(b, Base::G | Base::C))
            .count();
        gc as f64 / self.len as f64
    }

    /// Number of heap bytes used by the packed representation.
    pub fn packed_size_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Converts the sequence to an ASCII `String` of `ACGT` characters.
    pub fn to_ascii(&self) -> String {
        self.iter().map(Base::to_char).collect()
    }
}

impl fmt::Display for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "DnaString(\"{self}\")")
        } else {
            write!(
                f,
                "DnaString(len={}, \"{}…\")",
                self.len,
                self.slice(0, 32)
            )
        }
    }
}

impl std::str::FromStr for DnaString {
    type Err = GenomeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaString::from_ascii(s)
    }
}

impl FromIterator<Base> for DnaString {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        let mut s = DnaString::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

impl Extend<Base> for DnaString {
    fn extend<T: IntoIterator<Item = Base>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a DnaString {
    type Item = Base;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bases of a [`DnaString`], produced by [`DnaString::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    dna: &'a DnaString,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    fn next(&mut self) -> Option<Base> {
        let b = self.dna.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.dna.len.saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut s = DnaString::new();
        let bases = [Base::A, Base::C, Base::G, Base::T, Base::T, Base::G];
        for b in bases {
            s.push(b);
        }
        assert_eq!(s.len(), 6);
        for (i, b) in bases.iter().enumerate() {
            assert_eq!(s.base(i), *b);
        }
        assert_eq!(s.get(6), None);
    }

    #[test]
    fn ascii_round_trip() {
        let text = "ACGTTGCAACGTTTTGGGGCCCCAAAA";
        let s = DnaString::from_ascii(text).unwrap();
        assert_eq!(s.to_ascii(), text);
        assert_eq!(s.to_string(), text);
    }

    #[test]
    fn from_ascii_reports_position_of_bad_base() {
        let err = DnaString::from_ascii("ACGNX").unwrap_err();
        match err {
            GenomeError::InvalidBase { character, position } => {
                assert_eq!(character, 'N');
                assert_eq!(position, Some(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn slice_extracts_expected_window() {
        let s: DnaString = "ACGTACGTAC".parse().unwrap();
        assert_eq!(s.slice(2, 4).to_string(), "GTAC");
        assert_eq!(s.slice(0, 0).len(), 0);
        assert_eq!(s.slice(9, 1).to_string(), "C");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let s: DnaString = "ACGT".parse().unwrap();
        let _ = s.slice(2, 5);
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: DnaString = "ACGGTTTACGATCG".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaString = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn gc_content_computed() {
        let s: DnaString = "GGCC".parse().unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s: DnaString = "AATT".parse().unwrap();
        assert!(s.gc_content().abs() < 1e-12);
        let s: DnaString = "ACGT".parse().unwrap();
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
        assert_eq!(DnaString::new().gc_content(), 0.0);
    }

    #[test]
    fn packing_uses_quarter_byte_per_base() {
        let s: DnaString = "ACGTACGTACGTACGT".parse().unwrap();
        assert_eq!(s.packed_size_bytes(), 4);
    }

    #[test]
    fn iterator_and_collect() {
        let s: DnaString = "ACGT".parse().unwrap();
        let collected: DnaString = s.iter().collect();
        assert_eq!(collected, s);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a: DnaString = "ACG".parse().unwrap();
        let b: DnaString = "TTT".parse().unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "ACGTTT");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", DnaString::new()).is_empty());
        let long: DnaString = "ACGT".repeat(40).parse().unwrap();
        assert!(format!("{long:?}").contains("len=160"));
    }
}
