//! The acceptance contract for `experiments sweep`: the fig12 recipe's cells
//! are bit-identical to the hand-rolled `experiments fig12` subcommand, and a
//! deliberately violated gate fails the sweep.

use nmp_pak_bench::sweep::{run_sweep, BaselineProbe, SweepMode};
use nmp_pak_bench::{prepare_experiments, BenchScale};
use nmp_pak_recipe::{builtin, metric, Executor, Gate};

#[test]
fn fig12_sweep_is_bit_identical_to_the_hand_rolled_driver() {
    let report = Executor::local().run(&builtin::fig12()).unwrap();
    assert!(report.passed());

    let exp = prepare_experiments(BenchScale::Quick);
    let rows = exp.fig12_normalized_performance();
    assert_eq!(report.cells.len(), rows.len());
    for (cell, row) in report.cells.iter().zip(rows.iter()) {
        // Exact f64 equality: both paths simulate the same backend on the
        // same trace from the same deterministic software run.
        assert_eq!(
            cell.metric(metric::NORMALIZED_PERFORMANCE),
            Some(row.value),
            "cell {} diverged from hand-rolled row {}",
            cell.label,
            row.label
        );
    }
    // The software run itself matches the hand-rolled preparation.
    for cell in &report.cells {
        assert_eq!(cell.output.stats(), &exp.assembly.stats);
        assert_eq!(cell.output.contigs(), exp.assembly.contigs.as_slice());
    }
}

#[test]
fn a_deliberately_violated_gate_fails_the_sweep() {
    let mut recipe = builtin::fig12();
    recipe
        .gates
        .push(Gate::at_least(metric::NORMALIZED_PERFORMANCE, 100.0));
    let report = Executor::local().run(&recipe).unwrap();
    assert!(!report.passed());
}

#[test]
fn smoke_recipe_runs_with_the_baseline_probe() {
    // Thresholds are relaxed for this debug-build unit test (timing ratios
    // are only meaningful in release); the release-mode CI step runs the
    // smoke recipe with its real floors.
    let mut recipe = builtin::smoke();
    for gate in &mut recipe.gates {
        if gate.metric.starts_with("speedup.") || gate.metric.contains("critical_path") {
            gate.threshold = 0.01;
            gate.env_override = None;
        }
    }
    let report = run_sweep(&recipe, SweepMode::Local).unwrap();
    assert_eq!(report.cells.len(), 3);
    assert!(
        report.passed(),
        "smoke sweep failed: {:?}",
        report
            .gates
            .iter()
            .filter(|g| !g.passed)
            .map(|g| &g.detail)
            .collect::<Vec<_>>()
    );
    // The probe produced every gated metric on the cells its gates select.
    let single_threads4 = report
        .cells
        .iter()
        .find(|c| c.spec.threads == 4 && !c.spec.schedule.is_batched())
        .unwrap();
    assert!(single_threads4
        .metric(metric::SPEEDUP_COUNTING_PLUS_CONSTRUCTION)
        .is_some());
    assert!(single_threads4.metric(metric::SPEEDUP_COMPACTION).is_some());
    let pipelined = report
        .cells
        .iter()
        .find(|c| c.spec.schedule.is_batched())
        .unwrap();
    assert!(pipelined.metric(metric::CRITICAL_PATH_SPEEDUP).is_some());
    assert!(pipelined
        .metric(metric::PIPELINED_CRITICAL_PATH_SPEEDUP)
        .is_some());
}

#[test]
fn sharding_and_spill_recipes_carry_their_telemetry_gates() {
    // The telemetry gates are deterministic and checked for real; the two
    // timing-overhead gates are relaxed here (debug-build ratios are not
    // meaningful — the release-mode CI steps enforce the real caps).
    let relax_timing = |recipe: &mut nmp_pak_recipe::Recipe| {
        for gate in &mut recipe.gates {
            if gate.metric.contains("overhead") {
                gate.threshold = 1e9;
                gate.env_override = None;
            }
        }
    };
    let mut sharding_recipe = builtin::sharding();
    relax_timing(&mut sharding_recipe);
    let sharding = Executor::local()
        .with_probe(BaselineProbe { reps: 1 })
        .run(&sharding_recipe)
        .unwrap();
    assert!(
        sharding.passed(),
        "sharding sweep failed: {:?}",
        sharding
            .gates
            .iter()
            .filter(|g| !g.passed)
            .map(|g| &g.detail)
            .collect::<Vec<_>>()
    );
    let eight = sharding.cells.iter().find(|c| c.spec.shards == 8).unwrap();
    assert!(eight.metric(metric::CROSS_SHARD_FRACTION).unwrap() >= 0.5);

    let mut spill_recipe = builtin::spill();
    relax_timing(&mut spill_recipe);
    let spill = Executor::local()
        .with_probe(BaselineProbe { reps: 1 })
        .run(&spill_recipe)
        .unwrap();
    assert!(
        spill.passed(),
        "spill sweep failed: {:?}",
        spill
            .gates
            .iter()
            .filter(|g| !g.passed)
            .map(|g| &g.detail)
            .collect::<Vec<_>>()
    );
    let bounded = spill
        .cells
        .iter()
        .find(|c| c.spec.spill_budget == Some(64 * 1024))
        .unwrap();
    assert!(bounded.metric(metric::BYTES_SPILLED).unwrap() >= 1.0);
}
