//! Fig. 6 — Iterative Compaction stall-time breakdown on the CPU baseline.
//!
//! The paper reports mem-dram ≈ 54 %, sync-futex ≈ 39 %, with base/branch/mem-l3 in
//! the low single digits. Benchmarks the CPU-model simulation of the compaction trace.

use criterion::{criterion_group, criterion_main, Criterion};
use nmp_pak_bench::{pct, prepare_experiments, BenchScale};
use nmp_pak_memsim::cpu::simulate_cpu_compaction;
use nmp_pak_memsim::{CpuConfig, DramConfig, ProcessFlow};

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    let stall = exp.fig6_stall_breakdown();
    println!("\nFig. 6 — compaction stall breakdown (CPU baseline):");
    for (label, value) in [
        ("base", stall.base),
        ("branch", stall.branch),
        ("mem-l3", stall.mem_l3),
        ("mem-dram", stall.mem_dram),
        ("sync-futex", stall.sync_futex),
        ("other", stall.other),
    ] {
        println!("  {label:<12} {}", pct(value));
    }

    let trace = exp.trace.clone();
    let layout = exp.layout.clone();
    let mut group = c.benchmark_group("fig06_stall_breakdown");
    group.sample_size(20);
    group.bench_function("cpu_baseline_simulation", |b| {
        b.iter(|| {
            simulate_cpu_compaction(
                std::hint::black_box(&trace),
                &layout,
                ProcessFlow::Baseline,
                &DramConfig::default(),
                &CpuConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
