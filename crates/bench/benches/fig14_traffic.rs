//! Fig. 14 — read/write memory traffic of each backend, normalized to the CPU
//! baseline's reads.
//!
//! The paper reports reads 1.0 → 0.5 (0.41 with ideal forwarding) and writes
//! 0.44 → 0.11. Benchmarks the trace-to-request expansion for both process flows.

use criterion::{criterion_group, criterion_main, Criterion};
use nmp_pak_bench::{prepare_experiments, BenchScale};
use nmp_pak_memsim::traffic::summarize_trace;
use nmp_pak_memsim::ProcessFlow;

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    println!("\nFig. 14 — traffic normalized to CPU-baseline reads:");
    println!("  {:<22}{:>10}{:>10}", "backend", "reads", "writes");
    for (label, reads, writes) in exp.fig14_traffic() {
        println!("  {label:<22}{reads:>10.2}{writes:>10.2}");
    }

    let trace = exp.trace.clone();
    let layout = exp.layout.clone();
    let mut group = c.benchmark_group("fig14_traffic");
    group.sample_size(30);
    group.bench_function("baseline_flow_expansion", |b| {
        b.iter(|| summarize_trace(std::hint::black_box(&trace), &layout, ProcessFlow::Baseline))
    });
    group.bench_function("optimized_flow_expansion", |b| {
        b.iter(|| summarize_trace(std::hint::black_box(&trace), &layout, ProcessFlow::Optimized))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
