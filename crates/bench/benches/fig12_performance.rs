//! Figs. 12 and 13 — normalized performance and memory-bandwidth utilization of every
//! execution backend.
//!
//! The paper reports (normalized to the CPU baseline): W/O SW-opt 0.09×, GPU 2.8×,
//! CPU-PaK 2.6×, NMP-PaK 16×, ideal-PE 16×, ideal-forwarding 18.2×; bandwidth
//! utilization 6.5 % / 7 % / 44 %. Benchmarks the NMP-system simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use nmp_pak_bench::{pct, prepare_experiments, BenchScale};
use nmp_pak_memsim::CpuConfig;
use nmp_pak_nmphw::{NmpConfig, NmpSystem};

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    println!("\nFig. 12 — performance normalized to the CPU baseline:");
    for row in exp.fig12_normalized_performance() {
        println!("  {:<22} {:>6.2}x", row.label, row.value);
    }
    println!("\nFig. 13 — memory bandwidth utilization:");
    for row in exp.fig13_bandwidth_utilization() {
        println!("  {:<22} {:>7}", row.label, pct(row.value));
    }

    let trace = exp.trace.clone();
    let layout = exp.layout.clone();
    let dram = exp.assembler.system.dram;
    let mut group = c.benchmark_group("fig12_performance");
    group.sample_size(20);
    group.bench_function("nmp_system_simulation", |b| {
        let system = NmpSystem::new(NmpConfig::default(), dram, CpuConfig::default());
        b.iter(|| system.simulate(std::hint::black_box(&trace), &layout))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
