//! Table 1 — contig quality (N50) across batch sizes.
//!
//! The paper's trend: tiny batches (0.5–4 %, the sizes a GPU's memory can hold)
//! degrade N50 by more than half, while ≈5–10 % batches approach full quality.
//! Benchmarks one batched assembly at the 10 % batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use nmp_pak_bench::{prepare_experiments, BenchScale};
use nmp_pak_pakman::BatchAssembler;

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    println!("\nTable 1 — N50 vs batch size:");
    let fractions = [0.005, 0.01, 0.03, 0.04, 0.05, 0.10, 1.0];
    match exp.table1_batch_quality(&fractions) {
        Ok(rows) => {
            for row in rows {
                println!("  batch {:<8} N50 = {}", row.label, row.value as u64);
            }
        }
        Err(err) => println!("  (unavailable: {err})"),
    }

    let reads = exp.workload.reads.clone();
    let config = exp.assembler.pakman;
    let mut group = c.benchmark_group("tab01_batch_quality");
    group.sample_size(10);
    group.bench_function("batched_assembly_10pct", |b| {
        b.iter(|| {
            BatchAssembler::new(config, 0.1)
                .assemble(std::hint::black_box(&reads))
                .expect("batched assembly succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
