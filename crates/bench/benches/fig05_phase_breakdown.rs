//! Fig. 5 — runtime breakdown of the PaKman assembly phases.
//!
//! Benchmarks the end-to-end software pipeline and prints the per-phase shares
//! (the paper reports compaction ≈ 48 %, k-mer counting ≈ 25 %, MacroNode
//! construction ≈ 24 %, graph walk ≈ 1 %).

use criterion::{criterion_group, criterion_main, Criterion};
use nmp_pak_bench::{pct, prepare_experiments, BenchScale};
use nmp_pak_pakman::{PakmanAssembler, PakmanConfig};

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    println!("\nFig. 5 — phase runtime shares:");
    for row in exp.fig5_phase_breakdown() {
        println!("  {:<36} {}", row.label, pct(row.value));
    }

    let reads = exp.workload.reads.clone();
    let config = PakmanConfig {
        record_trace: false,
        ..exp.assembler.pakman
    };
    let mut group = c.benchmark_group("fig05_phase_breakdown");
    group.sample_size(10);
    group.bench_function("end_to_end_assembly", |b| {
        b.iter(|| {
            PakmanAssembler::new(config)
                .assemble(std::hint::black_box(&reads))
                .expect("assembly succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
