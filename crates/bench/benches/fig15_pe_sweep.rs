//! Fig. 15 — NMP-PaK performance as the number of PEs per channel varies, plus the
//! §6.3 communication-locality breakdown.
//!
//! The paper reports 0.3× / 0.7× / 1.4× / 5.6× / 15.9× / 16× / 16× for 1–64 PEs per
//! channel, saturating at 32 (16 being the cost-effective choice), and 12.5 %
//! intra-DIMM vs 87.5 % inter-DIMM TransferNode communication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nmp_pak_bench::{pct, prepare_experiments, BenchScale};
use nmp_pak_memsim::CpuConfig;
use nmp_pak_nmphw::{NmpConfig, NmpSystem};

fn bench(c: &mut Criterion) {
    let exp = prepare_experiments(BenchScale::from_env());
    println!("\nFig. 15 — NMP-PaK performance vs PEs per channel:");
    for row in exp.fig15_pe_sweep(&[1, 2, 4, 8, 16, 32, 64]) {
        println!("  {:<10} {:>6.2}x", row.label, row.value);
    }
    let comm = exp.comm_breakdown();
    println!("\n§6.3 — communication locality:");
    println!("  intra-DIMM {}", pct(comm.intra_dimm_fraction()));
    println!("  inter-DIMM {}", pct(comm.inter_dimm_fraction()));
    println!(
        "  of intra-DIMM, cross-PE {}",
        pct(comm.cross_pe_fraction_of_intra())
    );

    let trace = exp.trace.clone();
    let layout = exp.layout.clone();
    let dram = exp.assembler.system.dram;
    let mut group = c.benchmark_group("fig15_pe_sweep");
    group.sample_size(15);
    for pes in [1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("pes_per_channel", pes), &pes, |b, &pes| {
            let system = NmpSystem::new(
                NmpConfig { pes_per_channel: pes, ..NmpConfig::default() },
                dram,
                CpuConfig::default(),
            );
            b.iter(|| system.simulate(std::hint::black_box(&trace), &layout))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
