//! Shared helpers for the NMP-PaK benchmark harness.
//!
//! The Criterion benches and the `experiments` binary all need the same prepared
//! context: a synthetic workload, one software assembly run with a recorded
//! compaction trace, and the per-backend simulations. This crate centralizes that
//! setup so every bench regenerates its table/figure from identical inputs.

pub mod baseline;
pub mod pipeline_bench;
pub mod sweep;

use nmp_pak_core::assembler::NmpPakAssembler;
use nmp_pak_core::experiments::Experiments;
use nmp_pak_core::workload::Workload;

/// Workload scale used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// ~20 kbp genome, 20× coverage: seconds-fast, used by default and in CI.
    Quick,
    /// ~100 kbp genome, 30× coverage: the scale used for the numbers recorded in
    /// `EXPERIMENTS.md`.
    Standard,
}

impl BenchScale {
    /// Reads the scale from the `NMP_PAK_BENCH_SCALE` environment variable
    /// (`quick` / `standard`), defaulting to [`BenchScale::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("NMP_PAK_BENCH_SCALE").as_deref() {
            Ok("standard") | Ok("STANDARD") => BenchScale::Standard,
            _ => BenchScale::Quick,
        }
    }

    /// Builds the workload for this scale.
    pub fn workload(self, seed: u64) -> Workload {
        match self {
            BenchScale::Quick => Workload::tiny(seed).expect("tiny workload builds"),
            BenchScale::Standard => Workload::small(seed).expect("small workload builds"),
        }
    }
}

/// Prepares the shared experiment context at the given scale.
pub fn prepare_experiments(scale: BenchScale) -> Experiments {
    let workload = scale.workload(0xBE9C);
    Experiments::prepare(workload, NmpPakAssembler::default())
        .expect("experiment preparation succeeds on synthetic workloads")
}

/// Formats a percentage for table output.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_prepares() {
        let exp = prepare_experiments(BenchScale::Quick);
        assert!(exp.trace.iteration_count() > 0);
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        assert_eq!(BenchScale::from_env(), BenchScale::Quick);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4397), "44.0%");
    }
}
