//! Pre-refactor reference implementations of assembly steps B and C.
//!
//! These reproduce, through public APIs only, the hot path this repository shipped
//! before the packed-u64 refactor (see `DESIGN.md`): a *serial* k-way merge and
//! run-length count that reconstructs every distinct k-mer base-by-base, and a
//! `BTreeMap`-based MacroNode construction with per-entry allocation and
//! linear-probe extension bumping. The `experiments` binary times them against the
//! current pipeline and records the speedup in `BENCH_pipeline.json`, so every
//! later PR has a measured trajectory rather than a claimed one.
//!
//! They are benchmark fixtures, not supported assembly entry points: both must
//! keep producing output identical to the optimized pipeline (asserted by this
//! module's tests), but nothing else in the workspace may call them.

use nmp_pak_genome::{Base, Kmer, SequencingRead};
use nmp_pak_pakman::{CountedKmer, MacroNode, PakGraph};
use std::collections::BTreeMap;

/// Pre-refactor step B: parallel extraction and per-thread sort (the seed already
/// had §4.5 (a)–(c)), followed by a serial pairwise merge, a serial run-length
/// count, and per-base k-mer reconstruction.
pub fn count_kmers_baseline(
    reads: &[SequencingRead],
    k: usize,
    min_count: u32,
    threads: usize,
) -> Vec<CountedKmer> {
    let threads = threads.clamp(1, reads.len().max(1));
    let chunk_size = reads.len().div_ceil(threads).max(1);
    let mut runs: Vec<Vec<u64>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in reads.chunks(chunk_size) {
            handles.push(scope.spawn(move || {
                let capacity: usize = chunk.iter().map(|r| r.len().saturating_sub(k - 1)).sum();
                let mut local = Vec::with_capacity(capacity);
                for read in chunk {
                    if read.len() < k {
                        continue;
                    }
                    for kmer in Kmer::iter_windows(read.sequence(), k).expect("length checked") {
                        local.push(kmer.packed());
                    }
                }
                local.sort_unstable();
                local
            }));
        }
        for handle in handles {
            runs.push(handle.join().expect("extraction worker panicked"));
        }
    });

    // Serial pairwise merge — the single-threaded funnel the refactor removed.
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two_serial(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    let merged = runs.pop().unwrap_or_default();

    // Serial run-length count with base-by-base k-mer reconstruction.
    let mut counted = Vec::new();
    let mut i = 0usize;
    while i < merged.len() {
        let value = merged[i];
        let mut j = i + 1;
        while j < merged.len() && merged[j] == value {
            j += 1;
        }
        let count = (j - i) as u32;
        if count >= min_count {
            counted.push(CountedKmer {
                kmer: kmer_from_packed_per_base(value, k),
                count,
            });
        }
        i = j;
    }
    counted
}

/// The per-base reconstruction loop the refactor replaced with `Kmer::from_packed`.
fn kmer_from_packed_per_base(packed: u64, k: usize) -> Kmer {
    let bases = (0..k).map(|i| {
        let shift = 2 * (k - 1 - i);
        Base::from_code(((packed >> shift) & 0b11) as u8)
    });
    Kmer::from_bases(bases).expect("k validated by caller")
}

fn merge_two_serial(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Pre-refactor step C: accumulate extensions in a `BTreeMap<Kmer, Pending>` with
/// one heap entry per (k-1)-mer and linear-probe extension bumping.
pub fn build_graph_baseline(counted: &[CountedKmer], k: usize) -> PakGraph {
    #[derive(Default)]
    struct Pending {
        prefixes: Vec<(Base, u32)>,
        suffixes: Vec<(Base, u32)>,
    }
    fn bump(list: &mut Vec<(Base, u32)>, base: Base, count: u32) {
        match list.iter_mut().find(|(b, _)| *b == base) {
            Some((_, c)) => *c += count,
            None => list.push((base, count)),
        }
    }

    let mut pending: BTreeMap<Kmer, Pending> = BTreeMap::new();
    for ck in counted {
        let kmer = ck.kmer;
        bump(
            &mut pending.entry(kmer.suffix_k1()).or_default().prefixes,
            kmer.first_base(),
            ck.count,
        );
        bump(
            &mut pending.entry(kmer.prefix_k1()).or_default().suffixes,
            kmer.last_base(),
            ck.count,
        );
    }

    let nodes: Vec<MacroNode> = pending
        .into_iter()
        .map(|(k1mer, p)| MacroNode::from_extensions(k1mer, p.prefixes, p.suffixes))
        .collect();
    PakGraph::from_nodes(nodes, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_core::workload::Workload;
    use nmp_pak_pakman::{count_kmers, KmerCounterConfig};

    /// The baseline is only a valid speedup denominator while it still produces the
    /// same assembly state as the optimized pipeline.
    #[test]
    fn baseline_matches_optimized_pipeline() {
        let workload = Workload::synthesize("baseline_check", 5_000, 15.0, 0.001, 7).unwrap();
        let k = 17;
        let (optimized, _) = count_kmers(
            &workload.reads,
            KmerCounterConfig {
                k,
                min_count: 2,
                threads: 4,
            },
        )
        .unwrap();
        let baseline = count_kmers_baseline(&workload.reads, k, 2, 4);
        assert_eq!(optimized, baseline);

        let opt_graph = PakGraph::from_counted_kmers(&optimized, k, 4);
        let base_graph = build_graph_baseline(&baseline, k);
        assert_eq!(opt_graph.slot_count(), base_graph.slot_count());
        for slot in 0..opt_graph.slot_count() {
            assert_eq!(opt_graph.node(slot), base_graph.node(slot), "slot {slot}");
        }
    }
}
