//! Pre-refactor reference implementations of assembly steps B, C and D.
//!
//! These reproduce, through public APIs only, the hot paths this repository shipped
//! before the packed-u64 and frontier-compaction refactors (see `DESIGN.md`): a
//! *serial* k-way merge and run-length count that reconstructs every distinct
//! k-mer base-by-base, a `BTreeMap`-based MacroNode construction with per-entry
//! allocation and linear-probe extension bumping, and a full-scan Iterative
//! Compaction whose P2/P3 stages run serially and whose neighbour iteration
//! aggregates extensions with an O(n²) dedupe and a `to_string()`-per-comparison
//! sort. The `experiments` binary times them against the current pipeline and
//! records the speedups in `BENCH_pipeline.json`, so every later PR has a
//! measured trajectory rather than a claimed one.
//!
//! They are benchmark fixtures, not supported assembly entry points: all of them
//! must keep producing output identical to the optimized pipeline (asserted by
//! this module's tests), but nothing else in the workspace may call them.

use nmp_pak_genome::{Base, DnaString, Kmer, SequencingRead};
use nmp_pak_pakman::transfer::TransferSide;
use nmp_pak_pakman::{
    CompactionStats, CompactionTrace, CountedKmer, IterationStats, IterationTrace, MacroNode,
    NodeCheck, PakGraph, PakmanConfig, SizeHistogram, TransferEvent, TransferNode, UpdateEvent,
};
use std::collections::BTreeMap;

/// Pre-refactor step B: parallel extraction and per-thread sort (the seed already
/// had §4.5 (a)–(c)), followed by a serial pairwise merge, a serial run-length
/// count, and per-base k-mer reconstruction.
pub fn count_kmers_baseline(
    reads: &[SequencingRead],
    k: usize,
    min_count: u32,
    threads: usize,
) -> Vec<CountedKmer> {
    let threads = threads.clamp(1, reads.len().max(1));
    let chunk_size = reads.len().div_ceil(threads).max(1);
    let mut runs: Vec<Vec<u64>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk in reads.chunks(chunk_size) {
            handles.push(scope.spawn(move || {
                let capacity: usize = chunk.iter().map(|r| r.len().saturating_sub(k - 1)).sum();
                let mut local = Vec::with_capacity(capacity);
                for read in chunk {
                    if read.len() < k {
                        continue;
                    }
                    for kmer in Kmer::iter_windows(read.sequence(), k).expect("length checked") {
                        local.push(kmer.packed());
                    }
                }
                local.sort_unstable();
                local
            }));
        }
        for handle in handles {
            runs.push(handle.join().expect("extraction worker panicked"));
        }
    });

    // Serial pairwise merge — the single-threaded funnel the refactor removed.
    runs.retain(|r| !r.is_empty());
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two_serial(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    let merged = runs.pop().unwrap_or_default();

    // Serial run-length count with base-by-base k-mer reconstruction.
    let mut counted = Vec::new();
    let mut i = 0usize;
    while i < merged.len() {
        let value = merged[i];
        let mut j = i + 1;
        while j < merged.len() && merged[j] == value {
            j += 1;
        }
        let count = (j - i) as u32;
        if count >= min_count {
            counted.push(CountedKmer {
                kmer: kmer_from_packed_per_base(value, k),
                count,
            });
        }
        i = j;
    }
    counted
}

/// The per-base reconstruction loop the refactor replaced with `Kmer::from_packed`.
fn kmer_from_packed_per_base(packed: u64, k: usize) -> Kmer {
    let bases = (0..k).map(|i| {
        let shift = 2 * (k - 1 - i);
        Base::from_code(((packed >> shift) & 0b11) as u8)
    });
    Kmer::from_bases(bases).expect("k validated by caller")
}

fn merge_two_serial(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Pre-refactor step C: accumulate extensions in a `BTreeMap<Kmer, Pending>` with
/// one heap entry per (k-1)-mer and linear-probe extension bumping.
pub fn build_graph_baseline(counted: &[CountedKmer], k: usize) -> PakGraph {
    #[derive(Default)]
    struct Pending {
        prefixes: Vec<(Base, u32)>,
        suffixes: Vec<(Base, u32)>,
    }
    fn bump(list: &mut Vec<(Base, u32)>, base: Base, count: u32) {
        match list.iter_mut().find(|(b, _)| *b == base) {
            Some((_, c)) => *c += count,
            None => list.push((base, count)),
        }
    }

    let mut pending: BTreeMap<Kmer, Pending> = BTreeMap::new();
    for ck in counted {
        let kmer = ck.kmer;
        bump(
            &mut pending.entry(kmer.suffix_k1()).or_default().prefixes,
            kmer.first_base(),
            ck.count,
        );
        bump(
            &mut pending.entry(kmer.prefix_k1()).or_default().suffixes,
            kmer.last_base(),
            ck.count,
        );
    }

    let nodes: Vec<MacroNode> = pending
        .into_iter()
        .map(|(k1mer, p)| MacroNode::from_extensions(k1mer, p.prefixes, p.suffixes))
        .collect();
    PakGraph::from_nodes(nodes, k)
}

/// Pre-refactor step D: full-scan Iterative Compaction with serial P2/P3 and
/// allocating neighbour iteration.
///
/// This is a faithful vendoring of the `compact()` this repository shipped
/// before the frontier refactor: every iteration re-checks every alive node
/// (P1, parallel over `config.threads`), extracts and invalidates serially
/// (P2), and resolves + applies every TransferNode on the calling thread (P3),
/// allocating its check vectors, transfer list and touched bitmap per
/// iteration. The invalidation check aggregates extensions through the seed's
/// O(n²) linear-scan dedupe with a `to_string()`-per-comparison sort, then
/// spells each neighbour's (k-1)-mer through an intermediate `DnaString`.
///
/// Returns the statistics and (when `config.record_trace` is set) the trace; the
/// current engine must reproduce both bit for bit, which is asserted by this
/// module's tests and re-checked by every benchmark run.
pub fn compact_baseline(
    graph: &mut PakGraph,
    config: &PakmanConfig,
) -> (CompactionStats, Option<CompactionTrace>) {
    let initial_nodes = graph.alive_count();
    let mut trace = config.record_trace.then(|| {
        let mut sizes = vec![0usize; graph.slot_count()];
        for (slot, node) in graph.iter_alive() {
            sizes[slot] = node.size_bytes();
        }
        CompactionTrace::new(graph.slot_count(), sizes)
    });

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };

    for iteration in 0..config.max_compaction_iterations {
        let alive_before = graph.alive_count();
        if alive_before <= config.compaction_node_threshold {
            stats.converged = true;
            break;
        }

        // ---- Stage P1: full-scan invalidation check ----
        let checks = run_invalidation_checks_baseline(graph, config.threads);
        let mut histogram = SizeHistogram::new();
        for check in &checks {
            histogram.record(check.size_bytes);
        }
        let invalidated_slots: Vec<usize> = checks
            .iter()
            .filter(|c| c.invalidated)
            .map(|c| c.slot)
            .collect();

        if invalidated_slots.is_empty() {
            stats.iterations.push(IterationStats {
                iteration,
                alive_before,
                invalidated: 0,
                transfers: 0,
                unmatched_transfers: 0,
                histogram,
            });
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(IterationTrace {
                    checks,
                    transfers: Vec::new(),
                    updates: Vec::new(),
                });
            }
            stats.converged = true;
            break;
        }

        // ---- Stage P2: serial extraction + invalidation ----
        let mut transfers: Vec<(usize, TransferNode)> = Vec::new();
        for &slot in &invalidated_slots {
            let node = graph.node(slot).expect("invalidated slot was alive");
            for t in TransferNode::extract_all(node) {
                transfers.push((slot, t));
            }
            graph.invalidate(slot);
        }

        // ---- Stage P3: serial routing and destination update ----
        let mut transfer_events = Vec::with_capacity(transfers.len());
        let mut touched = vec![false; graph.slot_count()];
        let mut touched_order: Vec<usize> = Vec::new();
        let mut unmatched = 0usize;
        for (source_slot, transfer) in &transfers {
            match graph.index_of(&transfer.destination) {
                Some(dest_slot) => {
                    transfer_events.push(TransferEvent {
                        source_slot: *source_slot,
                        dest_slot,
                        size_bytes: transfer.size_bytes(),
                    });
                    let dest = graph.node_mut(dest_slot).expect("destination is alive");
                    if apply_transfer_baseline(dest, transfer) {
                        if !touched[dest_slot] {
                            touched[dest_slot] = true;
                            touched_order.push(dest_slot);
                        }
                    } else {
                        unmatched += 1;
                    }
                }
                None => unmatched += 1,
            }
        }

        let updates: Vec<UpdateEvent> = touched_order
            .iter()
            .map(|&dest_slot| UpdateEvent {
                dest_slot,
                size_bytes: graph
                    .node(dest_slot)
                    .map(MacroNode::size_bytes)
                    .unwrap_or(0),
            })
            .collect();

        stats.total_transfers += transfers.len();
        stats.iterations.push(IterationStats {
            iteration,
            alive_before,
            invalidated: invalidated_slots.len(),
            transfers: transfers.len(),
            unmatched_transfers: unmatched,
            histogram,
        });
        if let Some(trace) = trace.as_mut() {
            trace.iterations.push(IterationTrace {
                checks,
                transfers: transfer_events,
                updates,
            });
        }
    }

    stats.final_nodes = graph.alive_count();
    if graph.alive_count() <= config.compaction_node_threshold {
        stats.converged = true;
    }
    (stats, trace)
}

/// The pre-refactor P1 scan: one check per alive node, chunked over scoped
/// threads, collecting into freshly allocated per-thread vectors.
fn run_invalidation_checks_baseline(graph: &PakGraph, threads: usize) -> Vec<NodeCheck> {
    let slots: Vec<usize> = graph.iter_alive().map(|(slot, _)| slot).collect();
    let threads = threads.max(1).min(slots.len().max(1));
    if threads <= 1 || slots.len() < 64 {
        return slots
            .iter()
            .map(|&slot| check_one_baseline(graph, slot))
            .collect();
    }

    let chunk = slots.len().div_ceil(threads);
    let mut results: Vec<NodeCheck> = Vec::with_capacity(slots.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in slots.chunks(chunk) {
            handles.push(scope.spawn(move || {
                part.iter()
                    .map(|&slot| check_one_baseline(graph, slot))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            results.extend(handle.join().expect("invalidation-check worker panicked"));
        }
    });
    results
}

fn check_one_baseline(graph: &PakGraph, slot: usize) -> NodeCheck {
    let node = graph.node(slot).expect("slot is alive");
    NodeCheck {
        slot,
        size_bytes: node.size_bytes(),
        invalidated: is_invalidation_target_baseline(graph, node),
    }
}

/// The pre-refactor invalidation check: aggregate the distinct prefix/suffix
/// extensions (O(n²) dedupe, `to_string()` sort), spell each neighbour
/// (k-1)-mer through an intermediate `DnaString`, sort and dedup the neighbour
/// lists, then compare.
fn is_invalidation_target_baseline(graph: &PakGraph, node: &MacroNode) -> bool {
    if !node.is_fully_interior() {
        return false;
    }
    let own = node.k1mer();
    let k1_len = own.k();
    let predecessors: Vec<Kmer> = {
        let mut out: Vec<Kmer> = aggregate_baseline(
            node.paths()
                .iter()
                .filter_map(|p| p.prefix.as_ref().map(|e| (e.clone(), p.count))),
        )
        .iter()
        .map(|(prefix, _)| {
            let mut spell = DnaString::with_capacity(prefix.len() + k1_len);
            spell.extend_from(prefix);
            spell.extend(own.to_dna_string().iter());
            Kmer::from_dna(&spell, 0, k1_len).expect("spell long enough")
        })
        .collect();
        out.sort();
        out.dedup();
        out
    };
    let successors: Vec<Kmer> = {
        let mut out: Vec<Kmer> = aggregate_baseline(
            node.paths()
                .iter()
                .filter_map(|p| p.suffix.as_ref().map(|e| (e.clone(), p.count))),
        )
        .iter()
        .map(|(suffix, _)| {
            let mut spell = DnaString::with_capacity(suffix.len() + k1_len);
            spell.extend(own.to_dna_string().iter());
            spell.extend_from(suffix);
            Kmer::from_dna(&spell, spell.len() - k1_len, k1_len).expect("spell long enough")
        })
        .collect();
        out.sort();
        out.dedup();
        out
    };

    let mut neighbour_count = 0usize;
    for neighbour in predecessors.into_iter().chain(successors) {
        if !graph.contains(&neighbour) {
            return false;
        }
        neighbour_count += 1;
        if neighbour >= own {
            return false;
        }
    }
    neighbour_count > 0
}

/// The seed's extension aggregation: linear-scan dedupe (O(n²)) and a sort whose
/// comparator stringifies both sides on every call.
fn aggregate_baseline<I: Iterator<Item = (DnaString, u32)>>(items: I) -> Vec<(DnaString, u32)> {
    let mut out: Vec<(DnaString, u32)> = Vec::new();
    for (ext, count) in items {
        match out.iter_mut().find(|(e, _)| *e == ext) {
            Some((_, c)) => *c += count,
            None => out.push((ext, count)),
        }
    }
    out.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    out
}

/// The pre-refactor TransferNode application (unchanged semantics; vendored so
/// the baseline is self-contained).
fn apply_transfer_baseline(dest: &mut MacroNode, transfer: &TransferNode) -> bool {
    let mut remaining = transfer.count;
    let mut new_paths = Vec::new();
    let paths = dest.paths_mut();

    for path in paths.iter_mut() {
        if remaining == 0 {
            break;
        }
        let matches = match transfer.side {
            TransferSide::Predecessor => path.suffix.as_ref() == Some(&transfer.match_ext),
            TransferSide::Successor => path.prefix.as_ref() == Some(&transfer.match_ext),
        };
        if !matches {
            continue;
        }
        let take = path.count.min(remaining);
        if take == path.count {
            match transfer.side {
                TransferSide::Predecessor => path.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => path.prefix = Some(transfer.new_ext.clone()),
            }
        } else {
            path.count -= take;
            let mut split = path.clone();
            split.count = take;
            match transfer.side {
                TransferSide::Predecessor => split.suffix = Some(transfer.new_ext.clone()),
                TransferSide::Successor => split.prefix = Some(transfer.new_ext.clone()),
            }
            new_paths.push(split);
        }
        remaining -= take;
    }

    paths.extend(new_paths);
    remaining < transfer.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_core::workload::Workload;
    use nmp_pak_pakman::{count_kmers, KmerCounterConfig};

    /// The baseline is only a valid speedup denominator while it still produces the
    /// same assembly state as the optimized pipeline.
    #[test]
    fn baseline_matches_optimized_pipeline() {
        let workload = Workload::synthesize("baseline_check", 5_000, 15.0, 0.001, 7).unwrap();
        let k = 17;
        let (optimized, _) = count_kmers(
            &workload.reads,
            KmerCounterConfig {
                k,
                min_count: 2,
                threads: 4,
            },
        )
        .unwrap();
        let baseline = count_kmers_baseline(&workload.reads, k, 2, 4);
        assert_eq!(optimized, baseline);

        let opt_graph = PakGraph::from_counted_kmers(&optimized, k, 4);
        let base_graph = build_graph_baseline(&baseline, k);
        assert_eq!(opt_graph.slot_count(), base_graph.slot_count());
        for slot in 0..opt_graph.slot_count() {
            assert_eq!(opt_graph.node(slot), base_graph.node(slot), "slot {slot}");
        }
    }
}
