//! Recipe-sweep support: the vendored-baseline [`MetricProbe`] plus the
//! report printing/writing used by `experiments sweep`.
//!
//! The probe computes the `speedup.*`/overhead metrics the historical
//! `NMP_PAK_BENCH_*` gates read — current engines timed against the vendored
//! pre-refactor baselines (`crate::baseline`) — but only for the metrics the
//! recipe's gates actually reference, so sweeps without timing gates (e.g.
//! `fig12`) pay nothing.

use crate::baseline::{build_graph_baseline, compact_baseline, count_kmers_baseline};
use crate::pipeline_bench::pipelined_critical_path;
use nmp_pak_core::Workload;
use nmp_pak_pakman::{
    compact_sharded, compact_with_scratch, count_kmers, count_kmers_spilled, BatchAssembler,
    BatchSchedule, CompactionScratch, KmerCounterConfig, PakGraph, PakmanConfig, ShardedGraph,
    SpillConfig,
};
use nmp_pak_recipe::{metric, CellOutput, MetricProbe, Recipe, RecipeError, ScenarioSpec};
use nmp_pak_recipe::{Executor, SweepReport};
use std::time::Instant;

/// Spill partition count used by the probe's standalone overhead timing
/// (matches the hand-rolled spill bench).
const SWEEP_SPILL_PARTITIONS: usize = 8;

/// [`MetricProbe`] over the vendored pre-refactor baselines.
#[derive(Debug, Clone, Copy)]
pub struct BaselineProbe {
    /// Timing repetitions per measurement (best-of). At least 1.
    pub reps: usize,
}

impl Default for BaselineProbe {
    fn default() -> BaselineProbe {
        BaselineProbe { reps: 2 }
    }
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn seconds(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

impl MetricProbe for BaselineProbe {
    fn cell_metrics(
        &self,
        wants: &[String],
        spec: &ScenarioSpec,
        workload: &Workload,
        _output: &CellOutput,
    ) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        let want = |m: &str| wants.iter().any(|w| w == m);
        let config = spec.pakman_config();
        let untraced = PakmanConfig {
            record_trace: false,
            ..config
        };
        let reps = self.reps.max(1);

        let needs_counted = want(metric::SPEEDUP_COUNTING_PLUS_CONSTRUCTION)
            || want(metric::SPEEDUP_COMPACTION)
            || (want(metric::SHARDED_OVERHEAD_AT_ONE) && spec.shards == 1);
        if needs_counted {
            let Ok((counted, _)) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
            else {
                return out;
            };

            if want(metric::SPEEDUP_COUNTING_PLUS_CONSTRUCTION) {
                let current = best_of(reps, || {
                    seconds(|| {
                        let (c, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
                            .expect("counting succeeded above");
                        let _ = PakGraph::from_counted_kmers(&c, config.k, config.threads);
                    })
                });
                let baseline = best_of(reps, || {
                    seconds(|| {
                        let c = count_kmers_baseline(
                            &workload.reads,
                            config.k,
                            config.min_kmer_count,
                            config.threads,
                        );
                        let _ = build_graph_baseline(&c, config.k);
                    })
                });
                out.push((
                    metric::SPEEDUP_COUNTING_PLUS_CONSTRUCTION.to_string(),
                    baseline / current.max(1e-9),
                ));
            }

            if want(metric::SPEEDUP_COMPACTION) || want(metric::SHARDED_OVERHEAD_AT_ONE) {
                let reference = PakGraph::from_counted_kmers(&counted, config.k, config.threads);
                let mut scratch = CompactionScratch::new();
                let current = best_of(reps, || {
                    let mut graph = reference.clone();
                    seconds(|| {
                        let _ = compact_with_scratch(&mut graph, &untraced, &mut scratch);
                    })
                });

                if want(metric::SPEEDUP_COMPACTION) {
                    let baseline = best_of(reps, || {
                        let mut graph = reference.clone();
                        seconds(|| {
                            let _ = compact_baseline(&mut graph, &untraced);
                        })
                    });
                    out.push((
                        metric::SPEEDUP_COMPACTION.to_string(),
                        baseline / current.max(1e-9),
                    ));
                }

                if want(metric::SHARDED_OVERHEAD_AT_ONE) && spec.shards == 1 {
                    let sharded = best_of(reps, || {
                        let mut graph = ShardedGraph::from_single(reference.clone());
                        seconds(|| {
                            let _ = compact_sharded(&mut graph, &untraced);
                        })
                    });
                    out.push((
                        metric::SHARDED_OVERHEAD_AT_ONE.to_string(),
                        sharded / current.max(1e-9),
                    ));
                }
            }
        }

        if want(metric::SPILL_OVERHEAD) {
            if let Some(budget) = spec.spill_budget {
                let spill_config = SpillConfig::bounded(budget);
                let in_memory = best_of(reps, || {
                    seconds(|| {
                        let _ = count_kmers(&workload.reads, KmerCounterConfig::from(&config));
                    })
                });
                let spilled = best_of(reps, || {
                    seconds(|| {
                        let _ = count_kmers_spilled(
                            &workload.reads,
                            KmerCounterConfig::from(&config),
                            &spill_config,
                            SWEEP_SPILL_PARTITIONS,
                        );
                    })
                });
                out.push((
                    metric::SPILL_OVERHEAD.to_string(),
                    spilled / in_memory.max(1e-9),
                ));
            }
        }

        if (want(metric::CRITICAL_PATH_SPEEDUP) || want(metric::PIPELINED_CRITICAL_PATH_SPEEDUP))
            && spec.schedule.is_batched()
        {
            let (fraction, _) = spec
                .schedule
                .to_batch()
                .expect("batched schedules map to a batch plan");
            let Ok(sequential) =
                BatchAssembler::with_schedule(untraced, fraction, BatchSchedule::Sequential)
                    .assemble(&workload.reads)
            else {
                return out;
            };
            let sequential_cp: f64 = sequential
                .batch_timings
                .iter()
                .map(|t| t.total().as_secs_f64())
                .sum();
            if want(metric::CRITICAL_PATH_SPEEDUP) {
                let overlapped = pipelined_critical_path(&sequential.batch_timings, 1);
                out.push((
                    metric::CRITICAL_PATH_SPEEDUP.to_string(),
                    sequential_cp / overlapped.as_secs_f64().max(1e-9),
                ));
            }
            if want(metric::PIPELINED_CRITICAL_PATH_SPEEDUP) {
                let pipelined =
                    pipelined_critical_path(&sequential.batch_timings, spec.schedule.depth());
                out.push((
                    metric::PIPELINED_CRITICAL_PATH_SPEEDUP.to_string(),
                    sequential_cp / pipelined.as_secs_f64().max(1e-9),
                ));
            }
        }

        out
    }
}

/// How `experiments sweep` executes cells.
#[derive(Debug, Clone, Copy)]
pub enum SweepMode {
    /// Every cell in-process.
    Local,
    /// Unique one-shot runs as concurrent job-server jobs.
    Server {
        /// Worker threads in the server pool.
        workers: usize,
    },
}

/// Runs a recipe with the vendored-baseline probe attached.
///
/// # Errors
///
/// Propagates [`RecipeError`] from enumeration and execution; gate violations
/// are reported in the returned [`SweepReport`], not as errors.
pub fn run_sweep(recipe: &Recipe, mode: SweepMode) -> Result<SweepReport, RecipeError> {
    let executor = match mode {
        SweepMode::Local => Executor::local(),
        SweepMode::Server { workers } => Executor::via_server(workers, None),
    };
    executor.with_probe(BaselineProbe::default()).run(recipe)
}

/// Prints the per-cell matrix and gate verdicts to stdout.
pub fn print_report(report: &SweepReport) {
    println!("sweep `{}` — {}", report.recipe, report.description);
    println!("  {} cell(s):", report.cells.len());
    for cell in &report.cells {
        let highlights: Vec<String> = cell
            .metrics
            .iter()
            .filter(|(name, _)| {
                report.gates.iter().any(|g| g.metric == *name)
                    || name == metric::WALL_S
                    || name == metric::N50
            })
            .map(|(name, value)| format!("{name}={value:.4}"))
            .collect();
        println!("    {}  {}", cell.label, highlights.join("  "));
    }
    println!("  {} gate(s):", report.gates.len());
    for gate in &report.gates {
        let verdict = if gate.passed { "PASS" } else { "FAIL" };
        let observed = match gate.observed {
            Some(v) => format!("{v:.4}"),
            None => "n/a".to_string(),
        };
        println!(
            "    [{verdict}] {} (observed {observed} over {} cell(s); {})",
            gate.description, gate.cells_checked, gate.detail
        );
    }
}

/// Writes the report's JSON matrix to `path`.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_report(report: &SweepReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}
