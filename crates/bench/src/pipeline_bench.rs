//! Reproducible end-to-end pipeline benchmark (`BENCH_pipeline.json`).
//!
//! Runs the full assembly pipeline on a fixed-seed synthetic workload (20 kbp
//! genome, 30× coverage, k = 21) and times, in the same process and on the same
//! inputs, the pre-refactor baseline implementations of steps B and C from
//! [`crate::baseline`]. The report is written as hand-rolled JSON (no serde in the
//! offline environment) so later PRs have a recorded perf trajectory to beat.

use crate::baseline::{build_graph_baseline, compact_baseline, count_kmers_baseline};
use nmp_pak_core::workload::Workload;
use nmp_pak_nmphw::{ChannelLoadStats, NmpSystem};
use nmp_pak_pakman::{
    compact_sharded, compact_with_scratch, count_kmers, count_kmers_spilled, AssemblyOutput,
    BatchAssembler, BatchSchedule, CompactionMode, CompactionProfile, CompactionScratch,
    KmerCounterConfig, PakGraph, PakmanAssembler, PakmanConfig, ShardSchedule, ShardedGraph,
    ShardingTelemetry, SpillConfig, SpillTelemetry,
};
use std::time::{Duration, Instant};

/// Fixed workload parameters for the benchmark (kept stable across PRs so the
/// recorded numbers stay comparable).
pub const BENCH_GENOME_LENGTH: usize = 20_000;
/// Coverage of the benchmark read set.
pub const BENCH_COVERAGE: f64 = 30.0;
/// k-mer length used by the benchmark.
pub const BENCH_K: usize = 21;
/// Seed for the benchmark workload.
pub const BENCH_SEED: u64 = 0xBEC4;
/// Batch fraction of the multi-batch streaming comparison (0.25 → 4 batches).
pub const BENCH_BATCH_FRACTION: f64 = 0.25;
/// In-flight window depth of the benchmarked k-deep pipelined schedule.
pub const BENCH_PIPELINE_DEPTH: usize = 3;
/// Shard counts swept by the sharded-execution benchmark (1 is the overhead
/// probe; 8 matches the paper's channel count).
pub const BENCH_SHARD_COUNTS: [usize; 3] = [1, 4, 8];
/// Shard count of the async-schedule comparison (the paper's channel count;
/// owner-hashing at 8 shards leaves a measurably skewed per-shard load, the
/// regime where dropping the barrier pays).
pub const BENCH_ASYNC_SHARDS: usize = 8;
/// Resident-byte budget of the external-memory counting benchmark — small
/// enough that the standard workload (≈ 600 k extracted k-mers ≈ 4.8 MB) must
/// evict and merge repeatedly, the regime the spill path exists for.
pub const BENCH_SPILL_BUDGET_BYTES: u64 = 256 * 1024;
/// Disk partitions of the spill benchmark (the paper's 8-channel owner map).
pub const BENCH_SPILL_PARTITIONS: usize = 8;

/// One timed phase pair: optimized vs pre-refactor baseline.
#[derive(Debug, Clone, Copy)]
pub struct PhaseComparison {
    /// Current-pipeline wall clock.
    pub optimized: Duration,
    /// Pre-refactor wall clock on identical inputs.
    pub baseline: Duration,
}

impl PhaseComparison {
    /// baseline / optimized (higher is better; 1.0 means no change).
    pub fn speedup(&self) -> f64 {
        let opt = self.optimized.as_secs_f64();
        if opt == 0.0 {
            return f64::INFINITY;
        }
        self.baseline.as_secs_f64() / opt
    }
}

/// Wall-clock comparison of the two batch schedules on the same multi-batch
/// workload (the §4.4/§4.5 overlapped process flow vs the sequential-stage one).
///
/// Two views are recorded:
///
/// * the **measured** end-to-end wall clocks of both schedules on this host —
///   meaningful when ≥ 2 cores are available; a single-core host serializes both
///   schedules onto one CPU, so the measured numbers show parity there;
/// * the **critical paths** derived from the measured per-batch stage timings —
///   the wall clock each schedule needs when the two pipeline halves do not
///   compete for a core, which is the paper's deployment (Iterative Compaction
///   on the NMP hardware while the host counts the next batch, Fig. 2).
#[derive(Debug, Clone, Copy)]
pub struct BatchStreamingComparison {
    /// Number of batches in the plan.
    pub batches: usize,
    /// Measured end-to-end wall clock of [`BatchSchedule::Sequential`].
    pub sequential: Duration,
    /// Measured end-to-end wall clock of [`BatchSchedule::Overlapped`].
    pub overlapped: Duration,
    /// Measured end-to-end wall clock of [`BatchSchedule::Pipelined`] at depth
    /// [`BENCH_PIPELINE_DEPTH`].
    pub pipelined: Duration,
    /// Critical path of the sequential schedule: the sum of every batch's
    /// measured A–E stage times.
    pub sequential_critical_path: Duration,
    /// Critical path of the overlapped schedule over the same measured stage
    /// times: `front₀ + Σ max(backᵢ, frontᵢ₊₁) + back_{n-1}`, the two-deep
    /// software pipeline with non-competing halves.
    pub overlapped_critical_path: Duration,
    /// Critical path of the k-deep pipelined schedule (depth
    /// [`BENCH_PIPELINE_DEPTH`]) over the same measured stage times, with
    /// non-competing fronts — never longer than the overlapped critical path.
    pub pipelined_critical_path: Duration,
    /// Hardware threads the scheduler had available (the measured overlap win
    /// requires ≥ 2 — on a single-core host both schedules serialize).
    pub available_cores: usize,
}

impl BatchStreamingComparison {
    /// Measured sequential / overlapped wall clock (higher is better; 1.0 means
    /// no measured overlap win).
    pub fn overlap_speedup(&self) -> f64 {
        let overlapped = self.overlapped.as_secs_f64();
        if overlapped == 0.0 {
            return f64::INFINITY;
        }
        self.sequential.as_secs_f64() / overlapped
    }

    /// Critical-path sequential / overlapped ratio: the overlap win with
    /// non-competing pipeline halves. Strictly above 1.0 for ≥ 2 batches with
    /// non-trivial stage times.
    pub fn critical_path_speedup(&self) -> f64 {
        let overlapped = self.overlapped_critical_path.as_secs_f64();
        if overlapped == 0.0 {
            return f64::INFINITY;
        }
        self.sequential_critical_path.as_secs_f64() / overlapped
    }

    /// Critical-path sequential / pipelined ratio for the k-deep schedule —
    /// at least [`BatchStreamingComparison::critical_path_speedup`], since a
    /// deeper window can only admit fronts earlier.
    pub fn pipelined_critical_path_speedup(&self) -> f64 {
        let pipelined = self.pipelined_critical_path.as_secs_f64();
        if pipelined == 0.0 {
            return f64::INFINITY;
        }
        self.sequential_critical_path.as_secs_f64() / pipelined
    }
}

/// Wall-clock comparison of the Iterative Compaction engines on the same
/// constructed graph: the vendored pre-refactor serial-P2/P3 full-scan
/// compactor ([`compact_baseline`]), the current engine forced to
/// [`CompactionMode::FullScan`], and the current engine in its default
/// [`CompactionMode::Frontier`]. All three produce bit-identical statistics,
/// traces, and graphs — asserted on every run — so only the wall clock and the
/// checked-node ledger differ.
#[derive(Debug, Clone)]
pub struct CompactionComparison {
    /// Pre-refactor compactor wall clock (best of reps).
    pub baseline: Duration,
    /// Current engine, full-scan P1 (parallel P2/P3, allocation-free checks).
    pub full_scan: Duration,
    /// Current engine, frontier P1 (the shipped default).
    pub frontier: Duration,
    /// Per-iteration stage times and checked-node counts of the frontier run.
    pub frontier_profile: CompactionProfile,
    /// Per-iteration profile of the full-scan run (checked == alive).
    pub full_scan_profile: CompactionProfile,
    /// Worker threads used by all three engines.
    pub threads: usize,
}

impl CompactionComparison {
    /// baseline / frontier — the headline `speedup.compaction` (higher is better).
    pub fn speedup(&self) -> f64 {
        let frontier = self.frontier.as_secs_f64();
        if frontier == 0.0 {
            return f64::INFINITY;
        }
        self.baseline.as_secs_f64() / frontier
    }

    /// full-scan / frontier: the share of the win attributable to the dirty-set
    /// tracking alone (both sides use the parallel P2/P3 and the
    /// allocation-free checks).
    pub fn frontier_vs_full_scan(&self) -> f64 {
        let frontier = self.frontier.as_secs_f64();
        if frontier == 0.0 {
            return f64::INFINITY;
        }
        self.full_scan.as_secs_f64() / frontier
    }

    /// `true` when every post-iteration-0 frontier iteration evaluated strictly
    /// fewer predicates than the alive census a full scan pays.
    pub fn frontier_strictly_narrower(&self) -> bool {
        self.frontier_profile.iterations.len() > 1
            && self.frontier_profile.iterations[1..]
                .iter()
                .all(|it| it.checked_nodes < it.alive_nodes)
    }
}

/// One sharded-execution measurement: the sharded compactor at a given shard
/// count on the benchmark graph, with its measured telemetry folded onto the
/// 8-channel NMP model.
#[derive(Debug, Clone)]
pub struct ShardingRun {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall clock of `compact_sharded` (best of reps) on the pre-built graph.
    pub wall: Duration,
    /// Telemetry of the fastest run (deterministic across runs).
    pub telemetry: ShardingTelemetry,
    /// The telemetry folded onto the NMP channels (measured per-channel load
    /// and intra- vs cross-channel mailbox traffic).
    pub channel_load: ChannelLoadStats,
}

/// Wall-clock and traffic comparison of sharded versus single-graph execution
/// of Iterative Compaction on the same constructed graph.
///
/// All runs are bit-identical in statistics, trace, and compacted nodes
/// (asserted on every benchmark run); the interesting numbers are the
/// single-shard *overhead* of the sharded engine — the price of the global
/// bookkeeping and the mailbox indirection, gated in CI via
/// `NMP_PAK_BENCH_MAX_SHARD_OVERHEAD` — and the measured per-shard load
/// imbalance and inter-shard traffic at real shard counts.
#[derive(Debug, Clone)]
pub struct ShardingComparison {
    /// Single-graph `compact` wall clock (best of reps) — the baseline.
    pub single_graph: Duration,
    /// One entry per swept shard count ([`BENCH_SHARD_COUNTS`]).
    pub runs: Vec<ShardingRun>,
    /// Worker threads used by every engine.
    pub threads: usize,
}

impl ShardingComparison {
    /// Sharded-at-one-shard wall over single-graph wall — the engine's
    /// bookkeeping overhead (1.0 = free; the CI gate allows 1.15).
    pub fn overhead_at_one(&self) -> f64 {
        let single = self.single_graph.as_secs_f64();
        if single == 0.0 {
            return f64::INFINITY;
        }
        self.runs
            .iter()
            .find(|r| r.shards == 1)
            .map(|r| r.wall.as_secs_f64() / single)
            .unwrap_or(f64::INFINITY)
    }
}

/// Wall-clock and modeled-critical-path comparison of the async shard schedule
/// against lock-step at [`BENCH_ASYNC_SHARDS`] shards on the same constructed
/// graph.
///
/// The two schedules are verified-equivalent — contigs, statistics, and the
/// per-flush mailbox ledger are asserted byte-identical on every benchmark run
/// — so the interesting numbers are the wall clocks and the critical paths
/// rebuilt from the async run's measured per-shard round times: under a
/// lock-step barrier every round costs its slowest shard (`Σ_r max_s`), while
/// the async schedule is paced by the busiest shard's own work (`max_s Σ_r`).
/// The ratio is ≥ 1 by construction and grows with per-shard skew; CI gates it
/// via `NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP`.
#[derive(Debug, Clone)]
pub struct AsyncScheduleComparison {
    /// Shard count of both runs ([`BENCH_ASYNC_SHARDS`]).
    pub shards: usize,
    /// Lock-step `compact_sharded` wall clock (best of reps).
    pub lockstep_wall: Duration,
    /// Async `compact_sharded` wall clock (best of reps).
    pub async_wall: Duration,
    /// Barriered critical path over the async run's measured round times.
    pub lockstep_critical_path: Duration,
    /// Barrier-free critical path over the same measured round times.
    pub async_critical_path: Duration,
    /// Mailbox flushes recorded by the async run (identical to lock-step's).
    pub flushes: usize,
    /// Measured per-shard load imbalance (max/mean of P1 work) — the skew the
    /// barrier pays for.
    pub load_imbalance: f64,
    /// Worker threads used by both engines.
    pub threads: usize,
}

impl AsyncScheduleComparison {
    /// Barriered over barrier-free critical path (≥ 1 by construction; the
    /// gated quantity).
    pub fn critical_path_speedup(&self) -> f64 {
        let async_cp = self.async_critical_path.as_secs_f64();
        if async_cp == 0.0 {
            return f64::INFINITY;
        }
        self.lockstep_critical_path.as_secs_f64() / async_cp
    }

    /// Measured lock-step over async wall clock (noisy on shared hosts; the
    /// critical-path ratio is the stable signal).
    pub fn wall_speedup(&self) -> f64 {
        let async_wall = self.async_wall.as_secs_f64();
        if async_wall == 0.0 {
            return f64::INFINITY;
        }
        self.lockstep_wall.as_secs_f64() / async_wall
    }
}

/// Wall-clock and telemetry comparison of external-memory k-mer counting under
/// [`BENCH_SPILL_BUDGET_BYTES`] versus the unconstrained in-memory counter on
/// identical inputs.
///
/// Both sides produce bit-identical counted streams and statistics — asserted
/// on every run — so the interesting numbers are the wall-clock *overhead* of
/// spilling (gated in CI via `NMP_PAK_BENCH_MAX_SPILL_OVERHEAD`) and the
/// recorded spill telemetry: how many bytes went to disk, how many merge
/// passes the read-back needed, and the resident high-water mark the budget
/// actually enforced.
#[derive(Debug, Clone, Copy)]
pub struct SpillComparison {
    /// Unconstrained in-memory counting wall clock (best of reps).
    pub in_memory: Duration,
    /// Budget-capped spilled counting wall clock (best of reps).
    pub spilled: Duration,
    /// Telemetry of the fastest spilled run (deterministic across runs).
    pub telemetry: SpillTelemetry,
    /// Worker threads used by both counters.
    pub threads: usize,
}

impl SpillComparison {
    /// Spilled / in-memory wall clock (1.0 = free; the CI gate bounds this).
    pub fn overhead(&self) -> f64 {
        let in_memory = self.in_memory.as_secs_f64();
        if in_memory == 0.0 {
            return f64::INFINITY;
        }
        self.spilled.as_secs_f64() / in_memory
    }
}

/// The full benchmark report behind `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct PipelineBenchReport {
    /// Worker threads used by both implementations.
    pub threads: usize,
    /// Number of reads in the workload.
    pub reads: usize,
    /// Total read bases in the workload.
    pub read_bases: u64,
    /// Step B comparison.
    pub kmer_counting: PhaseComparison,
    /// Step C comparison.
    pub macronode_construction: PhaseComparison,
    /// Multi-batch streaming comparison (overlapped vs sequential schedule).
    pub batch_streaming: BatchStreamingComparison,
    /// Step D comparison: pre-refactor vs full-scan vs frontier compaction.
    pub compaction: CompactionComparison,
    /// Sharded-execution comparison (owner-computes shards vs single graph).
    pub sharding: ShardingComparison,
    /// Async vs lock-step shard-schedule comparison at the paper's shard count.
    pub async_schedule: AsyncScheduleComparison,
    /// External-memory counting comparison (budget-capped spill vs in-memory).
    pub spill: SpillComparison,
    /// Full optimized assembly output (timings of all phases, quality stats).
    pub assembly: AssemblyOutput,
}

impl PipelineBenchReport {
    /// Combined speedup over the two refactored phases (the acceptance metric).
    pub fn counting_plus_construction_speedup(&self) -> f64 {
        let opt = self.kmer_counting.optimized + self.macronode_construction.optimized;
        let base = self.kmer_counting.baseline + self.macronode_construction.baseline;
        if opt.as_secs_f64() == 0.0 {
            return f64::INFINITY;
        }
        base.as_secs_f64() / opt.as_secs_f64()
    }
}

/// Builds the fixed-seed benchmark workload and pipeline configuration shared
/// by every benchmark entry point, so all recorded numbers and gates measure
/// identical inputs.
fn bench_workload_and_config(name: &str) -> (Workload, PakmanConfig) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let workload =
        Workload::synthesize(name, BENCH_GENOME_LENGTH, BENCH_COVERAGE, 0.001, BENCH_SEED)
            .expect("benchmark workload builds");
    let config = PakmanConfig {
        k: BENCH_K,
        min_kmer_count: 2,
        compaction_node_threshold: 100,
        threads,
        record_trace: false,
        ..PakmanConfig::default()
    };
    (workload, config)
}

/// Runs the benchmark: `reps` repetitions, keeping the fastest time per phase per
/// implementation (best-of filters scheduler noise without favouring either side).
pub fn run_pipeline_bench(reps: usize) -> PipelineBenchReport {
    let reps = reps.max(1);
    let (workload, config) = bench_workload_and_config("bench_pipeline");
    let threads = config.threads;

    // Shared counted input for the step C comparison.
    let (counted, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
        .expect("benchmark counting succeeds");

    let mut best_opt_count = Duration::MAX;
    let mut best_base_count = Duration::MAX;
    let mut best_opt_build = Duration::MAX;
    let mut best_base_build = Duration::MAX;
    let mut assembly = None;

    for _ in 0..reps {
        let t = Instant::now();
        let (opt_counted, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
            .expect("benchmark counting succeeds");
        best_opt_count = best_opt_count.min(t.elapsed());
        assert_eq!(opt_counted.len(), counted.len());

        let t = Instant::now();
        let base_counted =
            count_kmers_baseline(&workload.reads, BENCH_K, config.min_kmer_count, threads);
        best_base_count = best_base_count.min(t.elapsed());
        assert_eq!(base_counted, counted, "baseline counting diverged");

        let t = Instant::now();
        let opt_graph = PakGraph::from_counted_kmers(&counted, BENCH_K, threads);
        best_opt_build = best_opt_build.min(t.elapsed());

        let t = Instant::now();
        let base_graph = build_graph_baseline(&counted, BENCH_K);
        best_base_build = best_base_build.min(t.elapsed());
        assert_eq!(
            opt_graph.slot_count(),
            base_graph.slot_count(),
            "baseline construction diverged"
        );

        if assembly.is_none() {
            assembly = Some(
                PakmanAssembler::new(config)
                    .assemble(&workload.reads)
                    .expect("benchmark assembly succeeds"),
            );
        }
    }

    let batch_streaming = run_batch_streaming_bench(&workload.reads, &config, reps);
    let compaction = run_compaction_bench(&counted, &config, reps);
    let sharding = run_sharding_bench(&counted, &config, reps);
    let async_schedule = run_async_schedule_bench(&counted, &config, reps);
    let spill = run_spill_bench(&workload.reads, &config, reps);

    PipelineBenchReport {
        threads,
        reads: workload.reads.len(),
        read_bases: workload.total_read_bases(),
        kmer_counting: PhaseComparison {
            optimized: best_opt_count,
            baseline: best_base_count,
        },
        macronode_construction: PhaseComparison {
            optimized: best_opt_build,
            baseline: best_base_build,
        },
        batch_streaming,
        compaction,
        sharding,
        async_schedule,
        spill,
        assembly: assembly.expect("at least one repetition ran"),
    }
}

/// Runs only the external-memory counting comparison on the standard benchmark
/// workload (the `experiments spill` subcommand).
pub fn run_spill_bench_standalone(reps: usize) -> SpillComparison {
    let (workload, config) = bench_workload_and_config("bench_spill");
    run_spill_bench(&workload.reads, &config, reps.max(1))
}

/// Times the budget-capped spilled counter against the unconstrained in-memory
/// counter on identical reads (best-of-`reps` each), asserting on every
/// repetition that the counted stream, the statistics, and the telemetry
/// invariants (bytes spilled > 0, ≥ 1 merge pass) hold.
fn run_spill_bench(
    reads: &[nmp_pak_genome::SequencingRead],
    config: &PakmanConfig,
    reps: usize,
) -> SpillComparison {
    let counter_config = KmerCounterConfig::from(config);
    let spill_config = SpillConfig::bounded(BENCH_SPILL_BUDGET_BYTES);

    let mut best_in_memory = Duration::MAX;
    let mut best_spilled = Duration::MAX;
    let mut telemetry = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let (in_memory, in_memory_stats) =
            count_kmers(reads, counter_config).expect("in-memory counting succeeds");
        best_in_memory = best_in_memory.min(t.elapsed());

        let t = Instant::now();
        let (spilled, spilled_stats, run_telemetry) =
            count_kmers_spilled(reads, counter_config, &spill_config, BENCH_SPILL_PARTITIONS)
                .expect("spilled counting succeeds");
        let elapsed = t.elapsed();
        if elapsed < best_spilled {
            best_spilled = elapsed;
            telemetry = Some(run_telemetry);
        }

        assert_eq!(spilled, in_memory, "spilled counted stream diverged");
        assert_eq!(
            spilled_stats, in_memory_stats,
            "spilled counting stats diverged"
        );
        assert!(
            run_telemetry.bytes_spilled > 0,
            "the {BENCH_SPILL_BUDGET_BYTES}-byte budget must force spilling"
        );
        assert!(
            run_telemetry.merge_passes >= 1,
            "read-back merges at least once"
        );
    }

    SpillComparison {
        in_memory: best_in_memory,
        spilled: best_spilled,
        telemetry: telemetry.expect("at least one repetition ran"),
        threads: config.threads,
    }
}

/// Runs only the sharded-execution comparison on the standard benchmark
/// workload (the `experiments sharding` subcommand).
pub fn run_sharding_bench_standalone(reps: usize) -> ShardingComparison {
    let (workload, config) = bench_workload_and_config("bench_sharding");
    let (counted, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
        .expect("benchmark counting succeeds");
    run_sharding_bench(&counted, &config, reps.max(1))
}

/// Times the sharded compactor at every [`BENCH_SHARD_COUNTS`] shard count
/// against the single-graph engine on identical constructed graphs, asserting
/// bit-identity of statistics and trace on every run and folding the measured
/// telemetry onto the default 8-channel NMP system.
fn run_sharding_bench(
    counted: &[nmp_pak_pakman::CountedKmer],
    config: &PakmanConfig,
    reps: usize,
) -> ShardingComparison {
    let untraced = PakmanConfig {
        record_trace: false,
        ..*config
    };
    let reference_graph = PakGraph::from_counted_kmers(counted, config.k, config.threads);
    let system_config = nmp_pak_core::backend::SystemConfig::default();
    let nmp_system = NmpSystem::new(system_config.nmp, system_config.dram, system_config.cpu);

    // Single-graph baseline (the engine the 1-shard run must stay within
    // 1.15× of).
    let mut single_graph = Duration::MAX;
    let mut scratch = CompactionScratch::new();
    for _ in 0..reps.max(1) {
        let mut graph = reference_graph.clone();
        let t = Instant::now();
        let _ = compact_with_scratch(&mut graph, &untraced, &mut scratch);
        single_graph = single_graph.min(t.elapsed());
    }

    // Bit-identity reference (traced, once).
    let traced = PakmanConfig {
        record_trace: true,
        ..untraced
    };
    let mut traced_graph = reference_graph.clone();
    let reference_outcome = compact_with_scratch(&mut traced_graph, &traced, &mut scratch);

    let mut runs = Vec::with_capacity(BENCH_SHARD_COUNTS.len());
    for shards in BENCH_SHARD_COUNTS {
        // One shard probes the engine overhead on the *same* graph object; real
        // shard counts build their owner-partitioned graphs from the counted
        // stream, exactly as the pipeline does.
        let prototype = if shards == 1 {
            ShardedGraph::from_single(reference_graph.clone())
        } else {
            ShardedGraph::from_counted_kmers(counted, config.k, shards, config.threads)
        };
        let mut wall = Duration::MAX;
        let mut telemetry = None;
        for _ in 0..reps.max(1) {
            let mut sharded = prototype.clone();
            let t = Instant::now();
            let (_, run_telemetry) = compact_sharded(&mut sharded, &untraced);
            let elapsed = t.elapsed();
            if elapsed < wall {
                wall = elapsed;
                telemetry = Some(run_telemetry);
            }
        }
        // Bit-identity cross-check: stats, trace, and compacted nodes must
        // match the single-graph engine before any wall clock is comparable.
        let mut sharded = prototype;
        let (outcome, _) = compact_sharded(&mut sharded, &traced);
        assert_eq!(
            outcome.stats, reference_outcome.stats,
            "sharded stats diverged at {shards} shard(s)"
        );
        assert_eq!(
            outcome.trace, reference_outcome.trace,
            "sharded trace diverged at {shards} shard(s)"
        );
        let global = sharded.into_global_graph();
        for slot in 0..traced_graph.slot_count() {
            assert_eq!(
                global.node(slot),
                traced_graph.node(slot),
                "sharded graph diverged at slot {slot} with {shards} shard(s)"
            );
        }

        let telemetry = telemetry.expect("at least one repetition ran");
        let channel_load = nmp_system.channel_load_from_sharding(&telemetry);
        runs.push(ShardingRun {
            shards,
            wall,
            telemetry,
            channel_load,
        });
    }

    ShardingComparison {
        single_graph,
        runs,
        threads: config.threads,
    }
}

/// Runs only the async-schedule comparison on the standard benchmark workload
/// (the `experiments async` subcommand).
pub fn run_async_schedule_bench_standalone(reps: usize) -> AsyncScheduleComparison {
    let (workload, config) = bench_workload_and_config("bench_async");
    let (counted, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
        .expect("benchmark counting succeeds");
    run_async_schedule_bench(&counted, &config, reps.max(1))
}

/// Times the async shard schedule against lock-step at [`BENCH_ASYNC_SHARDS`]
/// shards on identical owner-partitioned graphs (best-of-`reps` each),
/// asserting the verified-equivalent contract — statistics, compacted nodes,
/// and the per-flush mailbox ledger byte-identical — on an untimed pair, then
/// rebuilding both critical paths from the async run's measured round times.
fn run_async_schedule_bench(
    counted: &[nmp_pak_pakman::CountedKmer],
    config: &PakmanConfig,
    reps: usize,
) -> AsyncScheduleComparison {
    let lockstep_config = PakmanConfig {
        record_trace: false,
        shard_schedule: ShardSchedule::Lockstep,
        ..*config
    };
    let async_config = PakmanConfig {
        shard_schedule: ShardSchedule::Async,
        ..lockstep_config
    };
    let prototype =
        ShardedGraph::from_counted_kmers(counted, config.k, BENCH_ASYNC_SHARDS, config.threads);

    let mut lockstep_wall = Duration::MAX;
    let mut async_wall = Duration::MAX;
    let mut telemetry = None;
    for _ in 0..reps.max(1) {
        let mut sharded = prototype.clone();
        let t = Instant::now();
        let _ = compact_sharded(&mut sharded, &lockstep_config);
        lockstep_wall = lockstep_wall.min(t.elapsed());

        let mut sharded = prototype.clone();
        let t = Instant::now();
        let (_, run_telemetry) = compact_sharded(&mut sharded, &async_config);
        let elapsed = t.elapsed();
        if elapsed < async_wall {
            async_wall = elapsed;
            telemetry = Some(run_telemetry);
        }
    }

    // Verified-equivalent cross-check (untimed): the wall clocks are only
    // comparable while both schedules agree on every output bit and every
    // mailbox flush.
    let mut lockstep_graph = prototype.clone();
    let (lockstep_outcome, lockstep_telemetry) =
        compact_sharded(&mut lockstep_graph, &lockstep_config);
    let mut async_graph = prototype;
    let (async_outcome, async_telemetry) = compact_sharded(&mut async_graph, &async_config);
    // Per-iteration stats are scheduling telemetry (the async engine does not
    // record them); the contract covers the census, transfers, and outcome.
    assert_eq!(
        async_outcome.stats.initial_nodes, lockstep_outcome.stats.initial_nodes,
        "async initial census diverged from lock-step"
    );
    assert_eq!(
        async_outcome.stats.final_nodes, lockstep_outcome.stats.final_nodes,
        "async final census diverged from lock-step"
    );
    assert_eq!(
        async_outcome.stats.total_transfers, lockstep_outcome.stats.total_transfers,
        "async transfer total diverged from lock-step"
    );
    assert_eq!(
        async_outcome.stats.converged, lockstep_outcome.stats.converged,
        "async convergence diverged from lock-step"
    );
    assert_eq!(
        async_telemetry.flushes, lockstep_telemetry.flushes,
        "async mailbox flush ledger diverged from lock-step"
    );
    let lockstep_global = lockstep_graph.into_global_graph();
    let async_global = async_graph.into_global_graph();
    for slot in 0..lockstep_global.slot_count() {
        assert_eq!(
            async_global.node(slot),
            lockstep_global.node(slot),
            "async compacted graph diverged at slot {slot}"
        );
    }

    let telemetry = telemetry.expect("at least one repetition ran");
    AsyncScheduleComparison {
        shards: BENCH_ASYNC_SHARDS,
        lockstep_wall,
        async_wall,
        lockstep_critical_path: Duration::from_nanos(telemetry.lockstep_critical_path_nanos()),
        async_critical_path: Duration::from_nanos(telemetry.async_critical_path_nanos()),
        flushes: telemetry.flushes.len(),
        load_imbalance: telemetry.load_imbalance(),
        threads: config.threads,
    }
}

/// Runs only the Iterative Compaction comparison on the standard benchmark
/// workload (the `experiments compaction` subcommand).
pub fn run_compaction_bench_standalone(reps: usize) -> CompactionComparison {
    let (workload, config) = bench_workload_and_config("bench_compaction");
    let (counted, _) = count_kmers(&workload.reads, KmerCounterConfig::from(&config))
        .expect("benchmark counting succeeds");
    run_compaction_bench(&counted, &config, reps.max(1))
}

/// Times the three compaction engines on identical constructed graphs
/// (best-of-`reps` each, untraced), then re-runs all three once *with* traces to
/// assert bit-identity of statistics and access traces.
fn run_compaction_bench(
    counted: &[nmp_pak_pakman::CountedKmer],
    config: &PakmanConfig,
    reps: usize,
) -> CompactionComparison {
    let reference_graph = PakGraph::from_counted_kmers(counted, config.k, config.threads);
    let full_scan_config = PakmanConfig {
        compaction_mode: CompactionMode::FullScan,
        record_trace: false,
        ..*config
    };
    let frontier_config = PakmanConfig {
        compaction_mode: CompactionMode::Frontier,
        ..full_scan_config
    };

    let mut best_baseline = Duration::MAX;
    let mut best_full_scan = Duration::MAX;
    let mut best_frontier = Duration::MAX;
    let mut full_scan_profile = CompactionProfile::default();
    let mut frontier_profile = CompactionProfile::default();
    // The scratch persists across repetitions (the `compact_with_scratch`
    // reuse path), so steady-state runs pay no per-run buffer growth.
    let mut scratch = CompactionScratch::new();

    for _ in 0..reps.max(1) {
        let mut graph = reference_graph.clone();
        let t = Instant::now();
        let _ = compact_baseline(&mut graph, &full_scan_config);
        best_baseline = best_baseline.min(t.elapsed());

        let mut graph = reference_graph.clone();
        let t = Instant::now();
        let outcome = compact_with_scratch(&mut graph, &full_scan_config, &mut scratch);
        let elapsed = t.elapsed();
        if elapsed < best_full_scan {
            best_full_scan = elapsed;
            full_scan_profile = outcome.profile;
        }

        let mut graph = reference_graph.clone();
        let t = Instant::now();
        let outcome = compact_with_scratch(&mut graph, &frontier_config, &mut scratch);
        let elapsed = t.elapsed();
        if elapsed < best_frontier {
            best_frontier = elapsed;
            frontier_profile = outcome.profile;
        }
    }

    // Bit-identity cross-check (untimed, with traces): the baseline is only a
    // valid speedup denominator while all three engines agree on every bit.
    let traced = PakmanConfig {
        record_trace: true,
        ..full_scan_config
    };
    let mut baseline_graph = reference_graph.clone();
    let (baseline_stats, baseline_trace) = compact_baseline(&mut baseline_graph, &traced);
    for mode in [CompactionMode::FullScan, CompactionMode::Frontier] {
        let mut graph = reference_graph.clone();
        let outcome = compact_with_scratch(
            &mut graph,
            &PakmanConfig {
                compaction_mode: mode,
                ..traced
            },
            &mut scratch,
        );
        assert_eq!(
            outcome.stats, baseline_stats,
            "{mode:?} compaction stats diverged from the pre-refactor baseline"
        );
        assert_eq!(
            outcome.trace, baseline_trace,
            "{mode:?} compaction trace diverged from the pre-refactor baseline"
        );
        for slot in 0..reference_graph.slot_count() {
            assert_eq!(
                graph.node(slot),
                baseline_graph.node(slot),
                "{mode:?} compacted graph diverged at slot {slot}"
            );
        }
    }

    CompactionComparison {
        baseline: best_baseline,
        full_scan: best_full_scan,
        frontier: best_frontier,
        frontier_profile,
        full_scan_profile,
        threads: config.threads,
    }
}

/// Times the sequential and overlapped batch schedules on identical inputs
/// (best-of-`reps` each, alternating so neither side systematically benefits
/// from a warm cache). The outputs are bit-identical by the determinism
/// contract; only the wall clock differs.
fn run_batch_streaming_bench(
    reads: &[nmp_pak_genome::SequencingRead],
    config: &PakmanConfig,
    reps: usize,
) -> BatchStreamingComparison {
    // One worker thread per batch half keeps the per-stage parallelism from
    // saturating the machine, so the scheduler-level overlap has cores to use.
    let config = PakmanConfig {
        threads: 1,
        ..*config
    };
    let sequential_assembler =
        BatchAssembler::with_schedule(config, BENCH_BATCH_FRACTION, BatchSchedule::Sequential);
    let overlapped_assembler =
        BatchAssembler::with_schedule(config, BENCH_BATCH_FRACTION, BatchSchedule::Overlapped);
    let pipelined_assembler = BatchAssembler::with_schedule(
        config,
        BENCH_BATCH_FRACTION,
        BatchSchedule::Pipelined {
            depth: BENCH_PIPELINE_DEPTH,
            max_inflight_bytes: None,
        },
    );

    // One untimed warm-up of each schedule: the first assembly after process
    // start pays allocator growth and page faults that would otherwise be
    // charged to whichever schedule runs first.
    let _ = sequential_assembler.assemble(reads);
    let _ = overlapped_assembler.assemble(reads);
    let _ = pipelined_assembler.assemble(reads);

    let mut best_sequential = Duration::MAX;
    let mut best_overlapped = Duration::MAX;
    let mut best_pipelined = Duration::MAX;
    let mut batches = 0usize;
    let mut best_critical = (Duration::MAX, Duration::MAX, Duration::MAX);
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let sequential = sequential_assembler
            .assemble(reads)
            .expect("sequential batch assembly succeeds");
        best_sequential = best_sequential.min(t.elapsed());

        let t = Instant::now();
        let overlapped = overlapped_assembler
            .assemble(reads)
            .expect("overlapped batch assembly succeeds");
        best_overlapped = best_overlapped.min(t.elapsed());

        let t = Instant::now();
        let pipelined = pipelined_assembler
            .assemble(reads)
            .expect("pipelined batch assembly succeeds");
        best_pipelined = best_pipelined.min(t.elapsed());

        assert_eq!(
            sequential.contigs, overlapped.contigs,
            "schedules must be bit-identical"
        );
        assert_eq!(
            sequential.contigs, pipelined.contigs,
            "the k-deep schedule must be bit-identical"
        );
        batches = sequential.batch_compaction.len();
        let sequential_cp = critical_paths(&sequential.batch_timings).0;
        let overlapped_cp = pipelined_critical_path(&sequential.batch_timings, 1);
        let pipelined_cp = pipelined_critical_path(&sequential.batch_timings, BENCH_PIPELINE_DEPTH);
        if sequential_cp < best_critical.0 {
            best_critical = (sequential_cp, overlapped_cp, pipelined_cp);
        }
    }

    BatchStreamingComparison {
        batches,
        sequential: best_sequential,
        overlapped: best_overlapped,
        pipelined: best_pipelined,
        sequential_critical_path: best_critical.0,
        overlapped_critical_path: best_critical.1,
        pipelined_critical_path: best_critical.2,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Critical paths of both schedules over the same measured per-batch stage
/// times: `(sequential, overlapped)`. Sequential is the plain sum; overlapped is
/// the two-deep pipeline `front₀ + Σ max(backᵢ, frontᵢ₊₁) + back_{n-1}` where
/// `front` is stages A–C and `back` is stages D–E.
fn critical_paths(batch_timings: &[nmp_pak_pakman::PhaseTimings]) -> (Duration, Duration) {
    let front = |t: &nmp_pak_pakman::PhaseTimings| {
        t.access_reads + t.kmer_counting + t.macronode_construction
    };
    let back = |t: &nmp_pak_pakman::PhaseTimings| t.compaction + t.walk;

    let sequential: Duration = batch_timings.iter().map(|t| front(t) + back(t)).sum();
    let mut overlapped = Duration::ZERO;
    for (i, timings) in batch_timings.iter().enumerate() {
        if i == 0 {
            overlapped += front(timings);
        }
        match batch_timings.get(i + 1) {
            Some(next) => overlapped += back(timings).max(front(next)),
            None => overlapped += back(timings),
        }
    }
    (sequential, overlapped)
}

/// Critical path of the k-deep pipelined schedule over measured stage times,
/// assuming non-competing workers (every admitted front has a core).
///
/// The scheduler admits the front of batch *j* when batch *j − depth* starts
/// finishing, which gives the recurrence
///
/// ```text
/// admit[j]        = 0                       for j < depth
///                 = finish_start[j - depth] otherwise
/// front_done[j]   = admit[j] + front_j
/// finish_start[j] = max(finish_done[j - 1], front_done[j])
/// finish_done[j]  = finish_start[j] + back_j
/// ```
///
/// At `depth = 1` this reproduces the overlapped closed form
/// `front₀ + Σ max(backᵢ, frontᵢ₊₁) + back_{n-1}`; deeper windows only move
/// admissions earlier, so the result is non-increasing in `depth`.
pub fn pipelined_critical_path(
    batch_timings: &[nmp_pak_pakman::PhaseTimings],
    depth: usize,
) -> Duration {
    let front = |t: &nmp_pak_pakman::PhaseTimings| {
        t.access_reads + t.kmer_counting + t.macronode_construction
    };
    let back = |t: &nmp_pak_pakman::PhaseTimings| t.compaction + t.walk;
    let depth = depth.max(1);

    let mut finish_starts: Vec<Duration> = Vec::with_capacity(batch_timings.len());
    let mut finish_done = Duration::ZERO;
    for (j, timings) in batch_timings.iter().enumerate() {
        let admit = if j < depth {
            Duration::ZERO
        } else {
            finish_starts[j - depth]
        };
        let front_done = admit + front(timings);
        let finish_start = finish_done.max(front_done);
        finish_starts.push(finish_start);
        finish_done = finish_start + back(timings);
    }
    finish_done
}

/// Renders the per-iteration P1/P2/P3 wall times and checked-node counts of a
/// compaction profile as a JSON array (one object per iteration).
fn profile_iterations_json(profile: &CompactionProfile, indent: &str) -> String {
    let rows: Vec<String> = profile
        .iterations
        .iter()
        .map(|it| {
            format!(
                "{indent}{{\"iteration\": {}, \"p1_s\": {:.6}, \"p2_s\": {:.6}, \
                 \"p3_s\": {:.6}, \"checked_nodes\": {}, \"alive_nodes\": {}}}",
                it.iteration,
                it.p1.as_secs_f64(),
                it.p2.as_secs_f64(),
                it.p3.as_secs_f64(),
                it.checked_nodes,
                it.alive_nodes,
            )
        })
        .collect();
    rows.join(",\n")
}

/// Renders the sharding comparison's per-shard-count rows as a JSON array.
fn sharding_runs_json(cmp: &ShardingComparison, indent: &str) -> String {
    let rows: Vec<String> = cmp
        .runs
        .iter()
        .map(|run| {
            format!(
                "{indent}{{\"shards\": {}, \"wall_s\": {:.6}, \"load_imbalance\": {:.4}, \
                 \"mailbox_bytes\": {}, \"cross_shard_bytes\": {}, \
                 \"cross_shard_fraction\": {:.4}, \"channel_imbalance\": {:.4}, \
                 \"cross_channel_bytes\": {}, \"intra_channel_bytes\": {}}}",
                run.shards,
                run.wall.as_secs_f64(),
                run.telemetry.load_imbalance(),
                run.telemetry.total_mailbox_bytes(),
                run.telemetry.total_cross_shard_bytes(),
                run.telemetry.cross_shard_fraction(),
                run.channel_load.imbalance(),
                run.channel_load.cross_channel_bytes,
                run.channel_load.intra_channel_bytes,
            )
        })
        .collect();
    rows.join(",\n")
}

/// Serializes the report as JSON (hand-rolled; the offline environment has no
/// serde_json).
pub fn report_to_json(report: &PipelineBenchReport) -> String {
    let t = &report.assembly.timings;
    let stats = &report.assembly.stats;
    let secs = Duration::as_secs_f64;
    format!(
        concat!(
            "{{\n",
            "  \"workload\": {{\n",
            "    \"genome_length\": {genome_length},\n",
            "    \"coverage\": {coverage},\n",
            "    \"k\": {k},\n",
            "    \"seed\": {seed},\n",
            "    \"reads\": {reads},\n",
            "    \"read_bases\": {read_bases}\n",
            "  }},\n",
            "  \"threads\": {threads},\n",
            "  \"phase_timings_s\": {{\n",
            "    \"access_reads\": {access_reads:.6},\n",
            "    \"kmer_counting\": {kmer_counting:.6},\n",
            "    \"macronode_construction\": {construction:.6},\n",
            "    \"compaction\": {compaction:.6},\n",
            "    \"walk\": {walk:.6},\n",
            "    \"total\": {total:.6}\n",
            "  }},\n",
            "  \"baseline_s\": {{\n",
            "    \"kmer_counting\": {base_count:.6},\n",
            "    \"macronode_construction\": {base_build:.6}\n",
            "  }},\n",
            "  \"optimized_s\": {{\n",
            "    \"kmer_counting\": {opt_count:.6},\n",
            "    \"macronode_construction\": {opt_build:.6}\n",
            "  }},\n",
            "  \"speedup\": {{\n",
            "    \"kmer_counting\": {count_speedup:.3},\n",
            "    \"macronode_construction\": {build_speedup:.3},\n",
            "    \"counting_plus_construction\": {combined_speedup:.3},\n",
            "    \"compaction\": {compaction_speedup:.3}\n",
            "  }},\n",
            "  \"compaction_bench\": {{\n",
            "    \"threads\": {compaction_threads},\n",
            "    \"baseline_s\": {compaction_baseline_s:.6},\n",
            "    \"full_scan_s\": {compaction_full_scan_s:.6},\n",
            "    \"frontier_s\": {compaction_frontier_s:.6},\n",
            "    \"speedup_vs_baseline\": {compaction_speedup:.3},\n",
            "    \"frontier_vs_full_scan\": {frontier_vs_full_scan:.3},\n",
            "    \"checked_nodes_full_scan\": {checked_full},\n",
            "    \"checked_nodes_frontier\": {checked_frontier},\n",
            "    \"frontier_iterations\": [\n{frontier_iterations}\n    ]\n",
            "  }},\n",
            "  \"sharding\": {{\n",
            "    \"threads\": {sharding_threads},\n",
            "    \"single_graph_s\": {sharding_single_s:.6},\n",
            "    \"overhead_at_one\": {sharding_overhead:.3},\n",
            "    \"runs\": [\n{sharding_runs}\n    ]\n",
            "  }},\n",
            "  \"async\": {{\n",
            "    \"shards\": {async_shards},\n",
            "    \"threads\": {async_threads},\n",
            "    \"load_imbalance\": {async_imbalance:.4},\n",
            "    \"lockstep_wall_s\": {async_lockstep_wall_s:.6},\n",
            "    \"async_wall_s\": {async_wall_s:.6},\n",
            "    \"wall_speedup\": {async_wall_speedup:.3},\n",
            "    \"lockstep_critical_path_s\": {async_lockstep_cp_s:.6},\n",
            "    \"async_critical_path_s\": {async_cp_s:.6},\n",
            "    \"critical_path_speedup\": {async_cp_speedup:.3},\n",
            "    \"flushes\": {async_flushes}\n",
            "  }},\n",
            "  \"spill\": {{\n",
            "    \"threads\": {spill_threads},\n",
            "    \"budget_bytes\": {spill_budget},\n",
            "    \"partitions\": {spill_partitions},\n",
            "    \"in_memory_s\": {spill_in_memory_s:.6},\n",
            "    \"spilled_s\": {spill_spilled_s:.6},\n",
            "    \"overhead\": {spill_overhead:.3},\n",
            "    \"bytes_spilled\": {spill_bytes},\n",
            "    \"runs_written\": {spill_runs},\n",
            "    \"merge_passes\": {spill_merge_passes},\n",
            "    \"peak_resident_bytes\": {spill_peak_resident}\n",
            "  }},\n",
            "  \"batch_streaming\": {{\n",
            "    \"batches\": {batches},\n",
            "    \"available_cores\": {available_cores},\n",
            "    \"pipeline_depth\": {pipeline_depth},\n",
            "    \"sequential_s\": {seq_s:.6},\n",
            "    \"overlapped_s\": {ovl_s:.6},\n",
            "    \"pipelined_s\": {pip_s:.6},\n",
            "    \"overlap_speedup\": {overlap_speedup:.3},\n",
            "    \"sequential_critical_path_s\": {seq_cp_s:.6},\n",
            "    \"overlapped_critical_path_s\": {ovl_cp_s:.6},\n",
            "    \"pipelined_critical_path_s\": {pip_cp_s:.6},\n",
            "    \"critical_path_speedup\": {cp_speedup:.3},\n",
            "    \"pipelined_critical_path_speedup\": {pip_cp_speedup:.3}\n",
            "  }},\n",
            "  \"assembly\": {{\n",
            "    \"contigs\": {contigs},\n",
            "    \"total_length\": {total_length},\n",
            "    \"n50\": {n50},\n",
            "    \"compaction_iterations\": {iterations},\n",
            "    \"initial_nodes\": {initial_nodes},\n",
            "    \"final_nodes\": {final_nodes}\n",
            "  }}\n",
            "}}\n",
        ),
        genome_length = BENCH_GENOME_LENGTH,
        coverage = BENCH_COVERAGE,
        k = BENCH_K,
        seed = BENCH_SEED,
        reads = report.reads,
        read_bases = report.read_bases,
        threads = report.threads,
        access_reads = secs(&t.access_reads),
        kmer_counting = secs(&t.kmer_counting),
        construction = secs(&t.macronode_construction),
        compaction = secs(&t.compaction),
        walk = secs(&t.walk),
        total = secs(&t.total()),
        base_count = secs(&report.kmer_counting.baseline),
        base_build = secs(&report.macronode_construction.baseline),
        opt_count = secs(&report.kmer_counting.optimized),
        opt_build = secs(&report.macronode_construction.optimized),
        count_speedup = report.kmer_counting.speedup(),
        build_speedup = report.macronode_construction.speedup(),
        combined_speedup = report.counting_plus_construction_speedup(),
        compaction_speedup = report.compaction.speedup(),
        compaction_threads = report.compaction.threads,
        compaction_baseline_s = secs(&report.compaction.baseline),
        compaction_full_scan_s = secs(&report.compaction.full_scan),
        compaction_frontier_s = secs(&report.compaction.frontier),
        frontier_vs_full_scan = report.compaction.frontier_vs_full_scan(),
        checked_full = report.compaction.full_scan_profile.total_checked(),
        checked_frontier = report.compaction.frontier_profile.total_checked(),
        frontier_iterations =
            profile_iterations_json(&report.compaction.frontier_profile, "      "),
        sharding_threads = report.sharding.threads,
        sharding_single_s = secs(&report.sharding.single_graph),
        sharding_overhead = report.sharding.overhead_at_one(),
        sharding_runs = sharding_runs_json(&report.sharding, "      "),
        async_shards = report.async_schedule.shards,
        async_threads = report.async_schedule.threads,
        async_imbalance = report.async_schedule.load_imbalance,
        async_lockstep_wall_s = secs(&report.async_schedule.lockstep_wall),
        async_wall_s = secs(&report.async_schedule.async_wall),
        async_wall_speedup = report.async_schedule.wall_speedup(),
        async_lockstep_cp_s = secs(&report.async_schedule.lockstep_critical_path),
        async_cp_s = secs(&report.async_schedule.async_critical_path),
        async_cp_speedup = report.async_schedule.critical_path_speedup(),
        async_flushes = report.async_schedule.flushes,
        spill_threads = report.spill.threads,
        spill_budget = BENCH_SPILL_BUDGET_BYTES,
        spill_partitions = report.spill.telemetry.partitions,
        spill_in_memory_s = secs(&report.spill.in_memory),
        spill_spilled_s = secs(&report.spill.spilled),
        spill_overhead = report.spill.overhead(),
        spill_bytes = report.spill.telemetry.bytes_spilled,
        spill_runs = report.spill.telemetry.runs_written,
        spill_merge_passes = report.spill.telemetry.merge_passes,
        spill_peak_resident = report.spill.telemetry.peak_resident_bytes,
        batches = report.batch_streaming.batches,
        available_cores = report.batch_streaming.available_cores,
        pipeline_depth = BENCH_PIPELINE_DEPTH,
        seq_s = secs(&report.batch_streaming.sequential),
        ovl_s = secs(&report.batch_streaming.overlapped),
        pip_s = secs(&report.batch_streaming.pipelined),
        overlap_speedup = report.batch_streaming.overlap_speedup(),
        seq_cp_s = secs(&report.batch_streaming.sequential_critical_path),
        ovl_cp_s = secs(&report.batch_streaming.overlapped_critical_path),
        pip_cp_s = secs(&report.batch_streaming.pipelined_critical_path),
        cp_speedup = report.batch_streaming.critical_path_speedup(),
        pip_cp_speedup = report.batch_streaming.pipelined_critical_path_speedup(),
        contigs = report.assembly.contigs.len(),
        total_length = stats.total_length,
        n50 = stats.n50,
        iterations = report.assembly.compaction.iteration_count(),
        initial_nodes = report.assembly.compaction.initial_nodes,
        final_nodes = report.assembly.compaction.final_nodes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed() {
        let report = run_pipeline_bench(1);
        let json = report_to_json(&report);
        // Structural sanity without a JSON parser: balanced braces, expected keys.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"workload\"",
            "\"phase_timings_s\"",
            "\"baseline_s\"",
            "\"speedup\"",
            "\"counting_plus_construction\"",
            "\"compaction\"",
            "\"compaction_bench\"",
            "\"checked_nodes_frontier\"",
            "\"frontier_iterations\"",
            "\"batch_streaming\"",
            "\"overlap_speedup\"",
            "\"sharding\"",
            "\"overhead_at_one\"",
            "\"cross_channel_bytes\"",
            "\"async\"",
            "\"async_critical_path_s\"",
            "\"spill\"",
            "\"bytes_spilled\"",
            "\"merge_passes\"",
            "\"peak_resident_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Spill invariants: the budget forced real disk traffic, the read-back
        // merged at least once, the resident high-water mark stayed in the
        // budget's regime (waves target budget/2; eviction can briefly overshoot
        // one wave's extraction), and the overhead ratio is a positive finite
        // number.
        assert!(report.spill.telemetry.bytes_spilled > 0);
        assert!(report.spill.telemetry.runs_written > 0);
        assert!(report.spill.telemetry.merge_passes >= 1);
        assert!(report.spill.telemetry.peak_resident_bytes > 0);
        assert_eq!(
            report.spill.telemetry.budget_bytes,
            BENCH_SPILL_BUDGET_BYTES
        );
        assert_eq!(report.spill.telemetry.partitions, BENCH_SPILL_PARTITIONS);
        assert!(report.spill.overhead().is_finite());
        assert!(report.spill.overhead() > 0.0);
        // Sharding invariants: the sweep includes the 1-shard overhead probe,
        // real shard counts move real cross-shard traffic, and the overhead
        // ratio is a positive finite number.
        assert_eq!(report.sharding.runs.len(), BENCH_SHARD_COUNTS.len());
        assert!(report.sharding.overhead_at_one().is_finite());
        assert!(report.sharding.overhead_at_one() > 0.0);
        let one = &report.sharding.runs[0];
        assert_eq!(one.shards, 1);
        assert_eq!(one.telemetry.total_cross_shard_bytes(), 0);
        let eight = report.sharding.runs.iter().find(|r| r.shards == 8).unwrap();
        assert!(eight.telemetry.total_cross_shard_bytes() > 0);
        assert!(eight.telemetry.cross_shard_fraction() > 0.5);
        assert!(eight.channel_load.imbalance() >= 1.0);
        // Async-schedule invariants: the run recorded real mailbox flushes,
        // and the barrier-free critical path never exceeds the barriered one
        // rebuilt from the same measured round times.
        assert_eq!(report.async_schedule.shards, BENCH_ASYNC_SHARDS);
        assert!(report.async_schedule.flushes > 0);
        assert!(report.async_schedule.async_critical_path > Duration::ZERO);
        assert!(
            report.async_schedule.async_critical_path
                <= report.async_schedule.lockstep_critical_path
        );
        assert!(report.async_schedule.critical_path_speedup() >= 1.0);
        assert!(report.async_schedule.wall_speedup() > 0.0);
        // The compaction comparison's deterministic invariants: iteration 0 is a
        // full scan, every later frontier iteration checks strictly fewer nodes
        // than the alive census, and the totals reflect that.
        assert!(report.compaction.speedup() > 0.0);
        assert!(report.compaction.frontier_strictly_narrower());
        assert!(
            report.compaction.frontier_profile.total_checked()
                < report.compaction.full_scan_profile.total_checked()
        );
        assert_eq!(
            report.compaction.full_scan_profile.total_checked(),
            report.compaction.full_scan_profile.total_full_scan_checks()
        );
        assert!(report.kmer_counting.speedup() > 0.0);
        assert!(report.batch_streaming.batches >= 2);
        assert!(report.batch_streaming.overlap_speedup() > 0.0);
        // With ≥ 2 batches the pipelined critical path is strictly shorter than
        // the sequential one (this holds on any host — it is derived from the
        // same measured stage times).
        assert!(
            report.batch_streaming.overlapped_critical_path
                < report.batch_streaming.sequential_critical_path,
            "overlap must shorten the critical path: {:?} vs {:?}",
            report.batch_streaming.overlapped_critical_path,
            report.batch_streaming.sequential_critical_path,
        );
        assert!(report.batch_streaming.critical_path_speedup() > 1.0);
        // The k-deep window can only admit fronts earlier than the 1-deep one.
        assert!(
            report.batch_streaming.pipelined_critical_path
                <= report.batch_streaming.overlapped_critical_path
        );
        assert!(
            report.batch_streaming.pipelined_critical_path_speedup()
                >= report.batch_streaming.critical_path_speedup()
        );
        assert!(json.contains("\"pipelined_critical_path_speedup\""));
    }

    #[test]
    fn pipelined_critical_path_generalizes_the_overlapped_closed_form() {
        use nmp_pak_pakman::PhaseTimings;
        let ms = Duration::from_millis;
        let batch = |front_ms: u64, back_ms: u64| PhaseTimings {
            access_reads: Duration::ZERO,
            kmer_counting: ms(front_ms),
            macronode_construction: Duration::ZERO,
            compaction: ms(back_ms),
            walk: Duration::ZERO,
        };
        // Fronts longer than backs: a deeper window genuinely helps.
        let timings = vec![batch(30, 10), batch(30, 10), batch(30, 10), batch(30, 10)];
        let (sequential, overlapped_closed_form) = critical_paths(&timings);
        assert_eq!(pipelined_critical_path(&timings, 1), overlapped_closed_form);
        let deep = pipelined_critical_path(&timings, 3);
        assert!(deep < overlapped_closed_form);
        assert!(deep < sequential);
        // Depth beyond the batch count saturates: every front starts at 0, so
        // the bound is front₀ plus at most Σ back plus trailing stalls.
        assert_eq!(
            pipelined_critical_path(&timings, 8),
            pipelined_critical_path(&timings, 4)
        );
        // Backs dominating: depth cannot help beyond the 1-deep overlap, and
        // the result never regresses past it.
        let back_heavy = vec![batch(5, 40), batch(5, 40), batch(5, 40)];
        let (_, overlapped_bh) = critical_paths(&back_heavy);
        assert_eq!(pipelined_critical_path(&back_heavy, 1), overlapped_bh);
        assert!(pipelined_critical_path(&back_heavy, 3) <= overlapped_bh);
    }
}
