//! Prints every table and figure of the NMP-PaK evaluation for the synthetic
//! workload.
//!
//! Usage:
//!
//! ```text
//! experiments            # run everything at the quick scale, including the
//!                        # pipeline benchmark — overwrites ./BENCH_pipeline.json
//! experiments fig12 tab1 # run a subset (no benchmark, no file written)
//! experiments sweep fig12          # run a recipe sweep — writes ./BENCH_sweep.json
//! experiments sweep smoke --server 2  # run the sweep's one-shot cells as
//!                                  # concurrent job-server jobs
//! experiments sweep fig12 'normalized_performance>=100'  # extra ad-hoc gate
//!                                  # (applies to every cell; exit 1 on violation)
//! NMP_PAK_SWEEP_OUT=/tmp/s.json experiments sweep smoke  # sweep report path
//! experiments pipeline   # only the pipeline benchmark + BENCH_pipeline.json
//! experiments compaction # only the Iterative Compaction engine comparison
//!                        # (per-iteration P1/P2/P3 table, full-scan vs frontier)
//! experiments sharding   # only the sharded-execution comparison (per-shard
//!                        # load imbalance + inter-shard mailbox traffic)
//! experiments spill      # only the external-memory counting comparison
//!                        # (budget-capped spill vs in-memory, bit-identity)
//! experiments async      # only the async-vs-lockstep shard schedule comparison
//!                        # (verified-equivalent outputs, critical-path speedup)
//! NMP_PAK_BENCH_SCALE=standard experiments   # the scale recorded in EXPERIMENTS.md
//! NMP_PAK_BENCH_OUT=/tmp/b.json experiments pipeline      # report path override
//! NMP_PAK_BENCH_MIN_SPEEDUP=1.3 experiments pipeline      # exit 1 below threshold
//! NMP_PAK_BENCH_MIN_OVERLAP_SPEEDUP=1.0 experiments pipeline  # gate the streamed
//!                                        # batch schedule's critical-path speedup
//! NMP_PAK_BENCH_MIN_PIPELINED_SPEEDUP=1.0 experiments pipeline # gate the k-deep
//!                                        # pipelined schedule the same way
//! NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP=1.2 experiments compaction # gate the
//!                                        # frontier compactor vs the pre-refactor one
//! NMP_PAK_BENCH_MAX_SHARD_OVERHEAD=1.15 experiments sharding # gate the sharded
//!                                        # engine's 1-shard overhead vs single-graph
//! NMP_PAK_BENCH_MAX_SPILL_OVERHEAD=12.0 experiments spill # gate the budget-capped
//!                                        # counter's wall-clock overhead vs in-memory
//! NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP=1.0 experiments async # gate the async schedule's
//!                                        # critical-path speedup over lock-step
//! ```

use nmp_pak_bench::pipeline_bench::{
    report_to_json, run_async_schedule_bench_standalone, run_compaction_bench_standalone,
    run_pipeline_bench, run_sharding_bench_standalone, run_spill_bench_standalone,
    AsyncScheduleComparison, CompactionComparison, ShardingComparison, SpillComparison,
};
use nmp_pak_bench::sweep::{print_report, run_sweep, write_report, SweepMode};
use nmp_pak_bench::{pct, prepare_experiments, BenchScale};
use nmp_pak_core::experiments::Experiments;
use nmp_pak_recipe::{builtin, Gate};

/// Every subcommand `main` dispatches on (plus `sweep`, handled separately).
const KNOWN_SUBCOMMANDS: &[&str] = &[
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "tab1",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "comm",
    "table3",
    "tab3",
    "supercomputer",
    "footprint",
    "pipeline",
    "compaction",
    "sharding",
    "spill",
    "async",
];

fn usage() -> String {
    format!(
        "usage: experiments [SUBCOMMAND]...\n       experiments sweep <recipe> \
         [--server N] [metric>=x | metric<=x]...\n\nsubcommands: {}\nrecipes:     {}",
        KNOWN_SUBCOMMANDS.join(" "),
        builtin::names().join(" ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();

    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
        return;
    }
    if let Some(unknown) = args
        .iter()
        .find(|a| !KNOWN_SUBCOMMANDS.contains(&a.as_str()))
    {
        eprintln!("error: unknown subcommand `{unknown}`\n\n{}", usage());
        std::process::exit(1);
    }

    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    // The compaction, sharding, and spill engine comparisons need no prepared
    // experiment context; when only they are asked for, skip the backend
    // simulations.
    if !args.is_empty()
        && args
            .iter()
            .all(|a| a == "compaction" || a == "sharding" || a == "spill" || a == "async")
    {
        if args.iter().any(|a| a == "compaction") {
            compaction_bench();
        }
        if args.iter().any(|a| a == "sharding") {
            sharding_bench();
        }
        if args.iter().any(|a| a == "spill") {
            spill_bench();
        }
        if args.iter().any(|a| a == "async") {
            async_bench();
        }
        return;
    }

    let scale = BenchScale::from_env();
    eprintln!("# preparing workload and backend simulations ({scale:?} scale)…");
    let exp = prepare_experiments(scale);
    eprintln!(
        "# workload: {} ({} reads, {} bases); compaction: {} iterations, {} -> {} MacroNodes\n",
        exp.workload.name,
        exp.workload.reads.len(),
        exp.workload.total_read_bases(),
        exp.assembly.compaction.iteration_count(),
        exp.assembly.compaction.initial_nodes,
        exp.assembly.compaction.final_nodes,
    );

    if wanted("fig5") {
        fig5(&exp);
    }
    if wanted("fig6") {
        fig6(&exp);
    }
    if wanted("fig7") {
        fig7(&exp);
    }
    if wanted("fig8") {
        fig8(&exp);
    }
    if wanted("table1") || wanted("tab1") {
        table1(&exp);
    }
    if wanted("fig12") {
        fig12(&exp);
    }
    if wanted("fig13") {
        fig13(&exp);
    }
    if wanted("fig14") {
        fig14(&exp);
    }
    if wanted("fig15") {
        fig15(&exp);
    }
    if wanted("comm") {
        comm(&exp);
    }
    if wanted("table3") || wanted("tab3") {
        table3(&exp);
    }
    if wanted("supercomputer") {
        supercomputer(&exp);
    }
    if wanted("footprint") {
        footprint(&exp);
    }
    if wanted("pipeline") {
        pipeline_bench();
    }
    if wanted("compaction") && !args.is_empty() {
        compaction_bench();
    }
    if wanted("sharding") && !args.is_empty() {
        sharding_bench();
    }
    if wanted("spill") && !args.is_empty() {
        spill_bench();
    }
    if wanted("async") && !args.is_empty() {
        async_bench();
    }
}

/// `experiments sweep <recipe> [--server N] [metric>=x | metric<=x]...`:
/// resolves a shipped recipe, runs it with the vendored-baseline probe,
/// prints the matrix, writes `BENCH_sweep.json` (path override:
/// `NMP_PAK_SWEEP_OUT`), and exits 1 when any gate — built-in or ad-hoc —
/// is violated.
fn sweep_main(args: &[String]) {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: `sweep` needs a recipe name\n\n{}", usage());
        std::process::exit(1);
    };
    let Some(mut recipe) = builtin::by_name(name) else {
        eprintln!(
            "error: unknown recipe `{name}` (shipped recipes: {})\n\n{}",
            builtin::names().join(" "),
            usage()
        );
        std::process::exit(1);
    };

    let mut mode = SweepMode::Local;
    let mut rest = args[1..].iter().peekable();
    while let Some(arg) = rest.next() {
        if arg == "--server" {
            let workers = rest
                .next()
                .and_then(|w| w.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("error: `--server` needs a worker count\n\n{}", usage());
                    std::process::exit(1);
                });
            mode = SweepMode::Server { workers };
        } else if let Some(gate) = parse_gate(arg) {
            recipe.gates.push(gate);
        } else {
            eprintln!("error: unknown sweep argument `{arg}`\n\n{}", usage());
            std::process::exit(1);
        }
    }

    let report = match run_sweep(&recipe, mode) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: sweep `{name}` failed: {err}");
            std::process::exit(1);
        }
    };
    print_report(&report);

    let path =
        std::env::var("NMP_PAK_SWEEP_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    match write_report(&report, &path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => {
            eprintln!("error: could not write {path}: {err}");
            std::process::exit(1);
        }
    }
    if !report.passed() {
        eprintln!("\nFAIL: one or more sweep gates violated");
        std::process::exit(1);
    }
}

/// Parses an ad-hoc gate argument of the form `metric>=x` or `metric<=x`.
/// Ad-hoc gates apply to every cell of the sweep.
fn parse_gate(arg: &str) -> Option<Gate> {
    let (metric, threshold, at_least) = if let Some((m, t)) = arg.split_once(">=") {
        (m, t, true)
    } else if let Some((m, t)) = arg.split_once("<=") {
        (m, t, false)
    } else {
        return None;
    };
    let threshold: f64 = threshold.trim().parse().ok()?;
    let metric = metric.trim();
    if metric.is_empty() {
        return None;
    }
    Some(if at_least {
        Gate::at_least(metric, threshold)
    } else {
        Gate::at_most(metric, threshold)
    })
}

/// Times the budget-capped external-memory counter against the unconstrained
/// in-memory counter on the benchmark workload, prints the spill telemetry,
/// and applies the `NMP_PAK_BENCH_MAX_SPILL_OVERHEAD` gate.
fn spill_bench() {
    heading("Spill benchmark — external-memory counting vs in-memory");
    let cmp = run_spill_bench_standalone(3);
    print_spill_comparison(&cmp);
    check_spill_gate(&cmp);
}

fn print_spill_comparison(cmp: &SpillComparison) {
    let t = &cmp.telemetry;
    println!(
        "counting ({} threads): in-memory {:>9.3} ms   spilled {:>9.3} ms   overhead {:.2}x",
        cmp.threads,
        cmp.in_memory.as_secs_f64() * 1e3,
        cmp.spilled.as_secs_f64() * 1e3,
        cmp.overhead(),
    );
    println!(
        "budget {} B over {} partitions: spilled {} B in {} runs, {} merge pass(es), \
         peak resident {} B",
        t.budget_bytes,
        t.partitions,
        t.bytes_spilled,
        t.runs_written,
        t.merge_passes,
        t.peak_resident_bytes,
    );
}

/// Optional regression gate: `NMP_PAK_BENCH_MAX_SPILL_OVERHEAD=12.0` fails the
/// run when the budget-capped counter's wall-clock overhead over the in-memory
/// counter exceeds the threshold, or when the budget stops producing real disk
/// traffic (which would mean the spill path is being bypassed).
fn check_spill_gate(cmp: &SpillComparison) {
    let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MAX_SPILL_OVERHEAD") else {
        return;
    };
    let threshold: f64 = threshold
        .parse()
        .expect("NMP_PAK_BENCH_MAX_SPILL_OVERHEAD must be a number");
    if cmp.overhead() > threshold {
        eprintln!(
            "spill benchmark regression: spilled-counting overhead {:.2}x exceeds \
             the allowed {threshold}x",
            cmp.overhead()
        );
        std::process::exit(1);
    }
    if cmp.telemetry.bytes_spilled == 0 || cmp.telemetry.merge_passes == 0 {
        eprintln!(
            "spill benchmark regression: the byte budget moved no data to disk — \
             the spill path is being bypassed"
        );
        std::process::exit(1);
    }
}

/// Times the sharded compactor across shard counts against the single-graph
/// engine, prints the measured per-shard/per-channel load and mailbox traffic,
/// and applies the `NMP_PAK_BENCH_MAX_SHARD_OVERHEAD` gate.
fn sharding_bench() {
    heading("Sharding benchmark — owner-computes shards vs single graph");
    let cmp = run_sharding_bench_standalone(3);
    print_sharding_comparison(&cmp);
    check_sharding_gate(&cmp);
}

fn print_sharding_comparison(cmp: &ShardingComparison) {
    println!(
        "single-graph compaction ({} threads): {:>9.3} ms;   sharded engine at 1 shard: {:.2}x",
        cmp.threads,
        cmp.single_graph.as_secs_f64() * 1e3,
        cmp.overhead_at_one(),
    );
    println!(
        "{:<8}{:>12}{:>12}{:>16}{:>12}{:>14}{:>16}",
        "shards", "wall (ms)", "imbalance", "mailbox (B)", "cross", "chan-imbal", "cross-chan (B)"
    );
    for run in &cmp.runs {
        println!(
            "{:<8}{:>12.3}{:>12.3}{:>16}{:>11.1}%{:>14.3}{:>16}",
            run.shards,
            run.wall.as_secs_f64() * 1e3,
            run.telemetry.load_imbalance(),
            run.telemetry.total_mailbox_bytes(),
            run.telemetry.cross_shard_fraction() * 100.0,
            run.channel_load.imbalance(),
            run.channel_load.cross_channel_bytes,
        );
    }
}

/// Optional regression gate: `NMP_PAK_BENCH_MAX_SHARD_OVERHEAD=1.15` fails the
/// run when the sharded engine at one shard exceeds the single-graph engine's
/// wall time by more than the threshold, or when any multi-shard run stops
/// moving cross-shard traffic (which would mean the mailbox is being bypassed).
fn check_sharding_gate(cmp: &ShardingComparison) {
    let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MAX_SHARD_OVERHEAD") else {
        return;
    };
    let threshold: f64 = threshold
        .parse()
        .expect("NMP_PAK_BENCH_MAX_SHARD_OVERHEAD must be a number");
    if cmp.overhead_at_one() > threshold {
        eprintln!(
            "sharding benchmark regression: sharded-at-1-shard overhead {:.2}x exceeds \
             the allowed {threshold}x",
            cmp.overhead_at_one()
        );
        std::process::exit(1);
    }
    for run in cmp.runs.iter().filter(|r| r.shards > 1) {
        if run.telemetry.total_cross_shard_bytes() == 0 {
            eprintln!(
                "sharding benchmark regression: {} shards moved zero cross-shard bytes — \
                 the inter-shard mailbox is being bypassed",
                run.shards
            );
            std::process::exit(1);
        }
    }
}

/// Times the async shard schedule against lock-step at the paper's shard
/// count, prints the verified-equivalent comparison, and applies the
/// `NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP` gate.
fn async_bench() {
    heading("Async schedule benchmark — barrier-free shards vs lock-step");
    let cmp = run_async_schedule_bench_standalone(3);
    print_async_comparison(&cmp);
    check_async_gate(&cmp);
}

fn print_async_comparison(cmp: &AsyncScheduleComparison) {
    println!(
        "{} shards ({} threads, load imbalance {:.2}): lock-step {:>9.3} ms   async {:>9.3} ms   \
         wall speedup {:.2}x",
        cmp.shards,
        cmp.threads,
        cmp.load_imbalance,
        cmp.lockstep_wall.as_secs_f64() * 1e3,
        cmp.async_wall.as_secs_f64() * 1e3,
        cmp.wall_speedup(),
    );
    println!(
        "  critical path from measured rounds: barriered {:>9.3} ms   barrier-free {:>9.3} ms \
         ({:.2}x); {} mailbox flushes, ledger identical to lock-step",
        cmp.lockstep_critical_path.as_secs_f64() * 1e3,
        cmp.async_critical_path.as_secs_f64() * 1e3,
        cmp.critical_path_speedup(),
        cmp.flushes,
    );
}

/// Optional regression gate: `NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP=1.0` fails the
/// run when the async schedule's critical-path speedup over the barriered
/// schedule falls below the threshold, or when the async run stops recording
/// mailbox flushes (which would mean the eager flush path is being bypassed).
/// The gate uses the critical-path ratio rebuilt from the async run's own
/// measured round times rather than the raw wall clocks: the ratio is ≥ 1 on
/// any host by construction, while the measured walls flake on shared runners.
fn check_async_gate(cmp: &AsyncScheduleComparison) {
    let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP") else {
        return;
    };
    let threshold: f64 = threshold
        .parse()
        .expect("NMP_PAK_BENCH_MIN_ASYNC_SPEEDUP must be a number");
    if cmp.critical_path_speedup() < threshold {
        eprintln!(
            "async schedule regression: critical-path speedup {:.2}x is below \
             the required {threshold}x",
            cmp.critical_path_speedup()
        );
        std::process::exit(1);
    }
    if cmp.flushes == 0 {
        eprintln!(
            "async schedule regression: the async run recorded zero mailbox flushes — \
             the eager flush path is being bypassed"
        );
        std::process::exit(1);
    }
}

/// Times the three Iterative Compaction engines (pre-refactor serial, full-scan
/// parallel, frontier parallel) on the benchmark workload, prints the frontier's
/// per-iteration P1/P2/P3 breakdown, and applies the
/// `NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP` gate.
fn compaction_bench() {
    heading("Compaction benchmark — frontier engine vs pre-refactor full scan");
    let cmp = run_compaction_bench_standalone(3);
    print_compaction_comparison(&cmp);
    check_compaction_gate(&cmp);
}

fn print_compaction_comparison(cmp: &CompactionComparison) {
    println!(
        "engines ({} threads): baseline {:>9.3} ms   full-scan {:>9.3} ms   frontier {:>9.3} ms",
        cmp.threads,
        cmp.baseline.as_secs_f64() * 1e3,
        cmp.full_scan.as_secs_f64() * 1e3,
        cmp.frontier.as_secs_f64() * 1e3,
    );
    println!(
        "speedup: {:.2}x vs baseline ({:.2}x of it from the frontier alone); \
         checked nodes {} -> {} ({} iterations)",
        cmp.speedup(),
        cmp.frontier_vs_full_scan(),
        cmp.full_scan_profile.total_checked(),
        cmp.frontier_profile.total_checked(),
        cmp.frontier_profile.iterations.len(),
    );
    println!(
        "{:<10}{:>10}{:>10}{:>12}{:>12}{:>12}",
        "iteration", "checked", "alive", "P1 (ms)", "P2 (ms)", "P3 (ms)"
    );
    for it in &cmp.frontier_profile.iterations {
        println!(
            "{:<10}{:>10}{:>10}{:>12.3}{:>12.3}{:>12.3}",
            it.iteration,
            it.checked_nodes,
            it.alive_nodes,
            it.p1.as_secs_f64() * 1e3,
            it.p2.as_secs_f64() * 1e3,
            it.p3.as_secs_f64() * 1e3,
        );
    }
}

/// Optional regression gate: `NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP=1.2` fails
/// the run when the frontier compactor's speedup over the pre-refactor engine
/// falls below the threshold, or when the frontier stops checking strictly
/// fewer nodes than the full scan after iteration 0.
fn check_compaction_gate(cmp: &CompactionComparison) {
    let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP") else {
        return;
    };
    let threshold: f64 = threshold
        .parse()
        .expect("NMP_PAK_BENCH_MIN_COMPACTION_SPEEDUP must be a number");
    if cmp.speedup() < threshold {
        eprintln!(
            "compaction benchmark regression: frontier speedup {:.2}x is below \
             the required {threshold}x",
            cmp.speedup()
        );
        std::process::exit(1);
    }
    if !cmp.frontier_strictly_narrower() {
        eprintln!(
            "compaction benchmark regression: the frontier did not check strictly \
             fewer nodes than the full scan after iteration 0"
        );
        std::process::exit(1);
    }
}

/// Times the refactored B/C hot path against the pre-refactor baseline on the
/// fixed-seed workload and records the result in `BENCH_pipeline.json` (path
/// overridable via `NMP_PAK_BENCH_OUT`).
fn pipeline_bench() {
    heading("Pipeline benchmark — packed-u64 hot path vs pre-refactor baseline");
    let report = run_pipeline_bench(3);
    println!(
        "workload: {} reads ({} bases), k = {}, {} threads",
        report.reads,
        report.read_bases,
        nmp_pak_bench::pipeline_bench::BENCH_K,
        report.threads
    );
    for (phase, cmp) in [
        ("kmer_counting", &report.kmer_counting),
        ("macronode_construction", &report.macronode_construction),
    ] {
        println!(
            "{phase:<24} optimized {:>9.3} ms   baseline {:>9.3} ms   speedup {:>5.2}x",
            cmp.optimized.as_secs_f64() * 1e3,
            cmp.baseline.as_secs_f64() * 1e3,
            cmp.speedup()
        );
    }
    println!(
        "counting + construction speedup: {:.2}x",
        report.counting_plus_construction_speedup()
    );
    print_compaction_comparison(&report.compaction);
    print_sharding_comparison(&report.sharding);
    print_async_comparison(&report.async_schedule);
    print_spill_comparison(&report.spill);

    let streaming = &report.batch_streaming;
    println!(
        "batch streaming ({} batches, {} core(s)): sequential {:>9.3} ms   overlapped {:>9.3} ms   pipelined(d={}) {:>9.3} ms   speedup {:>5.2}x",
        streaming.batches,
        streaming.available_cores,
        streaming.sequential.as_secs_f64() * 1e3,
        streaming.overlapped.as_secs_f64() * 1e3,
        nmp_pak_bench::pipeline_bench::BENCH_PIPELINE_DEPTH,
        streaming.pipelined.as_secs_f64() * 1e3,
        streaming.overlap_speedup()
    );
    println!(
        "  critical path (non-competing halves): sequential {:>9.3} ms   overlapped {:>9.3} ms ({:>5.2}x)   pipelined {:>9.3} ms ({:>5.2}x)",
        streaming.sequential_critical_path.as_secs_f64() * 1e3,
        streaming.overlapped_critical_path.as_secs_f64() * 1e3,
        streaming.critical_path_speedup(),
        streaming.pipelined_critical_path.as_secs_f64() * 1e3,
        streaming.pipelined_critical_path_speedup()
    );

    let path = std::env::var("NMP_PAK_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    match std::fs::write(&path, report_to_json(&report)) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }

    // Optional regression gate: NMP_PAK_BENCH_MIN_SPEEDUP=1.3 makes the run fail
    // when the counting+construction speedup falls below the threshold (CI sets a
    // conservative value so shared-runner noise doesn't flake the build).
    if let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MIN_SPEEDUP") {
        let threshold: f64 = threshold
            .parse()
            .expect("NMP_PAK_BENCH_MIN_SPEEDUP must be a number");
        let speedup = report.counting_plus_construction_speedup();
        if speedup < threshold {
            eprintln!(
                "pipeline benchmark regression: counting+construction speedup \
                 {speedup:.2}x is below the required {threshold}x"
            );
            std::process::exit(1);
        }
    }

    // Optional compaction gate: requires the frontier engine to beat the
    // pre-refactor compactor by the given factor (CI sets 1.2; quiet hardware
    // runs well above the 1.5 acceptance target).
    check_compaction_gate(&report.compaction);

    // Optional sharding gate: bounds the sharded engine's bookkeeping overhead
    // at one shard and requires real cross-shard mailbox traffic when sharded.
    check_sharding_gate(&report.sharding);

    // Optional async gate: requires the async shard schedule's critical-path
    // speedup over lock-step and real recorded mailbox flushes.
    check_async_gate(&report.async_schedule);

    // Optional spill gate: bounds the external-memory counter's wall-clock
    // overhead and requires the byte budget to move real data to disk.
    check_spill_gate(&report.spill);

    // Optional streaming gate: NMP_PAK_BENCH_MIN_OVERLAP_SPEEDUP=1.0 requires the
    // overlapped schedule's critical path to beat the sequential one. The gate
    // uses the critical-path ratio (derived from the same measured per-batch
    // stage times) rather than the raw wall clocks: the measured separation is a
    // few percent and would flake on noisy shared runners, while the critical
    // path is strictly shorter whenever there are ≥ 2 batches — on any host.
    if let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MIN_OVERLAP_SPEEDUP") {
        let threshold: f64 = threshold
            .parse()
            .expect("NMP_PAK_BENCH_MIN_OVERLAP_SPEEDUP must be a number");
        if streaming.critical_path_speedup() < threshold {
            eprintln!(
                "batch streaming regression: critical-path overlap speedup {:.2}x is \
                 below the required {threshold}x",
                streaming.critical_path_speedup()
            );
            std::process::exit(1);
        }
    }

    // Optional k-deep gate: NMP_PAK_BENCH_MIN_PIPELINED_SPEEDUP requires the
    // pipelined schedule's critical path to beat the sequential one by the given
    // factor. The k-deep window admits fronts no later than the 1-deep overlap,
    // so this speedup is at least the overlap speedup on any host.
    if let Ok(threshold) = std::env::var("NMP_PAK_BENCH_MIN_PIPELINED_SPEEDUP") {
        let threshold: f64 = threshold
            .parse()
            .expect("NMP_PAK_BENCH_MIN_PIPELINED_SPEEDUP must be a number");
        if streaming.pipelined_critical_path_speedup() < threshold {
            eprintln!(
                "batch streaming regression: k-deep pipelined critical-path speedup {:.2}x \
                 is below the required {threshold}x",
                streaming.pipelined_critical_path_speedup()
            );
            std::process::exit(1);
        }
    }
}

fn heading(title: &str) {
    println!("\n== {title} ==");
}

fn fig5(exp: &Experiments) {
    heading("Fig. 5 — PaKman phase runtime breakdown");
    for row in exp.fig5_phase_breakdown() {
        println!("{:<36} {}", row.label, pct(row.value));
    }
}

fn fig6(exp: &Experiments) {
    heading("Fig. 6 — Iterative Compaction stall breakdown (CPU baseline)");
    let s = exp.fig6_stall_breakdown();
    for (label, value) in [
        ("base", s.base),
        ("branch", s.branch),
        ("mem-l3", s.mem_l3),
        ("mem-dram", s.mem_dram),
        ("sync-futex", s.sync_futex),
        ("other", s.other),
    ] {
        println!("{label:<12} {}", pct(value));
    }
}

fn fig7(exp: &Experiments) {
    heading("Fig. 7 — MacroNode size distribution across compaction");
    let bounds = nmp_pak_pakman::SizeHistogram::BUCKET_BOUNDS;
    print!("{:<12}", "iteration");
    for b in bounds {
        print!("{:>8}", format!("≤{b}"));
    }
    println!("{:>8}", ">32K");
    for (iteration, hist) in exp.fig7_size_distributions() {
        print!("{iteration:<12}");
        for count in hist.counts() {
            print!("{count:>8}");
        }
        println!();
    }
}

fn fig8(exp: &Experiments) {
    heading("Fig. 8 — proportion of MacroNodes exceeding size thresholds");
    println!(
        "{:<12}{:>10}{:>10}{:>10}{:>10}",
        "iteration", ">1KB", ">2KB", ">4KB", ">8KB"
    );
    for (iteration, f) in exp.fig8_oversize_fractions() {
        println!(
            "{iteration:<12}{:>10}{:>10}{:>10}{:>10}",
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3])
        );
    }
}

fn table1(exp: &Experiments) {
    heading("Table 1 — contig quality (N50) vs batch size");
    let fractions = [0.005, 0.01, 0.03, 0.04, 0.05, 0.10, 1.0];
    match exp.table1_batch_quality(&fractions) {
        Ok(rows) => {
            for row in rows {
                println!("batch {:<8} N50 = {}", row.label, row.value as u64);
            }
        }
        Err(err) => println!("(table 1 unavailable for this workload: {err})"),
    }
}

fn fig12(exp: &Experiments) {
    heading("Fig. 12 — performance normalized to the CPU baseline");
    for row in exp.fig12_normalized_performance() {
        println!("{:<22} {:>6.2}x", row.label, row.value);
    }
}

fn fig13(exp: &Experiments) {
    heading("Fig. 13 — memory bandwidth utilization");
    for row in exp.fig13_bandwidth_utilization() {
        println!("{:<22} {:>7}", row.label, pct(row.value));
    }
}

fn fig14(exp: &Experiments) {
    heading("Fig. 14 — memory traffic normalized to CPU-baseline reads");
    println!("{:<22}{:>10}{:>10}", "backend", "reads", "writes");
    for (label, reads, writes) in exp.fig14_traffic() {
        println!("{label:<22}{reads:>10.2}{writes:>10.2}");
    }
}

fn fig15(exp: &Experiments) {
    heading("Fig. 15 — NMP-PaK performance vs PEs per channel");
    for row in exp.fig15_pe_sweep(&[1, 2, 4, 8, 16, 32, 64]) {
        println!("{:<10} {:>6.2}x", row.label, row.value);
    }
}

fn comm(exp: &Experiments) {
    heading("§6.3 — TransferNode communication locality");
    let c = exp.comm_breakdown();
    println!("intra-DIMM  {}", pct(c.intra_dimm_fraction()));
    println!("inter-DIMM  {}", pct(c.inter_dimm_fraction()));
    println!(
        "  of intra-DIMM, cross-PE {}",
        pct(c.cross_pe_fraction_of_intra())
    );
}

fn table3(exp: &Experiments) {
    heading("Table 3 — area and power");
    println!(
        "{:<40}{:>12}{:>12}",
        "component", "area (mm²)", "power (mW)"
    );
    for (name, area, power) in exp.table3_area_power() {
        println!("{name:<40}{area:>12.3}{power:>12.1}");
    }
}

fn supercomputer(exp: &Experiments) {
    heading("§6.4 — comparison with the PaKman supercomputer run");
    let sc = exp.supercomputer_comparison();
    println!(
        "single-node assembly time        {:.2} s",
        sc.nmp_single_node_seconds
    );
    println!(
        "supercomputer ({} cores)       {:.0} s",
        sc.supercomputer_cores, sc.supercomputer_seconds
    );
    println!(
        "supercomputer raw speed advantage {:.1}x",
        sc.supercomputer_speed_advantage
    );
    println!(
        "NMP-PaK throughput advantage      {:.1}x",
        sc.nmp_throughput_advantage
    );
    println!(
        "integration speedup (Amdahl)      {:.2}x",
        sc.supercomputer_integration_speedup
    );
}

fn footprint(exp: &Experiments) {
    heading("§3.5 / §6.6 — memory footprint and GPU capacity");
    let f = exp.footprint_summary();
    println!("unoptimized peak     {} bytes", f.unoptimized_peak_bytes);
    println!("optimized peak       {} bytes", f.optimized_peak_bytes);
    println!("batched (10%) peak   {} bytes", f.batched_peak_bytes);
    println!("combined reduction   {:.1}x", f.reduction_factor);
    println!("fits a 40 GB GPU     {}", f.fits_gpu);
    println!(
        "GPU cluster power ratio {:.0}x, area ratio {:.0}x",
        f.gpu_power_ratio, f.gpu_area_ratio
    );
}
