//! MacroNode address layout.
//!
//! MacroNodes are stored in ascending (k-1)-mer order and partitioned across DIMMs:
//! DIMM 0 holds the lowest (k-1)-mers (§4.2). Slot indices from the compaction trace
//! are therefore mapped to contiguous byte ranges inside per-DIMM regions. The same
//! layout drives the hardware model's static mapping table and its intra-/inter-DIMM
//! communication statistics (§6.3).

use crate::config::DramConfig;
use crate::request::MemRequest;
use serde::{Deserialize, Serialize};

/// The physical layout of every MacroNode slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLayout {
    /// Byte address of each slot.
    addresses: Vec<u64>,
    /// Allocated byte size of each slot (initial size rounded up to lines).
    sizes: Vec<usize>,
    /// DIMM (= channel) index of each slot.
    dimms: Vec<usize>,
    /// Bytes reserved per DIMM region.
    dimm_capacity: u64,
    /// Number of DIMMs.
    dimm_count: usize,
    /// Line size used for rounding.
    line_bytes: usize,
}

impl NodeLayout {
    /// Lays out `initial_sizes[slot]` bytes per slot across the DIMMs of `config`,
    /// assigning an equal number of consecutive slots to each DIMM.
    pub fn new(initial_sizes: &[usize], config: &DramConfig) -> NodeLayout {
        let dimm_count = config.channels.max(1);
        let line = config.line_bytes.max(1);
        let n = initial_sizes.len();
        let per_dimm = n.div_ceil(dimm_count).max(1);

        // First pass: allocation size per slot and per-DIMM usage.
        let mut sizes = Vec::with_capacity(n);
        let mut dimm_usage = vec![0u64; dimm_count];
        let mut dimms = Vec::with_capacity(n);
        for (slot, &size) in initial_sizes.iter().enumerate() {
            // Reserve head-room for growth during compaction (extensions lengthen).
            let alloc = (size.max(1) * 2).div_ceil(line) * line;
            let dimm = (slot / per_dimm).min(dimm_count - 1);
            sizes.push(alloc);
            dimms.push(dimm);
            dimm_usage[dimm] += alloc as u64;
        }
        let dimm_capacity = dimm_usage
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(config.row_buffer_bytes as u64)
            .next_multiple_of(config.row_buffer_bytes as u64);

        // Second pass: addresses within each DIMM region.
        let mut cursor = vec![0u64; dimm_count];
        let mut addresses = Vec::with_capacity(n);
        for slot in 0..n {
            let dimm = dimms[slot];
            addresses.push(dimm as u64 * dimm_capacity + cursor[dimm]);
            cursor[dimm] += sizes[slot] as u64;
        }

        NodeLayout {
            addresses,
            sizes,
            dimms,
            dimm_capacity,
            dimm_count,
            line_bytes: line,
        }
    }

    /// Number of slots laid out.
    pub fn slot_count(&self) -> usize {
        self.addresses.len()
    }

    /// Byte address of a slot.
    pub fn address_of(&self, slot: usize) -> u64 {
        self.addresses[slot]
    }

    /// Allocated bytes of a slot.
    pub fn allocated_size(&self, slot: usize) -> usize {
        self.sizes[slot]
    }

    /// DIMM (= channel) holding a slot.
    pub fn dimm_of(&self, slot: usize) -> usize {
        self.dimms[slot]
    }

    /// Number of DIMMs used by the layout.
    pub fn dimm_count(&self) -> usize {
        self.dimm_count
    }

    /// Bytes reserved per DIMM region (used to configure the address mapping).
    pub fn dimm_capacity(&self) -> u64 {
        self.dimm_capacity
    }

    /// PE responsible for a slot when each DIMM hosts `pes_per_dimm` PEs and nodes are
    /// distributed round-robin inside their DIMM.
    pub fn pe_of(&self, slot: usize, pes_per_dimm: usize) -> usize {
        slot % pes_per_dimm.max(1)
    }

    /// Builds the read requests for accessing `bytes` of the node in `slot`.
    pub fn node_read(&self, slot: usize, bytes: usize) -> MemRequest {
        MemRequest::read(
            self.addresses[slot],
            clamp_bytes(bytes, self.line_bytes),
            slot,
        )
    }

    /// Builds the write request for writing `bytes` of the node in `slot`.
    pub fn node_write(&self, slot: usize, bytes: usize) -> MemRequest {
        MemRequest::write(
            self.addresses[slot],
            clamp_bytes(bytes, self.line_bytes),
            slot,
        )
    }
}

fn clamp_bytes(bytes: usize, line: usize) -> u32 {
    (bytes.max(1).div_ceil(line) * line) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_of(sizes: &[usize]) -> NodeLayout {
        NodeLayout::new(sizes, &DramConfig::default())
    }

    #[test]
    fn slots_are_spread_evenly_across_dimms() {
        let sizes = vec![200; 80];
        let layout = layout_of(&sizes);
        assert_eq!(layout.slot_count(), 80);
        assert_eq!(layout.dimm_count(), 8);
        for slot in 0..80 {
            assert_eq!(layout.dimm_of(slot), slot / 10);
        }
    }

    #[test]
    fn addresses_within_a_dimm_do_not_overlap() {
        let sizes = vec![100, 500, 64, 9000, 128, 250, 300, 80, 80, 80];
        let layout = layout_of(&sizes);
        for a in 0..sizes.len() {
            for b in 0..sizes.len() {
                if a == b || layout.dimm_of(a) != layout.dimm_of(b) {
                    continue;
                }
                let (start_a, end_a) = (
                    layout.address_of(a),
                    layout.address_of(a) + layout.allocated_size(a) as u64,
                );
                let start_b = layout.address_of(b);
                assert!(
                    start_b >= end_a || start_b < start_a,
                    "slots {a} and {b} overlap"
                );
            }
        }
    }

    #[test]
    fn addresses_fall_inside_their_dimm_region() {
        let sizes = vec![300; 64];
        let layout = layout_of(&sizes);
        for slot in 0..64 {
            let dimm = layout.dimm_of(slot) as u64;
            let addr = layout.address_of(slot);
            assert!(addr >= dimm * layout.dimm_capacity());
            assert!(
                addr + layout.allocated_size(slot) as u64 <= (dimm + 1) * layout.dimm_capacity()
            );
        }
    }

    #[test]
    fn allocation_is_line_aligned_and_leaves_growth_room() {
        let layout = layout_of(&[100]);
        assert_eq!(layout.allocated_size(0) % 64, 0);
        assert!(layout.allocated_size(0) >= 200);
    }

    #[test]
    fn requests_round_up_to_lines() {
        let layout = layout_of(&[100, 100]);
        let read = layout.node_read(1, 100);
        assert_eq!(read.size_bytes, 128);
        assert_eq!(read.addr, layout.address_of(1));
        let write = layout.node_write(0, 1);
        assert!(write.is_write());
        assert_eq!(write.size_bytes, 64);
    }

    #[test]
    fn pe_assignment_round_robins_within_a_dimm() {
        let layout = layout_of(&[64; 32]);
        assert_eq!(layout.pe_of(0, 16), 0);
        assert_eq!(layout.pe_of(5, 16), 5);
        assert_eq!(layout.pe_of(21, 16), 5);
        assert_eq!(layout.pe_of(3, 0), 0);
    }

    #[test]
    fn empty_layout_is_valid() {
        let layout = layout_of(&[]);
        assert_eq!(layout.slot_count(), 0);
        assert!(layout.dimm_capacity() >= 8192);
    }
}
