//! Analytic multicore CPU model for Iterative Compaction.
//!
//! The paper profiles its software-optimized PaKman baseline on a 2× Xeon 8380 host
//! (Table 2) with Linux perf and the Sniper simulator, and reports that DRAM-access
//! stalls (54 %) and core workload imbalance (`sync-futex`, 39 %) dominate (Fig. 6),
//! while memory bandwidth stays under 7 % of peak (Fig. 13). This module reproduces
//! those quantities with a first-order core model: MacroNode processing is dominated
//! by dependent (pointer-chasing) DRAM accesses with little memory-level parallelism,
//! plus a small compute component, a barrier at the end of every iteration (imbalance)
//! and per-update lock hand-offs.
//!
//! The model's constants are calibrated once against the paper's reported breakdown
//! and then held fixed across all experiments; see `EXPERIMENTS.md`.

use crate::config::DramConfig;
use crate::layout::NodeLayout;
use crate::stats::MemoryStats;
use crate::traffic::{build_iteration_requests, ProcessFlow, TrafficSummary};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// CPU machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Hardware threads used by the run (the paper profiles with 64).
    pub threads: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Average DRAM access latency in nanoseconds (row misses, queueing, TLB included).
    pub dram_latency_ns: f64,
    /// Average last-level-cache hit latency in nanoseconds.
    pub l3_latency_ns: f64,
    /// Fraction of MacroNode line accesses served by the LLC (low: data has low reuse).
    pub l3_hit_rate: f64,
    /// Dependent (non-overlappable) accesses per MacroNode visit, from the nested
    /// 1D/2D vector indirections of the MacroNode structure.
    pub dependent_accesses_per_node: f64,
    /// Memory-level parallelism achieved for the streaming part of a node access.
    pub streaming_mlp: f64,
    /// Compute nanoseconds per MacroNode byte processed.
    pub compute_ns_per_byte: f64,
    /// Branch-misprediction overhead as a fraction of compute time.
    pub branch_fraction: f64,
    /// Serialized lock hand-off cost per destination update, in nanoseconds
    /// (the `omp_set_lock` protecting concurrent TransferNode application).
    pub lock_overhead_ns: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            threads: 64,
            freq_ghz: 2.3,
            dram_latency_ns: 95.0,
            l3_latency_ns: 18.0,
            l3_hit_rate: 0.15,
            dependent_accesses_per_node: 6.0,
            streaming_mlp: 1.5,
            compute_ns_per_byte: 0.02,
            branch_fraction: 0.05,
            lock_overhead_ns: 6.0,
        }
    }
}

/// Stall-time decomposition of a compaction run, as fractions summing to 1
/// (the categories of Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Core computation.
    pub base: f64,
    /// Branch misprediction.
    pub branch: f64,
    /// Last-level-cache access.
    pub mem_l3: f64,
    /// DRAM access.
    pub mem_dram: f64,
    /// Synchronization: barrier imbalance and lock hand-offs.
    pub sync_futex: f64,
    /// Everything else.
    pub other: f64,
}

impl StallBreakdown {
    /// Sum of all categories (≈ 1 for a normalized breakdown).
    pub fn total(&self) -> f64 {
        self.base + self.branch + self.mem_l3 + self.mem_dram + self.sync_futex + self.other
    }
}

/// Result of simulating Iterative Compaction on the CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuRunResult {
    /// Simulated runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Stall-time decomposition.
    pub stall: StallBreakdown,
    /// Read/write traffic under the chosen process flow.
    pub traffic: TrafficSummary,
    /// DRAM statistics (traffic plus achieved bandwidth over the runtime).
    pub memory: MemoryStats,
}

impl CpuRunResult {
    /// Fraction of peak memory bandwidth achieved.
    pub fn bandwidth_utilization(&self) -> f64 {
        self.memory.bandwidth_utilization()
    }
}

/// Simulates a compaction trace on the CPU model under the given process flow.
pub fn simulate_cpu_compaction(
    trace: &CompactionTrace,
    layout: &NodeLayout,
    flow: ProcessFlow,
    dram: &DramConfig,
    cpu: &CpuConfig,
) -> CpuRunResult {
    let threads = cpu.threads.max(1);
    let read_passes = match flow {
        ProcessFlow::Baseline => 2.0,
        ProcessFlow::Optimized | ProcessFlow::IdealForwarding => 1.0,
    };

    let mut runtime_ns = 0.0f64;
    let mut busy_base = 0.0f64;
    let mut busy_branch = 0.0f64;
    let mut busy_l3 = 0.0f64;
    let mut busy_dram = 0.0f64;
    let mut sync_ns = 0.0f64;
    let mut traffic = TrafficSummary::default();

    for iteration in &trace.iterations {
        traffic.add_requests(&build_iteration_requests(iteration, layout, flow));

        // Per-node visit cost.
        let node_cost = |size_bytes: usize| -> (f64, f64, f64, f64) {
            let lines = (size_bytes as f64 / dram.line_bytes as f64).ceil().max(1.0);
            let dependent = cpu.dependent_accesses_per_node * cpu.dram_latency_ns;
            let streamed = lines
                * (cpu.l3_hit_rate * cpu.l3_latency_ns
                    + (1.0 - cpu.l3_hit_rate) * cpu.dram_latency_ns)
                / cpu.streaming_mlp;
            let l3_part = lines * cpu.l3_hit_rate * cpu.l3_latency_ns / cpu.streaming_mlp;
            let dram_part = (dependent + streamed - l3_part).max(0.0);
            let compute = size_bytes as f64 * cpu.compute_ns_per_byte;
            let branch = compute * cpu.branch_fraction;
            (compute, branch, l3_part, dram_part)
        };

        // The paper's runtime distributes equal node *counts* to threads; sizes are
        // skewed, so per-thread busy time differs and the iteration barrier exposes
        // the imbalance as sync-futex time.
        let mut per_thread_busy = vec![0.0f64; threads];
        let chunk = iteration.checks.len().div_ceil(threads).max(1);
        for (t, nodes) in iteration.checks.chunks(chunk).enumerate() {
            for check in nodes {
                let (compute, branch, l3, dram_t) = node_cost(check.size_bytes);
                let visit = (compute + branch + l3 + dram_t) * read_passes;
                per_thread_busy[t] += visit;
                busy_base += compute * read_passes;
                busy_branch += branch * read_passes;
                busy_l3 += l3 * read_passes;
                busy_dram += dram_t * read_passes;
            }
        }

        // Destination updates: a read-modify-write per destination plus the lock
        // hand-off that serializes concurrent writers.
        let chunk = iteration.updates.len().div_ceil(threads).max(1);
        for (t, updates) in iteration.updates.chunks(chunk).enumerate() {
            for update in updates {
                let (compute, branch, l3, dram_t) = node_cost(update.size_bytes);
                per_thread_busy[t % threads] += compute + branch + l3 + dram_t;
                busy_base += compute;
                busy_branch += branch;
                busy_l3 += l3;
                busy_dram += dram_t;
            }
        }
        let serialized_locks = iteration.updates.len() as f64 * cpu.lock_overhead_ns;

        let max_busy = per_thread_busy.iter().copied().fold(0.0f64, f64::max);
        let iteration_time = max_busy + serialized_locks;
        runtime_ns += iteration_time;

        // Threads wait at the barrier for the slowest thread and during serialized
        // lock hand-offs.
        for busy in &per_thread_busy {
            sync_ns += (iteration_time - busy).max(0.0);
        }
    }

    let total_thread_time = runtime_ns * threads as f64;
    let busy_total = busy_base + busy_branch + busy_l3 + busy_dram;
    let other = (total_thread_time - busy_total - sync_ns).max(0.0);
    let norm = if total_thread_time > 0.0 {
        total_thread_time
    } else {
        1.0
    };
    let stall = StallBreakdown {
        base: busy_base / norm,
        branch: busy_branch / norm,
        mem_l3: busy_l3 / norm,
        mem_dram: busy_dram / norm,
        sync_futex: sync_ns / norm,
        other: other / norm,
    };

    let memory = MemoryStats {
        read_lines: traffic.read_bytes / dram.line_bytes as u64,
        write_lines: traffic.write_bytes / dram.line_bytes as u64,
        read_bytes: traffic.read_bytes,
        write_bytes: traffic.write_bytes,
        elapsed_ns: runtime_ns,
        peak_bandwidth_gbps: dram.total_peak_bandwidth_gbps(),
        ..MemoryStats::default()
    };

    CpuRunResult {
        runtime_ns,
        stall,
        traffic,
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::trace::{IterationTrace, NodeCheck, UpdateEvent};

    fn synthetic_trace(nodes: usize, iterations: usize) -> (CompactionTrace, NodeLayout) {
        let sizes: Vec<usize> = (0..nodes).map(|i| 200 + (i % 7) * 120).collect();
        let mut trace = CompactionTrace::new(nodes, sizes.clone());
        for it in 0..iterations {
            let alive = nodes - it * nodes / (iterations + 1);
            let checks: Vec<NodeCheck> = (0..alive)
                .map(|slot| NodeCheck {
                    slot,
                    size_bytes: sizes[slot] + it * 16,
                    invalidated: slot % 4 == 1,
                })
                .collect();
            let updates: Vec<UpdateEvent> = checks
                .iter()
                .filter(|c| c.invalidated)
                .map(|c| UpdateEvent {
                    dest_slot: (c.slot + 1) % alive.max(1),
                    size_bytes: c.size_bytes + 32,
                })
                .collect();
            trace.iterations.push(IterationTrace {
                checks,
                transfers: vec![],
                updates,
            });
        }
        let layout = NodeLayout::new(&sizes, &DramConfig::default());
        (trace, layout)
    }

    #[test]
    fn breakdown_sums_to_one_and_dram_dominates() {
        let (trace, layout) = synthetic_trace(2_000, 5);
        let result = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Baseline,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        let total = result.stall.total();
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
        assert!(
            result.stall.mem_dram > result.stall.base,
            "dram {} vs base {}",
            result.stall.mem_dram,
            result.stall.base
        );
        assert!(result.stall.mem_dram > 0.3);
        assert!(result.stall.sync_futex > 0.05);
    }

    #[test]
    fn bandwidth_utilization_is_single_digit_percent() {
        let (trace, layout) = synthetic_trace(4_000, 5);
        let result = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Baseline,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        let util = result.bandwidth_utilization();
        assert!(util > 0.005 && util < 0.25, "utilization = {util}");
    }

    #[test]
    fn optimized_flow_is_faster_than_baseline() {
        let (trace, layout) = synthetic_trace(2_000, 5);
        let base = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Baseline,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        let opt = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Optimized,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        assert!(opt.runtime_ns < base.runtime_ns);
        assert!(opt.traffic.read_bytes < base.traffic.read_bytes);
        assert!(opt.traffic.write_bytes < base.traffic.write_bytes);
    }

    #[test]
    fn more_threads_reduce_runtime_but_not_below_serial_sections() {
        let (trace, layout) = synthetic_trace(2_000, 3);
        let few = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Optimized,
            &DramConfig::default(),
            &CpuConfig {
                threads: 4,
                ..CpuConfig::default()
            },
        );
        let many = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Optimized,
            &DramConfig::default(),
            &CpuConfig {
                threads: 64,
                ..CpuConfig::default()
            },
        );
        assert!(many.runtime_ns < few.runtime_ns);
        // Sync share grows with thread count (barrier + serialized locks).
        assert!(many.stall.sync_futex > few.stall.sync_futex);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = CompactionTrace::new(0, vec![]);
        let layout = NodeLayout::new(&[], &DramConfig::default());
        let result = simulate_cpu_compaction(
            &trace,
            &layout,
            ProcessFlow::Optimized,
            &DramConfig::default(),
            &CpuConfig::default(),
        );
        assert_eq!(result.runtime_ns, 0.0);
        assert_eq!(result.traffic.total_bytes(), 0);
    }
}
