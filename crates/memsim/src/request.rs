//! Memory requests.

use serde::{Deserialize, Serialize};

/// Whether a request reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read (MacroNode fetch, TransferNode fetch).
    Read,
    /// A write (MacroNode write-back).
    Write,
}

/// One memory request at cache-line granularity grouping metadata.
///
/// A MacroNode larger than one line produces several requests sharing the same
/// `mn_slot` tag, mirroring the paper's `mn_idx` trace grouping (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Physical byte address of the first byte accessed.
    pub addr: u64,
    /// Number of bytes accessed (usually one line).
    pub size_bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// MacroNode slot this access belongs to (the paper's `mn_idx`).
    pub mn_slot: usize,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(addr: u64, size_bytes: u32, mn_slot: usize) -> Self {
        MemRequest {
            addr,
            size_bytes,
            kind: AccessKind::Read,
            mn_slot,
        }
    }

    /// Creates a write request.
    pub fn write(addr: u64, size_bytes: u32, mn_slot: usize) -> Self {
        MemRequest {
            addr,
            size_bytes,
            kind: AccessKind::Write,
            mn_slot,
        }
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemRequest::read(0x1000, 64, 7);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.is_write());
        let w = MemRequest::write(0x2000, 64, 7);
        assert!(w.is_write());
        assert_eq!(w.mn_slot, 7);
    }
}
