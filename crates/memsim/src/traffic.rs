//! Conversion of compaction traces into memory-request streams.
//!
//! The paper contrasts two process flows for Iterative Compaction (§4.5, "Optimize
//! Process Flow for Less Memory Operations"):
//!
//! * the **baseline** flow executes each stage as a separate pass over the whole
//!   MacroNode set, so every stage re-reads every node and the per-node bookkeeping is
//!   written back each pass; and
//! * the **optimized** (pipelined systolic) flow reads each MacroNode once per
//!   iteration, reuses the stage-P1 data in stage P2, and only touches the destination
//!   nodes that actually receive TransferNodes.
//!
//! An additional **ideal forwarding** variant (§5.3) also reuses the P1 data in P3,
//! eliminating the destination re-read. These three policies are what produce the
//! read/write traffic ratios of Fig. 14.

use crate::layout::NodeLayout;
use crate::request::MemRequest;
use nmp_pak_pakman::trace::IterationTrace;
use serde::{Deserialize, Serialize};

/// Which process flow to model when expanding a trace into memory requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessFlow {
    /// Original PaKman flow: one full pass over all MacroNodes per stage
    /// (3 read passes), plus a bookkeeping write-back of every node per iteration.
    Baseline,
    /// NMP-PaK / CPU-PaK flow: one read per alive node, destination read + write per
    /// updated node.
    Optimized,
    /// Optimized flow with ideal P1→P3 forwarding: the destination read is served from
    /// data already fetched in stage P1.
    IdealForwarding,
}

/// Aggregate read/write traffic over a whole trace, normalized later for Fig. 14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Read requests (node granularity).
    pub reads: u64,
    /// Write requests (node granularity).
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl TrafficSummary {
    /// Accumulates the traffic of one request list.
    pub fn add_requests(&mut self, requests: &[MemRequest]) {
        for r in requests {
            if r.is_write() {
                self.writes += 1;
                self.write_bytes += r.size_bytes as u64;
            } else {
                self.reads += 1;
                self.read_bytes += r.size_bytes as u64;
            }
        }
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Expands one compaction iteration into a memory-request stream under `flow`.
///
/// Requests are emitted in stage order (P1 checks, then P2 re-reads for the baseline,
/// then P3 destination traffic), with node-granular sizes; the DRAM model splits them
/// into line-granular bursts.
pub fn build_iteration_requests(
    iteration: &IterationTrace,
    layout: &NodeLayout,
    flow: ProcessFlow,
) -> Vec<MemRequest> {
    let mut requests = Vec::new();

    // Stage P1: read every alive node's data1 (the (k-1)-mer plus extensions).
    for check in &iteration.checks {
        requests.push(layout.node_read(check.slot, check.size_bytes));
    }

    match flow {
        ProcessFlow::Baseline => {
            // Separate stage passes: stage P2 re-reads every node (it is a fresh scan
            // over the MacroNode set to find the marked ones and pull their wiring),
            // and the per-node invalidation mark is written back during P1.
            for check in &iteration.checks {
                requests.push(layout.node_write(check.slot, layout.config_line()));
            }
            for check in &iteration.checks {
                requests.push(layout.node_read(check.slot, check.size_bytes));
            }
            // Stage P3: destination read-modify-write, plus the baseline's node
            // movement (invalidated nodes are copied/erased rather than lazily
            // deleted), modelled as a write of each invalidated node.
            for check in iteration.checks.iter().filter(|c| c.invalidated) {
                requests.push(layout.node_write(check.slot, check.size_bytes));
            }
            for update in &iteration.updates {
                requests.push(layout.node_read(update.dest_slot, update.size_bytes));
                requests.push(layout.node_write(update.dest_slot, update.size_bytes));
            }
        }
        ProcessFlow::Optimized => {
            // Stage P2 reuses the P1 data (only the small `MN data2` wiring info is
            // additionally fetched for invalidated nodes).
            for check in iteration.checks.iter().filter(|c| c.invalidated) {
                requests.push(layout.node_read(check.slot, layout.config_line()));
            }
            for update in &iteration.updates {
                requests.push(layout.node_read(update.dest_slot, update.size_bytes));
                requests.push(layout.node_write(update.dest_slot, update.size_bytes));
            }
        }
        ProcessFlow::IdealForwarding => {
            for check in iteration.checks.iter().filter(|c| c.invalidated) {
                requests.push(layout.node_read(check.slot, layout.config_line()));
            }
            // P1→P3 forwarding: the destination's current contents are already in the
            // pipeline, so only the write-back remains.
            for update in &iteration.updates {
                requests.push(layout.node_write(update.dest_slot, update.size_bytes));
            }
        }
    }

    requests
}

/// Sums the traffic of a whole trace under `flow`.
pub fn summarize_trace(
    trace: &nmp_pak_pakman::CompactionTrace,
    layout: &NodeLayout,
    flow: ProcessFlow,
) -> TrafficSummary {
    let mut summary = TrafficSummary::default();
    for iteration in &trace.iterations {
        let requests = build_iteration_requests(iteration, layout, flow);
        summary.add_requests(&requests);
    }
    summary
}

impl NodeLayout {
    /// Line size shortcut used for small metadata accesses.
    fn config_line(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;
    use nmp_pak_pakman::trace::{NodeCheck, UpdateEvent};

    fn sample_iteration() -> IterationTrace {
        IterationTrace {
            checks: vec![
                NodeCheck {
                    slot: 0,
                    size_bytes: 256,
                    invalidated: false,
                },
                NodeCheck {
                    slot: 1,
                    size_bytes: 512,
                    invalidated: true,
                },
                NodeCheck {
                    slot: 2,
                    size_bytes: 128,
                    invalidated: false,
                },
            ],
            transfers: vec![],
            updates: vec![
                UpdateEvent {
                    dest_slot: 0,
                    size_bytes: 300,
                },
                UpdateEvent {
                    dest_slot: 2,
                    size_bytes: 160,
                },
            ],
        }
    }

    fn layout() -> NodeLayout {
        NodeLayout::new(&[256, 512, 128], &DramConfig::default())
    }

    #[test]
    fn optimized_flow_reads_each_alive_node_once() {
        let reqs = build_iteration_requests(&sample_iteration(), &layout(), ProcessFlow::Optimized);
        let reads_of_slot0 = reqs
            .iter()
            .filter(|r| !r.is_write() && r.mn_slot == 0)
            .count();
        // One P1 read + one destination read.
        assert_eq!(reads_of_slot0, 2);
        let writes: Vec<_> = reqs.iter().filter(|r| r.is_write()).collect();
        assert_eq!(writes.len(), 2); // only the two destination write-backs
    }

    #[test]
    fn baseline_flow_has_more_reads_and_writes_than_optimized() {
        let it = sample_iteration();
        let l = layout();
        let mut base = TrafficSummary::default();
        base.add_requests(&build_iteration_requests(&it, &l, ProcessFlow::Baseline));
        let mut opt = TrafficSummary::default();
        opt.add_requests(&build_iteration_requests(&it, &l, ProcessFlow::Optimized));
        assert!(base.read_bytes > opt.read_bytes);
        assert!(base.write_bytes > opt.write_bytes);
        assert!(base.reads > opt.reads);
        assert!(base.writes > opt.writes);
    }

    #[test]
    fn ideal_forwarding_removes_destination_reads() {
        let it = sample_iteration();
        let l = layout();
        let mut opt = TrafficSummary::default();
        opt.add_requests(&build_iteration_requests(&it, &l, ProcessFlow::Optimized));
        let mut fwd = TrafficSummary::default();
        fwd.add_requests(&build_iteration_requests(
            &it,
            &l,
            ProcessFlow::IdealForwarding,
        ));
        assert!(fwd.read_bytes < opt.read_bytes);
        assert_eq!(fwd.write_bytes, opt.write_bytes);
    }

    #[test]
    fn traffic_summary_totals() {
        let mut summary = TrafficSummary::default();
        summary.add_requests(&[MemRequest::read(0, 128, 0), MemRequest::write(64, 64, 1)]);
        assert_eq!(summary.reads, 1);
        assert_eq!(summary.writes, 1);
        assert_eq!(summary.total_bytes(), 192);
    }
}
