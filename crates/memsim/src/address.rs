//! Physical-address decomposition.
//!
//! MacroNodes are laid out contiguously in ascending (k-1)-mer order and partitioned
//! across DIMMs (one DIMM per channel in this model), so the channel is the
//! high-order component of the address; rows, banks and columns interleave the bytes
//! inside a DIMM.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// The DRAM coordinates of one physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Channel (and DIMM) index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (line offset) within the row.
    pub column: u64,
}

/// Maps byte addresses to DRAM coordinates.
///
/// The per-DIMM capacity is logical: addresses are laid out DIMM-major (`channel =
/// addr / dimm_capacity`), then striped across banks at row-buffer granularity so
/// consecutive rows of a node land in different banks (bank-level parallelism for
/// streaming a large node), matching the layout assumptions in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AddressMapping {
    config: DramConfig,
    /// Bytes assigned to each DIMM before wrapping to the next channel.
    dimm_capacity: u64,
}

impl AddressMapping {
    /// Creates a mapping where each DIMM holds `dimm_capacity` bytes of the node space.
    pub fn new(config: DramConfig, dimm_capacity: u64) -> Self {
        AddressMapping {
            config,
            dimm_capacity: dimm_capacity.max(config.row_buffer_bytes as u64),
        }
    }

    /// The DRAM configuration this mapping is based on.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Bytes per DIMM.
    pub fn dimm_capacity(&self) -> u64 {
        self.dimm_capacity
    }

    /// Decomposes a byte address.
    pub fn locate(&self, addr: u64) -> DramLocation {
        let channel = ((addr / self.dimm_capacity) as usize) % self.config.channels;
        let within_dimm = addr % self.dimm_capacity;
        let row_bytes = self.config.row_buffer_bytes as u64;
        let page_index = within_dimm / row_bytes;
        let banks = self.config.banks_per_rank as u64;
        let ranks = self.config.ranks_per_channel as u64;
        let bank = (page_index % banks) as usize;
        let rank = ((page_index / banks) % ranks) as usize;
        let row = page_index / (banks * ranks);
        let column = (within_dimm % row_bytes) / self.config.line_bytes as u64;
        DramLocation {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }

    /// Flat bank identifier in `0..config.total_banks()`.
    pub fn flat_bank(&self, loc: DramLocation) -> usize {
        (loc.channel * self.config.ranks_per_channel + loc.rank) * self.config.banks_per_rank
            + loc.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(DramConfig::default(), 1 << 30)
    }

    #[test]
    fn channel_is_dimm_major() {
        let m = mapping();
        assert_eq!(m.locate(0).channel, 0);
        assert_eq!(m.locate((1 << 30) - 1).channel, 0);
        assert_eq!(m.locate(1 << 30).channel, 1);
        assert_eq!(m.locate(7 << 30).channel, 7);
        // Wraps beyond the last DIMM.
        assert_eq!(m.locate(8u64 << 30).channel, 0);
    }

    #[test]
    fn consecutive_rows_hit_different_banks() {
        let m = mapping();
        let a = m.locate(0);
        let b = m.locate(8192);
        assert_eq!(a.channel, b.channel);
        assert_ne!((a.rank, a.bank), (b.rank, b.bank));
    }

    #[test]
    fn addresses_in_the_same_page_share_a_row() {
        let m = mapping();
        let a = m.locate(4096);
        let b = m.locate(4096 + 64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn flat_bank_is_unique_per_coordinate() {
        let m = mapping();
        let cfg = DramConfig::default();
        let mut seen = std::collections::HashSet::new();
        // Probe one address per (page) for a few thousand pages across channels.
        for dimm in 0..cfg.channels as u64 {
            for page in 0..64u64 {
                let addr = dimm * (1 << 30) + page * 8192;
                let loc = m.locate(addr);
                let flat = m.flat_bank(loc);
                assert!(flat < cfg.total_banks());
                seen.insert((loc.channel, loc.rank, loc.bank, flat));
            }
        }
        // Every flat id maps back to exactly one (channel, rank, bank).
        let flats: std::collections::HashSet<usize> = seen.iter().map(|&(_, _, _, f)| f).collect();
        let coords: std::collections::HashSet<(usize, usize, usize)> =
            seen.iter().map(|&(c, r, b, _)| (c, r, b)).collect();
        assert_eq!(flats.len(), coords.len());
    }

    #[test]
    fn tiny_dimm_capacity_is_clamped() {
        let m = AddressMapping::new(DramConfig::default(), 16);
        assert!(m.dimm_capacity() >= DramConfig::default().row_buffer_bytes as u64);
    }
}
