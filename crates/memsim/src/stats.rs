//! Traffic and bandwidth statistics.

use serde::{Deserialize, Serialize};

/// Aggregate memory-system statistics for one simulated region of execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Number of read requests (line granularity).
    pub read_lines: u64,
    /// Number of write requests (line granularity).
    pub write_lines: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Row-buffer hits observed.
    pub row_hits: u64,
    /// Row-buffer misses (closed rows and conflicts).
    pub row_misses: u64,
    /// Simulated elapsed time in nanoseconds.
    pub elapsed_ns: f64,
    /// Peak bandwidth of the simulated memory system in GB/s.
    pub peak_bandwidth_gbps: f64,
}

impl MemoryStats {
    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Total line-granularity requests.
    pub fn total_lines(&self) -> u64 {
        self.read_lines + self.write_lines
    }

    /// Achieved bandwidth in GB/s (0 if no time elapsed).
    pub fn achieved_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.elapsed_ns
    }

    /// Fraction of peak bandwidth achieved, in `[0, 1]` (Fig. 13's metric).
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.peak_bandwidth_gbps <= 0.0 {
            return 0.0;
        }
        (self.achieved_bandwidth_gbps() / self.peak_bandwidth_gbps).min(1.0)
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Accumulates another statistics block (summing traffic, taking the max of
    /// elapsed time is *not* done — times add, as regions run back to back).
    pub fn accumulate(&mut self, other: &MemoryStats) {
        self.read_lines += other.read_lines;
        self.write_lines += other.write_lines;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.elapsed_ns += other.elapsed_ns;
        if self.peak_bandwidth_gbps == 0.0 {
            self.peak_bandwidth_gbps = other.peak_bandwidth_gbps;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let stats = MemoryStats {
            read_bytes: 128_000,
            write_bytes: 72_000,
            elapsed_ns: 1_000.0,
            peak_bandwidth_gbps: 204.8,
            ..MemoryStats::default()
        };
        // 200 000 bytes in 1000 ns = 200 GB/s.
        assert!((stats.achieved_bandwidth_gbps() - 200.0).abs() < 1e-9);
        assert!((stats.bandwidth_utilization() - 200.0 / 204.8).abs() < 1e-9);
    }

    #[test]
    fn zero_time_is_safe() {
        let stats = MemoryStats::default();
        assert_eq!(stats.achieved_bandwidth_gbps(), 0.0);
        assert_eq!(stats.bandwidth_utilization(), 0.0);
        assert_eq!(stats.row_hit_rate(), 0.0);
    }

    #[test]
    fn utilization_is_clamped_to_one() {
        let stats = MemoryStats {
            read_bytes: 10_000_000,
            elapsed_ns: 1.0,
            peak_bandwidth_gbps: 1.0,
            ..MemoryStats::default()
        };
        assert_eq!(stats.bandwidth_utilization(), 1.0);
    }

    #[test]
    fn accumulate_sums_traffic_and_time() {
        let mut a = MemoryStats {
            read_lines: 10,
            read_bytes: 640,
            elapsed_ns: 100.0,
            row_hits: 5,
            row_misses: 5,
            peak_bandwidth_gbps: 25.6,
            ..MemoryStats::default()
        };
        let b = MemoryStats {
            write_lines: 4,
            write_bytes: 256,
            elapsed_ns: 50.0,
            row_hits: 2,
            row_misses: 2,
            peak_bandwidth_gbps: 25.6,
            ..MemoryStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.total_lines(), 14);
        assert_eq!(a.total_bytes(), 896);
        assert_eq!(a.elapsed_ns, 150.0);
        assert!((a.row_hit_rate() - 0.5).abs() < 1e-12);
    }
}
