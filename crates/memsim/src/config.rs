//! DRAM organization and timing parameters (Table 2 of the paper).

use serde::{Deserialize, Serialize};

/// DDR4 timing parameters, expressed in memory-controller clock cycles
/// (one cycle = 0.625 ns at DDR4-3200).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Row-to-column delay (ACT → READ/WRITE).
    pub t_rcd: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// CAS latency.
    pub t_cl: u64,
    /// Minimum row-active time.
    pub t_ras: u64,
    /// Column-to-column delay between bursts to the same bank group.
    pub t_ccd: u64,
    /// Cycles a 64-byte burst occupies the data bus (BL8 at double data rate).
    pub burst_cycles: u64,
}

impl Default for DramTimings {
    /// DDR4-3200AA-like timings: 22-22-22, tRAS 52, tCCD_L 8, BL8.
    fn default() -> Self {
        DramTimings {
            t_rcd: 22,
            t_rp: 22,
            t_cl: 22,
            t_ras: 52,
            t_ccd: 8,
            burst_cycles: 4,
        }
    }
}

impl DramTimings {
    /// Latency of a row-buffer hit (CAS + burst).
    pub fn hit_latency(&self) -> u64 {
        self.t_cl + self.burst_cycles
    }

    /// Latency of an access to a closed row (ACT + CAS + burst).
    pub fn closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.burst_cycles
    }

    /// Latency of a row-buffer conflict (PRE + ACT + CAS + burst).
    pub fn conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.burst_cycles
    }
}

/// DRAM organization: the paper's system is DDR4-3200, 8 channels, one DIMM per
/// channel, 2 ranks per channel, 1 TB total (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory channels (each hosting one DIMM in this model).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer (page) size in bytes. 8 KB in the paper.
    pub row_buffer_bytes: usize,
    /// Cache-line / transfer granularity in bytes.
    pub line_bytes: usize,
    /// Memory-controller clock frequency in MHz (data rate is 2× this).
    pub clock_mhz: u64,
    /// Data-bus width per channel in bytes.
    pub bus_width_bytes: u64,
    /// Timing parameters.
    pub timings: DramTimings,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 8,
            ranks_per_channel: 2,
            banks_per_rank: 16,
            row_buffer_bytes: 8 * 1024,
            line_bytes: 64,
            clock_mhz: 1600,
            bus_width_bytes: 8,
            timings: DramTimings::default(),
        }
    }
}

impl DramConfig {
    /// Peak bandwidth of one channel in GB/s (data rate × bus width).
    /// 25.6 GB/s for DDR4-3200 with an 8-byte bus.
    pub fn channel_peak_bandwidth_gbps(&self) -> f64 {
        (2.0 * self.clock_mhz as f64 * 1e6 * self.bus_width_bytes as f64) / 1e9
    }

    /// Aggregate peak bandwidth across channels in GB/s (204.8 GB/s for 8 channels).
    pub fn total_peak_bandwidth_gbps(&self) -> f64 {
        self.channel_peak_bandwidth_gbps() * self.channels as f64
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Duration of one memory-controller clock cycle in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e3 / self.clock_mhz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_system() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.channels, 8);
        assert_eq!(cfg.ranks_per_channel, 2);
        assert_eq!(cfg.row_buffer_bytes, 8192);
        assert!((cfg.channel_peak_bandwidth_gbps() - 25.6).abs() < 1e-9);
        assert!((cfg.total_peak_bandwidth_gbps() - 204.8).abs() < 1e-9);
        assert_eq!(cfg.total_banks(), 8 * 2 * 16);
        assert!((cfg.cycle_ns() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn latency_ordering_hit_closed_conflict() {
        let t = DramTimings::default();
        assert!(t.hit_latency() < t.closed_latency());
        assert!(t.closed_latency() < t.conflict_latency());
    }
}
