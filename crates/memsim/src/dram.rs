//! Event-driven DRAM replay model (the Ramulator stand-in).
//!
//! The model tracks per-bank row-buffer state and per-channel data-bus occupancy and
//! replays a request stream with a configurable number of outstanding requests
//! (memory-level parallelism) and a per-request issue gap (the requester's think
//! time). Low parallelism reproduces the latency-bound behaviour of the CPU baseline;
//! high parallelism (many PEs streaming MacroNodes concurrently) reproduces the
//! bandwidth-driven behaviour of the NMP design.

use crate::address::AddressMapping;
use crate::config::DramConfig;
use crate::request::MemRequest;
use crate::stats::MemoryStats;
use std::collections::VecDeque;

/// Per-bank state: the open row and the cycle at which the bank is next available.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    ready_cycle: u64,
}

/// The DRAM system model.
#[derive(Debug, Clone)]
pub struct DramSystem {
    config: DramConfig,
    mapping: AddressMapping,
}

/// Requester-side replay parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayWindow {
    /// Maximum outstanding requests (memory-level parallelism of the requester).
    pub max_outstanding: usize,
    /// Cycles of requester think time between consecutive issues.
    pub issue_gap_cycles: u64,
}

impl Default for ReplayWindow {
    fn default() -> Self {
        ReplayWindow {
            max_outstanding: 16,
            issue_gap_cycles: 0,
        }
    }
}

impl DramSystem {
    /// Creates a DRAM system with the given configuration and per-DIMM capacity (used
    /// for address decomposition).
    pub fn new(config: DramConfig, dimm_capacity: u64) -> Self {
        DramSystem {
            config,
            mapping: AddressMapping::new(config, dimm_capacity),
        }
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Replays `requests` in order with the given requester window, returning traffic
    /// and timing statistics.
    pub fn replay(&self, requests: &[MemRequest], window: ReplayWindow) -> MemoryStats {
        let timings = self.config.timings;
        let line = self.config.line_bytes as u64;
        let mut banks = vec![BankState::default(); self.config.total_banks()];
        let mut channel_busy = vec![0u64; self.config.channels];
        let mut in_flight: VecDeque<u64> = VecDeque::new();
        let max_outstanding = window.max_outstanding.max(1);

        let mut stats = MemoryStats {
            peak_bandwidth_gbps: self.config.total_peak_bandwidth_gbps(),
            ..MemoryStats::default()
        };
        let mut issue_cycle = 0u64;
        let mut last_completion = 0u64;

        for req in requests {
            // Respect the outstanding-request window: block until the oldest request
            // retires if the window is full.
            if in_flight.len() >= max_outstanding {
                let oldest = in_flight.pop_front().expect("window non-empty");
                issue_cycle = issue_cycle.max(oldest);
            }

            // Every line of the request is a separate burst.
            let lines = (req.size_bytes as u64).div_ceil(line).max(1);
            let mut req_completion = issue_cycle;
            for l in 0..lines {
                let addr = req.addr + l * line;
                let loc = self.mapping.locate(addr);
                let flat = self.mapping.flat_bank(loc);
                let bank = &mut banks[flat];

                let (latency, hit) = match bank.open_row {
                    Some(row) if row == loc.row => (timings.hit_latency(), true),
                    Some(_) => (timings.conflict_latency(), false),
                    None => (timings.closed_latency(), false),
                };
                if hit {
                    stats.row_hits += 1;
                } else {
                    stats.row_misses += 1;
                }

                let start = issue_cycle
                    .max(bank.ready_cycle)
                    .max(channel_busy[loc.channel]);
                let done = start + latency;
                // The data bus is occupied for the burst at the tail of the access.
                channel_busy[loc.channel] =
                    done - timings.burst_cycles + timings.t_ccd.min(timings.burst_cycles);
                bank.ready_cycle = done;
                bank.open_row = Some(loc.row);
                req_completion = req_completion.max(done);
            }

            if req.is_write() {
                stats.write_lines += lines;
                stats.write_bytes += req.size_bytes as u64;
            } else {
                stats.read_lines += lines;
                stats.read_bytes += req.size_bytes as u64;
            }

            in_flight.push_back(req_completion);
            last_completion = last_completion.max(req_completion);
            issue_cycle += window.issue_gap_cycles.max(1);
        }

        stats.elapsed_ns = last_completion as f64 * self.config.cycle_ns();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemRequest;

    fn system() -> DramSystem {
        DramSystem::new(DramConfig::default(), 1 << 30)
    }

    fn sequential_reads(n: usize, stride: u64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::read(i as u64 * stride, 64, i))
            .collect()
    }

    #[test]
    fn empty_replay_is_zero() {
        let stats = system().replay(&[], ReplayWindow::default());
        assert_eq!(stats.total_bytes(), 0);
        assert_eq!(stats.elapsed_ns, 0.0);
    }

    #[test]
    fn sequential_same_row_accesses_hit_the_row_buffer() {
        let stats = system().replay(&sequential_reads(64, 64), ReplayWindow::default());
        // First access opens the row; the rest of the 8 KB page hits.
        assert!(
            stats.row_hit_rate() > 0.9,
            "hit rate {}",
            stats.row_hit_rate()
        );
        assert_eq!(stats.read_lines, 64);
        assert_eq!(stats.read_bytes, 64 * 64);
    }

    #[test]
    fn random_far_accesses_miss_the_row_buffer() {
        // Stride of 8 KB within one bank-stripe pattern → every access lands in a new page.
        let stats = system().replay(&sequential_reads(64, 8192 * 33), ReplayWindow::default());
        assert!(stats.row_hit_rate() < 0.1);
    }

    #[test]
    fn more_parallelism_is_never_slower() {
        let reqs = sequential_reads(2_000, 4096);
        let narrow = system().replay(
            &reqs,
            ReplayWindow {
                max_outstanding: 1,
                issue_gap_cycles: 0,
            },
        );
        let wide = system().replay(
            &reqs,
            ReplayWindow {
                max_outstanding: 64,
                issue_gap_cycles: 0,
            },
        );
        assert!(wide.elapsed_ns <= narrow.elapsed_ns);
        assert!(wide.bandwidth_utilization() >= narrow.bandwidth_utilization());
    }

    #[test]
    fn utilization_rises_with_parallelism() {
        // Spread requests across all channels (1 GB per DIMM capacity).
        let reqs: Vec<MemRequest> = (0..4_000)
            .map(|i| MemRequest::read((i as u64 % 8) * (1 << 30) + (i as u64 / 8) * 64, 64, i))
            .collect();
        let narrow = system().replay(
            &reqs,
            ReplayWindow {
                max_outstanding: 1,
                issue_gap_cycles: 4,
            },
        );
        let wide = system().replay(
            &reqs,
            ReplayWindow {
                max_outstanding: 256,
                issue_gap_cycles: 1,
            },
        );
        assert!(
            wide.bandwidth_utilization() > 4.0 * narrow.bandwidth_utilization(),
            "narrow {} wide {}",
            narrow.bandwidth_utilization(),
            wide.bandwidth_utilization()
        );
    }

    #[test]
    fn writes_are_accounted_separately() {
        let reqs = vec![MemRequest::read(0, 256, 0), MemRequest::write(4096, 128, 1)];
        let stats = system().replay(&reqs, ReplayWindow::default());
        assert_eq!(stats.read_bytes, 256);
        assert_eq!(stats.write_bytes, 128);
        assert_eq!(stats.read_lines, 4);
        assert_eq!(stats.write_lines, 2);
    }

    #[test]
    fn multi_line_requests_touch_multiple_lines() {
        let reqs = vec![MemRequest::read(0, 1024, 0)];
        let stats = system().replay(&reqs, ReplayWindow::default());
        assert_eq!(stats.read_lines, 16);
    }
}
