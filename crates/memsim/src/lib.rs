//! Memory-system substrate for the NMP-PaK reproduction.
//!
//! The paper evaluates its design with a trace-driven methodology: memory traces of
//! MacroNode reads and writes captured from the real assembly execution are replayed
//! against a cycle-level DDR4 model (Ramulator) for the NMP system, and against
//! CPU/GPU machine models for the baselines (§5). This crate is the equivalent
//! substrate:
//!
//! * [`config`] — DDR4-3200 timing and organization parameters (Table 2),
//! * [`request`] / [`address`] — memory requests and address decomposition,
//! * [`dram`] — an event-driven channel/rank/bank model with row-buffer state and a
//!   configurable outstanding-request window,
//! * [`layout`] — MacroNode-slot → physical-address layout (ascending (k-1)-mer order
//!   across DIMMs, §4.2),
//! * [`traffic`] — converts a [`nmp_pak_pakman::CompactionTrace`] into per-iteration
//!   request streams under either the baseline (sequential-stage) or the optimized
//!   (pipelined, data-reusing) process flow (§4.5),
//! * [`cpu`] — an analytic multicore model producing runtime and the stall-time
//!   breakdown of Fig. 6,
//! * [`gpu`] — an A100-like analytic model (capacity-constrained, §6.6),
//! * [`stats`] — traffic and bandwidth-utilization accounting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod config;
pub mod cpu;
pub mod dram;
pub mod gpu;
pub mod layout;
pub mod request;
pub mod stats;
pub mod traffic;

pub use address::AddressMapping;
pub use config::{DramConfig, DramTimings};
pub use cpu::{CpuConfig, CpuRunResult, StallBreakdown};
pub use dram::DramSystem;
pub use gpu::{GpuConfig, GpuRunResult};
pub use layout::NodeLayout;
pub use request::{AccessKind, MemRequest};
pub use stats::MemoryStats;
pub use traffic::{build_iteration_requests, ProcessFlow, TrafficSummary};
