//! Analytic GPU baseline (an NVIDIA A100-like device, §5.3 and §6.6).
//!
//! The paper models its GPU baseline with "parameters similar to those of the A100"
//! and replays a subset of traces whose footprint fits in device memory. The GPU's
//! massive parallelism makes Iterative Compaction bandwidth-bound there, but the
//! fine-grained, irregular MacroNode accesses waste most of each HBM transaction, so
//! only a fraction of the nominal bandwidth is useful. The device's limited capacity
//! (40/80 GB) is what forces the small batch sizes — and the contig-quality collapse —
//! analysed in Table 1 and §6.6.

use crate::config::DramConfig;
use crate::layout::NodeLayout;
use crate::stats::MemoryStats;
use crate::traffic::{build_iteration_requests, ProcessFlow, TrafficSummary};
use nmp_pak_pakman::CompactionTrace;
use serde::{Deserialize, Serialize};

/// GPU device parameters (defaults: A100 40 GB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Device memory capacity in bytes.
    pub memory_capacity_bytes: u64,
    /// Nominal HBM bandwidth in GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Fraction of the nominal bandwidth that irregular, fine-grained MacroNode
    /// accesses can use (sector-level over-fetch, divergence).
    pub irregular_efficiency: f64,
    /// Kernel-launch plus host synchronization overhead per compaction iteration, in
    /// nanoseconds (the CPU and GPU must stay in lock-step per iteration).
    pub per_iteration_overhead_ns: f64,
    /// Board power in watts (A100 SXM: 400 W), used by the §6.6 efficiency analysis.
    pub board_power_w: f64,
    /// Die area in mm² (A100: 826 mm²), used by the §6.6 efficiency analysis.
    pub die_area_mm2: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            memory_capacity_bytes: 40 * 1024 * 1024 * 1024,
            peak_bandwidth_gbps: 1_555.0,
            irregular_efficiency: 0.10,
            per_iteration_overhead_ns: 20_000.0,
            board_power_w: 400.0,
            die_area_mm2: 826.0,
        }
    }
}

impl GpuConfig {
    /// An 80 GB A100/H100-class configuration.
    pub fn a100_80gb() -> Self {
        GpuConfig {
            memory_capacity_bytes: 80 * 1024 * 1024 * 1024,
            peak_bandwidth_gbps: 2_039.0,
            ..GpuConfig::default()
        }
    }

    /// `true` if a workload with the given peak footprint fits in device memory.
    pub fn fits(&self, footprint_bytes: u64) -> bool {
        footprint_bytes <= self.memory_capacity_bytes
    }

    /// Number of devices needed to hold the given footprint (§6.6's five-A100 example).
    pub fn devices_needed(&self, footprint_bytes: u64) -> u64 {
        footprint_bytes.div_ceil(self.memory_capacity_bytes.max(1))
    }
}

/// Result of simulating a compaction trace on the GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuRunResult {
    /// Simulated runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Traffic moved through device memory.
    pub traffic: TrafficSummary,
    /// Memory statistics over the run.
    pub memory: MemoryStats,
    /// `true` if the workload's footprint exceeded device memory (the run then models
    /// the paper's "subset of traces" methodology but flags the violation).
    pub capacity_exceeded: bool,
}

/// Simulates a compaction trace on the GPU model.
///
/// `footprint_bytes` is the workload's peak memory footprint, checked against the
/// device capacity.
pub fn simulate_gpu_compaction(
    trace: &CompactionTrace,
    layout: &NodeLayout,
    dram: &DramConfig,
    gpu: &GpuConfig,
    footprint_bytes: u64,
) -> GpuRunResult {
    let mut traffic = TrafficSummary::default();
    let mut runtime_ns = 0.0f64;
    let effective_bw = (gpu.peak_bandwidth_gbps * gpu.irregular_efficiency).max(1e-9);

    for iteration in &trace.iterations {
        // The GPU runs the optimized (pipelined) software flow: massive parallelism
        // makes the per-iteration time bandwidth-bound.
        let requests = build_iteration_requests(iteration, layout, ProcessFlow::Optimized);
        let mut iteration_traffic = TrafficSummary::default();
        iteration_traffic.add_requests(&requests);
        traffic.add_requests(&requests);

        let bytes = iteration_traffic.total_bytes() as f64;
        runtime_ns += bytes / effective_bw + gpu.per_iteration_overhead_ns;
    }

    let memory = MemoryStats {
        read_lines: traffic.read_bytes / dram.line_bytes as u64,
        write_lines: traffic.write_bytes / dram.line_bytes as u64,
        read_bytes: traffic.read_bytes,
        write_bytes: traffic.write_bytes,
        elapsed_ns: runtime_ns,
        peak_bandwidth_gbps: gpu.peak_bandwidth_gbps,
        ..MemoryStats::default()
    };

    GpuRunResult {
        runtime_ns,
        traffic,
        memory,
        capacity_exceeded: !gpu.fits(footprint_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmp_pak_pakman::trace::{IterationTrace, NodeCheck, UpdateEvent};

    fn synthetic(nodes: usize, iterations: usize) -> (CompactionTrace, NodeLayout) {
        let sizes: Vec<usize> = (0..nodes).map(|i| 256 + (i % 5) * 100).collect();
        let mut trace = CompactionTrace::new(nodes, sizes.clone());
        for _ in 0..iterations {
            trace.iterations.push(IterationTrace {
                checks: (0..nodes)
                    .map(|slot| NodeCheck {
                        slot,
                        size_bytes: sizes[slot],
                        invalidated: slot % 3 == 0,
                    })
                    .collect(),
                transfers: vec![],
                updates: (0..nodes / 3)
                    .map(|i| UpdateEvent {
                        dest_slot: i * 3 + 1,
                        size_bytes: 300,
                    })
                    .collect(),
            });
        }
        (trace, NodeLayout::new(&sizes, &DramConfig::default()))
    }

    #[test]
    fn capacity_check_and_device_count() {
        let gpu = GpuConfig::default();
        assert!(gpu.fits(10 << 30));
        assert!(!gpu.fits(400 << 30));
        // §6.6: a 379 GB footprint needs five 80 GB devices.
        assert_eq!(GpuConfig::a100_80gb().devices_needed(379 << 30), 5);
    }

    #[test]
    fn runtime_scales_with_trace_size() {
        let dram = DramConfig::default();
        let gpu = GpuConfig::default();
        let (small_trace, small_layout) = synthetic(500, 3);
        let (large_trace, large_layout) = synthetic(5_000, 3);
        let small = simulate_gpu_compaction(&small_trace, &small_layout, &dram, &gpu, 1 << 30);
        let large = simulate_gpu_compaction(&large_trace, &large_layout, &dram, &gpu, 1 << 30);
        assert!(large.runtime_ns > small.runtime_ns);
        assert!(large.traffic.total_bytes() > small.traffic.total_bytes());
    }

    #[test]
    fn capacity_exceeded_is_flagged() {
        let dram = DramConfig::default();
        let gpu = GpuConfig::default();
        let (trace, layout) = synthetic(100, 1);
        let ok = simulate_gpu_compaction(&trace, &layout, &dram, &gpu, 1 << 30);
        assert!(!ok.capacity_exceeded);
        let too_big = simulate_gpu_compaction(&trace, &layout, &dram, &gpu, 500 << 30);
        assert!(too_big.capacity_exceeded);
    }

    #[test]
    fn higher_irregular_efficiency_is_faster() {
        let dram = DramConfig::default();
        let (trace, layout) = synthetic(2_000, 3);
        let slow = simulate_gpu_compaction(
            &trace,
            &layout,
            &dram,
            &GpuConfig {
                irregular_efficiency: 0.05,
                ..GpuConfig::default()
            },
            1 << 30,
        );
        let fast = simulate_gpu_compaction(
            &trace,
            &layout,
            &dram,
            &GpuConfig {
                irregular_efficiency: 0.5,
                ..GpuConfig::default()
            },
            1 << 30,
        );
        assert!(fast.runtime_ns < slow.runtime_ns);
    }
}
