//! End-to-end server tests: admission under a saturated ledger, mid-run
//! cancellation releasing the shared budget, and the determinism contract —
//! jobs scheduled concurrently on the shared pool produce contigs
//! bit-identical to one-shot [`PakmanAssembler`] runs.

use std::time::Duration;

use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig, SyntheticSource};
use nmp_pak_pakman::{PakmanAssembler, PakmanConfig, PakmanError, ShardConfig, ShardSchedule};
use nmp_pak_server::{AssemblyServer, JobEvent, JobInput, JobPriority, JobSpec, ServerConfig};

const EVENT_TIMEOUT: Duration = Duration::from_secs(60);

fn sequencer(seed: u64) -> SequencerConfig {
    SequencerConfig {
        coverage: 12.0,
        substitution_error_rate: 0.0,
        seed,
        ..SequencerConfig::default()
    }
}

fn config() -> PakmanConfig {
    PakmanConfig {
        k: 17,
        ..PakmanConfig::default()
    }
}

fn synthetic_input(genome_length: usize, genome_seed: u64, read_seed: u64) -> JobInput {
    JobInput::Synthetic {
        genome_length,
        genome_seed,
        sequencer: sequencer(read_seed),
    }
}

/// Blocks until `handle`'s stream yields an event matching `want`, panicking
/// on timeout or a closed stream.
fn wait_for_event(
    handle: &nmp_pak_server::JobHandle,
    mut want: impl FnMut(&JobEvent) -> bool,
) -> JobEvent {
    loop {
        let event = handle
            .events()
            .recv_timeout(EVENT_TIMEOUT)
            .expect("event stream closed or timed out before the awaited event");
        if want(&event) {
            return event;
        }
    }
}

#[test]
fn cancellation_mid_compaction_frees_the_reservation() {
    let server = AssemblyServer::start(ServerConfig {
        workers: 2,
        memory_cap_bytes: Some(1 << 30),
    });
    let spec = JobSpec::new(synthetic_input(60_000, 3, 4), config()).with_reservation(1 << 20);
    let handle = server.submit(spec).expect("valid config");

    // The reservation is held once the job is admitted...
    wait_for_event(&handle, |e| matches!(e, JobEvent::Admitted { .. }));
    assert_eq!(server.ledger().used(), 1 << 20);

    // ...cancel at the first compaction iteration: the stage observes the flag
    // at its next between-iterations checkpoint and unwinds.
    wait_for_event(&handle, |e| {
        matches!(e, JobEvent::CompactionIteration { .. })
    });
    handle.cancel();

    let err = handle.join().expect_err("cancelled job must not complete");
    assert!(
        matches!(err, PakmanError::Cancelled { .. }),
        "unexpected outcome: {err:?}"
    );
    // The terminal transition released the reservation (and the job's chained
    // internal budgets net to zero): the shared ledger is empty again.
    assert_eq!(server.ledger().used(), 0);
    server.shutdown();
}

#[test]
fn cancelling_an_async_sharded_job_drains_the_flush_ledger() {
    // The async schedule holds in-flight mailbox flushes as ledger charges;
    // cancelling mid-compaction must release every one of them along with the
    // job's reservation, leaving the shared budget empty.
    let server = AssemblyServer::start(ServerConfig {
        workers: 2,
        memory_cap_bytes: Some(1 << 30),
    });
    let async_config = PakmanConfig {
        threads: 4,
        shard_schedule: ShardSchedule::Async,
        shards: ShardConfig { shard_count: 7 },
        compaction_node_threshold: 0,
        ..config()
    };
    let spec = JobSpec::new(synthetic_input(60_000, 5, 6), async_config).with_reservation(1 << 20);
    let handle = server.submit(spec).expect("valid config");

    wait_for_event(&handle, |e| matches!(e, JobEvent::Admitted { .. }));
    wait_for_event(&handle, |e| {
        matches!(e, JobEvent::CompactionIteration { .. })
    });
    handle.cancel();

    let err = handle.join().expect_err("cancelled job must not complete");
    match err {
        PakmanError::Cancelled { ref at } => assert!(
            at.starts_with("async"),
            "cancellation mid-async-compaction must be observed at an async \
             checkpoint, got {at:?}"
        ),
        ref other => panic!("unexpected outcome: {other:?}"),
    }
    // Every in-flight flush charge and stage budget unwound: the terminal
    // transition leaves the shared ledger empty.
    assert_eq!(server.ledger().used(), 0);
    server.shutdown();
}

#[test]
fn saturated_ledger_queues_jobs_and_admits_best_first() {
    // Cap fits exactly one 900-byte reservation: the three jobs serialize
    // through admission even though two workers are available.
    let server = AssemblyServer::start(ServerConfig {
        workers: 2,
        memory_cap_bytes: Some(1_000),
    });
    let job = |seed: u64, priority: JobPriority| {
        server
            .submit(
                JobSpec::new(synthetic_input(8_000, seed, seed + 10), config())
                    .with_priority(priority)
                    .with_reservation(900),
            )
            .expect("valid config")
    };
    let first = job(1, JobPriority::Normal);
    let low = job(2, JobPriority::Low);
    let high = job(3, JobPriority::High);

    // The high-priority job is admitted ahead of the earlier low-priority one;
    // at that instant the low job can only have been submitted (the cap admits
    // one at a time, so it cannot also hold a reservation).
    wait_for_event(&high, |e| matches!(e, JobEvent::Admitted { .. }));
    assert!(
        low.drain_events()
            .iter()
            .all(|e| matches!(e, JobEvent::Submitted { .. })),
        "low-priority job admitted while the high-priority one held the ledger"
    );

    // Queued jobs are never dropped: all three complete.
    assert!(first.join().is_ok());
    assert!(high.join().is_ok());
    assert!(low.join().is_ok());
    // The high-water mark proves serialization: never two 900-byte
    // reservations (or any other charge) in flight at once.
    assert_eq!(server.ledger().peak_bytes(), 900);
    assert_eq!(server.ledger().used(), 0);
    server.shutdown();
}

#[test]
fn concurrent_jobs_are_bit_identical_to_one_shot_runs() {
    // One-shot references, run outside the server.
    let assembler = PakmanAssembler::new(config());
    let genome_a = ReferenceGenome::builder()
        .length(20_000)
        .seed(7)
        .build()
        .unwrap();
    let one_shot_a = assembler
        .assemble_source(SyntheticSource::new(genome_a.clone(), sequencer(8)).unwrap())
        .unwrap();
    let reads_b = ReadSimulator::new(sequencer(9))
        .simulate(
            &ReferenceGenome::builder()
                .length(15_000)
                .seed(5)
                .build()
                .unwrap(),
        )
        .unwrap();
    let one_shot_b = assembler.assemble(&reads_b).unwrap();

    // The same workloads as concurrent jobs sharing one pool and one ledger.
    let server = AssemblyServer::start(ServerConfig {
        workers: 3,
        memory_cap_bytes: None,
    });
    let job_a = server
        .submit(JobSpec::new(synthetic_input(20_000, 7, 8), config()))
        .expect("valid config");
    let job_b = server
        .submit(
            JobSpec::new(JobInput::Reads(reads_b.clone()), config())
                .with_priority(JobPriority::High),
        )
        .expect("valid config");
    let out_a = job_a.join().expect("job A failed");
    let out_b = job_b.join().expect("job B failed");

    // Scheduling is observation plus ordering, never a change to the
    // computation: contigs and deterministic statistics match bit-for-bit.
    assert_eq!(out_a.contigs, one_shot_a.contigs);
    assert_eq!(out_a.stats, one_shot_a.stats);
    assert_eq!(out_b.contigs, one_shot_b.contigs);
    assert_eq!(out_b.stats, one_shot_b.stats);
    server.shutdown();
}

#[test]
fn event_stream_is_ordered_and_terminal() {
    let server = AssemblyServer::start(ServerConfig::default());
    let handle = server
        .submit(JobSpec::new(synthetic_input(6_000, 11, 12), config()))
        .expect("valid config");
    let id = handle.id();

    // Collect the full stream through the terminal event, then join.
    let mut events = Vec::new();
    loop {
        let event = handle
            .events()
            .recv_timeout(EVENT_TIMEOUT)
            .expect("stream closed before the terminal event");
        let terminal = matches!(
            event,
            JobEvent::Done { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. }
        );
        events.push(event);
        if terminal {
            break;
        }
    }
    let output = handle.join().expect("job failed");
    assert!(matches!(events.first(), Some(JobEvent::Submitted { id: got }) if *got == id));
    assert!(matches!(events.get(1), Some(JobEvent::Admitted { .. })));
    let contig_events = events
        .iter()
        .filter(|e| matches!(e, JobEvent::ContigWritten { .. }))
        .count();
    assert_eq!(contig_events, output.contigs.len());
    match events.last() {
        Some(JobEvent::Done { summary }) => {
            assert_eq!(summary.contig_count, output.stats.contig_count);
            assert_eq!(summary.n50, output.stats.n50);
            assert_eq!(
                summary.compaction_profile.iterations.len(),
                output.compaction_profile.iterations.len()
            );
        }
        other => panic!("expected a terminal Done event, got {other:?}"),
    }
    server.shutdown();
}
