//! Assembly-as-a-service: a multi-tenant job server over the PaKman pipeline.
//!
//! The server accepts many concurrent assembly jobs — a FASTA/FASTQ path, an
//! in-memory read set, or a synthetic-workload spec — and schedules their
//! pipeline stages onto **one shared worker pool**. The unit of scheduling is
//! a *stage-step* (one job's A–C, D, or E stage), so stages of different jobs
//! interleave on the same threads instead of each job monopolizing a pool.
//!
//! Three control planes tie the tenants together:
//!
//! * **Shared-budget admission** — every job reserves bytes in one global
//!   [`MemoryBudget`] ledger before it may start; jobs queue (never drop) at
//!   admission while the ledger is saturated, and every admitted job's
//!   internal budgets (external-memory spill, batch windows) chain into the
//!   same ledger via [`nmp_pak_pakman::RunControl`].
//! * **Priority** — [`JobPriority`] orders both admission and the ready
//!   queue; FIFO within a class.
//! * **Cooperative cancellation** — [`JobHandle::cancel`] raises a
//!   [`nmp_pak_pakman::CancelToken`] the pipeline polls at stage boundaries
//!   and between compaction iterations; a cancelled job unwinds, frees its
//!   reservation, and resolves to [`nmp_pak_pakman::PakmanError::Cancelled`].
//!
//! Progress streams out per job as [`JobEvent`]s (submitted → admitted →
//! stage/iteration/contig events → done/failed/cancelled), carrying the
//! pipeline's own telemetry. Control never changes computation: each job's
//! contigs are bit-identical to a one-shot [`nmp_pak_pakman::PakmanAssembler`]
//! run over the same reads, whatever the interleaving.
//!
//! ```
//! use nmp_pak_genome::SequencerConfig;
//! use nmp_pak_pakman::PakmanConfig;
//! use nmp_pak_server::{AssemblyServer, JobInput, JobSpec, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = AssemblyServer::start(ServerConfig::default());
//! let job = server.submit(JobSpec::new(
//!     JobInput::Synthetic {
//!         genome_length: 6_000,
//!         genome_seed: 11,
//!         sequencer: SequencerConfig {
//!             coverage: 15.0,
//!             substitution_error_rate: 0.0,
//!             ..SequencerConfig::default()
//!         },
//!     },
//!     PakmanConfig { k: 17, ..PakmanConfig::default() },
//! ))?;
//! let output = job.join()?;
//! assert!(output.stats.total_length > 0);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod job;
mod queue;
mod registry;
mod scheduler;

pub use event::{JobEvent, JobSummary};
pub use job::{JobHandle, JobId, JobInput, JobPriority, JobSpec, DEFAULT_RESERVATION_BYTES};

use nmp_pak_pakman::{MemoryBudget, PakmanError};
use scheduler::Inner;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server sizing: worker-pool width and the global memory cap.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Threads in the shared stage-step pool (clamped to at least 1). This is
    /// the *only* pool: no job gets threads of its own.
    pub workers: usize,
    /// Capacity of the global [`MemoryBudget`] ledger; `None` is unbounded
    /// (admission never queues).
    pub memory_cap_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            memory_cap_bytes: None,
        }
    }
}

/// The job server: submit jobs, watch their event streams, shut down
/// gracefully. Dropping the server also shuts it down (completing every
/// submitted job first).
#[derive(Debug)]
pub struct AssemblyServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl AssemblyServer {
    /// Starts the worker pool and the shared ledger.
    pub fn start(config: ServerConfig) -> AssemblyServer {
        let ledger = Arc::new(match config.memory_cap_bytes {
            Some(bytes) => MemoryBudget::bounded(bytes),
            None => MemoryBudget::unbounded(),
        });
        let inner = Arc::new(Inner::new(ledger));
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("assembly-worker-{index}"))
                    .spawn(move || scheduler::worker_loop(&inner))
                    .expect("failed to spawn assembly worker")
            })
            .collect();
        AssemblyServer { inner, workers }
    }

    /// Submits a job: validates its configuration, queues it for admission,
    /// and returns the handle carrying its event stream. Never blocks on the
    /// ledger — a job that does not fit waits in the admission queue.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] for an invalid
    /// [`nmp_pak_pakman::PakmanConfig`]; nothing is queued in that case.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, PakmanError> {
        spec.config.validate()?;
        let reservation = spec.estimated_reservation();
        let JobSpec {
            input,
            config,
            priority,
            ..
        } = spec;
        let (id, cancel, events, shared) =
            scheduler::submit(&self.inner, input, config, priority, reservation);
        Ok(JobHandle {
            id,
            cancel,
            events,
            shared,
        })
    }

    /// The shared memory ledger (admission reservations plus every admitted
    /// job's chained budgets). Exposed for observability: `used()` is the
    /// server's current accounted footprint, `peak_bytes()` its high-water
    /// mark.
    pub fn ledger(&self) -> &Arc<MemoryBudget> {
        &self.inner.ledger
    }

    /// Graceful shutdown: stops accepting progress, completes every already
    /// submitted job (queued ones included), and joins the worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state lock poisoned");
            state.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for AssemblyServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}
