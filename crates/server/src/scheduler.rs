//! The shared worker pool, admission control, and per-step execution.
//!
//! Every worker runs the same loop: admit what fits, pop the best runnable
//! stage-step, execute exactly one stage of that job, write the next phase
//! back, repeat. Because the unit of scheduling is a *stage-step* — not a
//! whole job — the stages of concurrent jobs interleave freely on one pool,
//! and a high-priority arrival starts its stage A ahead of a low-priority
//! job's pending stage D.
//!
//! Admission is strictly best-first: the head of the pending queue is
//! admitted when its reservation fits the shared [`MemoryBudget`] ledger (or
//! when nothing else is admitted, so an oversized job cannot deadlock the
//! server — the same escape the pipelined batch window uses). A saturated
//! ledger therefore *queues* jobs; it never drops them.

use nmp_pak_genome::{
    FastaFastqSource, PrefetchSource, ReadSource, ReferenceGenome, SequencingRead, SyntheticSource,
};
use nmp_pak_pakman::{
    AssemblyOutput, AssemblyPipeline, CancelToken, MemoryBudget, PakmanConfig, PakmanError,
    RunControl,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::event::{EventSink, JobEvent, JobSummary};
use crate::job::{JobId, JobInput, JobPriority, JobShared};
use crate::queue::{PendingQueue, ReadyQueue};
use crate::registry::{JobPhase, JobRecord, Registry};

/// Scheduler state behind the one server mutex.
#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) registry: Registry,
    pub(crate) pending: PendingQueue,
    pub(crate) ready: ReadyQueue,
    /// Jobs admitted (ledger charged) and not yet terminal.
    pub(crate) admitted: usize,
    /// Stage-steps executing on workers right now.
    pub(crate) active: usize,
    pub(crate) shutdown: bool,
    pub(crate) next_seq: u64,
}

/// State shared between the server facade and its workers.
#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) state: Mutex<State>,
    pub(crate) work_ready: Condvar,
    /// The global memory ledger: admission reservations and every admitted
    /// job's internal budgets (spill, batch windows) are charged here.
    pub(crate) ledger: Arc<MemoryBudget>,
}

impl Inner {
    pub(crate) fn new(ledger: Arc<MemoryBudget>) -> Inner {
        Inner {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            ledger,
        }
    }
}

/// What a worker does with a job after executing one of its stage-steps.
enum StepOutcome {
    /// The job advances; re-enqueue it at its priority.
    Next(JobPhase),
    /// The job terminated (completed, failed, or observed cancellation).
    /// Boxed: an [`AssemblyOutput`] dwarfs the `Next` variant.
    Finished(Box<Result<AssemblyOutput, PakmanError>>),
}

/// Immutable per-step context cloned out of the record so the state lock is
/// not held while the stage runs.
struct StepCtx {
    priority: JobPriority,
    seq: u64,
    config: PakmanConfig,
    cancel: CancelToken,
    sink: Arc<EventSink>,
}

/// The worker loop: admit, pop a step, execute, apply, repeat; parks on the
/// condvar when idle and exits once shutdown is requested and the registry has
/// drained (graceful shutdown completes every submitted job).
pub(crate) fn worker_loop(inner: &Inner) {
    let mut state = inner.state.lock().expect("server state lock poisoned");
    loop {
        try_admit(&mut state, inner);
        if let Some(id) = state.ready.pop() {
            let record = state
                .registry
                .get_mut(&id)
                .expect("ready step for unregistered job");
            let phase = std::mem::replace(&mut record.phase, JobPhase::Running);
            let ctx = StepCtx {
                priority: record.priority,
                seq: record.seq,
                config: record.config,
                cancel: record.cancel.clone(),
                sink: Arc::clone(&record.sink),
            };
            state.active += 1;
            drop(state);

            let outcome = execute_step(phase, &ctx, &inner.ledger);

            state = inner.state.lock().expect("server state lock poisoned");
            state.active -= 1;
            match outcome {
                StepOutcome::Next(next) => {
                    let record = state
                        .registry
                        .get_mut(&id)
                        .expect("running job left the registry");
                    record.phase = next;
                    state.ready.push(id, ctx.priority, ctx.seq);
                }
                StepOutcome::Finished(result) => {
                    finish_job(&mut state, inner, id, *result);
                }
            }
            inner.work_ready.notify_all();
            continue;
        }
        if state.shutdown && state.registry.is_empty() {
            break;
        }
        state = inner
            .work_ready
            .wait(state)
            .expect("server state lock poisoned");
    }
}

/// Admits pending jobs best-first while their reservations fit the ledger;
/// queued jobs whose cancel flag is already up are reaped without admission.
fn try_admit(state: &mut State, inner: &Inner) {
    while let Some(id) = state.pending.peek() {
        let record = state
            .registry
            .get(&id)
            .expect("pending entry for unregistered job");
        if record.cancel.is_cancelled() {
            state.pending.pop();
            finish_job(
                state,
                inner,
                id,
                Err(PakmanError::Cancelled {
                    at: "admission queue".to_string(),
                }),
            );
            continue;
        }
        let fits = !inner.ledger.would_exceed(record.reservation) || state.admitted == 0;
        if !fits {
            break;
        }
        state.pending.pop();
        let record = state
            .registry
            .get_mut(&id)
            .expect("pending entry for unregistered job");
        inner.ledger.charge(record.reservation);
        record.admitted = true;
        state.admitted += 1;
        record.sink.emit(JobEvent::Admitted {
            reserved_bytes: record.reservation,
        });
        let JobPhase::Queued { input } = std::mem::replace(&mut record.phase, JobPhase::Running)
        else {
            unreachable!("pending job past the Queued phase");
        };
        record.phase = JobPhase::Ingest { input };
        state.ready.push(id, record.priority, record.seq);
    }
}

/// Terminal transition: emit the terminal event, release the reservation,
/// resolve the join slot, and drop the record (and with it any artifact).
pub(crate) fn finish_job(
    state: &mut State,
    inner: &Inner,
    id: JobId,
    result: Result<AssemblyOutput, PakmanError>,
) {
    let record = state
        .registry
        .remove(&id)
        .expect("finishing an unregistered job");
    if record.admitted {
        inner.ledger.release(record.reservation);
        state.admitted -= 1;
    }
    match &result {
        Ok(output) => record.sink.emit(JobEvent::Done {
            summary: Box::new(JobSummary {
                contig_count: output.stats.contig_count,
                total_length: output.stats.total_length,
                n50: output.stats.n50,
                compaction_profile: output.compaction_profile.clone(),
                sharding: output.sharding.clone(),
                spill: output.spill,
            }),
        }),
        Err(PakmanError::Cancelled { at }) => {
            record.sink.emit(JobEvent::Cancelled { at: at.clone() });
        }
        Err(other) => record.sink.emit(JobEvent::Failed {
            error: other.to_string(),
        }),
    }
    record.shared.finish(result);
}

/// Registers a freshly submitted job and queues it for admission. Returns the
/// pieces the handle needs.
pub(crate) fn submit(
    inner: &Inner,
    input: JobInput,
    config: PakmanConfig,
    priority: JobPriority,
    reservation: u64,
) -> (
    JobId,
    CancelToken,
    std::sync::mpsc::Receiver<JobEvent>,
    Arc<JobShared>,
) {
    let (tx, rx) = std::sync::mpsc::channel();
    let sink = Arc::new(EventSink::new(tx));
    let cancel = CancelToken::new();
    let shared = Arc::new(JobShared::default());
    let mut state = inner.state.lock().expect("server state lock poisoned");
    let seq = state.next_seq;
    state.next_seq += 1;
    let id = JobId(seq);
    sink.emit(JobEvent::Submitted { id });
    state.registry.insert(
        id,
        JobRecord {
            priority,
            seq,
            config,
            reservation,
            admitted: false,
            cancel: cancel.clone(),
            sink,
            shared: Arc::clone(&shared),
            phase: JobPhase::Queued { input },
        },
    );
    state.pending.push(id, priority, seq);
    drop(state);
    inner.work_ready.notify_all();
    (id, cancel, rx, shared)
}

/// Executes exactly one stage of one job. Every arm polls cancellation on
/// entry (inside the controlled pipeline methods) and the compaction arm also
/// polls between iterations, so a cancelled job unwinds at the next checkpoint
/// without finishing its current stage batch of work.
fn execute_step(phase: JobPhase, ctx: &StepCtx, ledger: &Arc<MemoryBudget>) -> StepOutcome {
    let control = RunControl::with_cancel(ctx.cancel.clone())
        .observed_by(ctx.sink.as_ref())
        .with_ledger(ledger);
    let pipeline = match AssemblyPipeline::new(ctx.config) {
        Ok(pipeline) => pipeline,
        Err(err) => return StepOutcome::Finished(Box::new(Err(err))),
    };
    match phase {
        JobPhase::Ingest { input } => {
            control.stage_started("ingest");
            let t0 = Instant::now();
            match ingest(input, &control) {
                Ok(reads) => StepOutcome::Next(JobPhase::Front {
                    reads,
                    ingest: t0.elapsed(),
                }),
                Err(err) => StepOutcome::Finished(Box::new(Err(err))),
            }
        }
        JobPhase::Front { reads, ingest } => match pipeline.front_controlled(&reads, &control) {
            Ok(mut front) => {
                front.access_reads += ingest;
                StepOutcome::Next(JobPhase::Compact {
                    front: Box::new(front),
                })
            }
            Err(err) => StepOutcome::Finished(Box::new(Err(err))),
        },
        JobPhase::Compact { front } => match pipeline.compact_part(*front, &control) {
            Ok(mid) => StepOutcome::Next(JobPhase::Walk { mid: Box::new(mid) }),
            Err(err) => StepOutcome::Finished(Box::new(Err(err))),
        },
        JobPhase::Walk { mid } => match pipeline.walk_part(*mid, &control) {
            Ok(output) => {
                for (index, contig) in output.contigs.iter().enumerate() {
                    ctx.sink.emit(JobEvent::ContigWritten {
                        index,
                        length: contig.len(),
                    });
                }
                StepOutcome::Finished(Box::new(Ok(output)))
            }
            Err(err) => StepOutcome::Finished(Box::new(Err(err))),
        },
        JobPhase::Queued { .. } | JobPhase::Running => {
            unreachable!("unrunnable phase reached a worker")
        }
    }
}

/// Materializes a job's input, polling cancellation between chunks.
fn ingest(input: JobInput, control: &RunControl<'_>) -> Result<Vec<SequencingRead>, PakmanError> {
    match input {
        JobInput::Reads(reads) => {
            control.check("ingest (in-memory reads)")?;
            Ok(reads)
        }
        JobInput::File { path } => {
            let source = FastaFastqSource::open(&path).map_err(PakmanError::from)?;
            drain_prefetched(PrefetchSource::new(source), control)
        }
        JobInput::Synthetic {
            genome_length,
            genome_seed,
            sequencer,
        } => {
            let genome = ReferenceGenome::builder()
                .length(genome_length)
                .seed(genome_seed)
                .build()
                .map_err(PakmanError::from)?;
            let mut source = SyntheticSource::new(genome, sequencer).map_err(PakmanError::from)?;
            let mut reads = Vec::with_capacity(source.reads_hint().0);
            while let Some(chunk) = source.next_chunk().map_err(PakmanError::from)? {
                control.check("ingest (synthetic reads)")?;
                reads.append(&mut chunk.into_reads());
            }
            Ok(reads)
        }
    }
}

/// Drains a prefetched file source. On cancellation the source is closed
/// explicitly — joining the ingestion worker so a cancelled job cannot leak
/// its prefetch thread; on normal completion `close` surfaces any I/O error
/// the worker hit after the last delivered chunk.
fn drain_prefetched(
    mut source: PrefetchSource,
    control: &RunControl<'_>,
) -> Result<Vec<SequencingRead>, PakmanError> {
    let mut reads = Vec::with_capacity(source.reads_hint().0);
    loop {
        if let Err(cancelled) = control.check("ingest (file streaming)") {
            let _ = source.close();
            return Err(cancelled);
        }
        match source.next_chunk().map_err(PakmanError::from)? {
            Some(chunk) => reads.append(&mut chunk.into_reads()),
            None => break,
        }
    }
    source.close().map_err(PakmanError::from)?;
    Ok(reads)
}
