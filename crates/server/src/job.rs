//! Job descriptions and the client-side handle.

use nmp_pak_genome::{SequencerConfig, SequencingRead};
use nmp_pak_pakman::{AssemblyOutput, CancelToken, PakmanConfig, PakmanError};
use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex};

use crate::event::JobEvent;

/// Server-assigned job identifier (monotone per server, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority. Higher-priority jobs are admitted first and their
/// ready stages run first; within a priority class the server is FIFO by
/// submission order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    /// Background work; yields to everything else.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work; scheduled ahead of both other classes.
    High,
}

/// Where a job's reads come from.
///
/// All three inputs feed the identical downstream pipeline; the server
/// guarantees each job's contigs are bit-identical to a one-shot
/// [`nmp_pak_pakman::PakmanAssembler`] run over the same reads.
#[derive(Debug)]
pub enum JobInput {
    /// Stream a FASTA/FASTQ file off disk (prefetched on a worker thread).
    File {
        /// Path to the FASTA or FASTQ file.
        path: PathBuf,
    },
    /// Assemble reads the client already holds.
    Reads(Vec<SequencingRead>),
    /// Generate a synthetic read set server-side (the paper's simulated
    /// workloads): a seeded reference genome plus a sequencer configuration.
    Synthetic {
        /// Length of the generated reference genome in bases.
        genome_length: usize,
        /// Seed for the reference genome content.
        genome_seed: u64,
        /// Read-sampling configuration (coverage, read length, error rate,
        /// seed).
        sequencer: SequencerConfig,
    },
}

/// Default admission reservation when the spec does not set one and the input
/// size is unknown (a file path): 16 MiB.
pub const DEFAULT_RESERVATION_BYTES: u64 = 16 << 20;

/// One assembly job: input, assembly configuration, scheduling class, and the
/// admission reservation charged against the server's shared memory ledger.
#[derive(Debug)]
pub struct JobSpec {
    /// The read source.
    pub input: JobInput,
    /// Assembly configuration (validated at submission).
    pub config: PakmanConfig,
    /// Scheduling class.
    pub priority: JobPriority,
    /// Bytes reserved in the server ledger at admission; `None` lets the
    /// server estimate from the input ([`JobSpec::estimated_reservation`]).
    pub reservation_bytes: Option<u64>,
}

impl JobSpec {
    /// A spec with default priority and a server-estimated reservation.
    pub fn new(input: JobInput, config: PakmanConfig) -> JobSpec {
        JobSpec {
            input,
            config,
            priority: JobPriority::default(),
            reservation_bytes: None,
        }
    }

    /// Sets the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: JobPriority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Pins the admission reservation instead of estimating it.
    #[must_use]
    pub fn with_reservation(mut self, bytes: u64) -> JobSpec {
        self.reservation_bytes = Some(bytes);
        self
    }

    /// The reservation the server will charge at admission: the explicit
    /// reservation when set, otherwise an input-derived estimate (in-memory
    /// reads: their approximate footprint; synthetic: coverage × genome
    /// length; file: [`DEFAULT_RESERVATION_BYTES`]).
    pub fn estimated_reservation(&self) -> u64 {
        if let Some(bytes) = self.reservation_bytes {
            return bytes;
        }
        match &self.input {
            JobInput::Reads(reads) => {
                nmp_pak_genome::ReadChunk::Borrowed(reads.as_slice()).approx_read_bytes()
            }
            JobInput::Synthetic {
                genome_length,
                sequencer,
                ..
            } => ((*genome_length as f64) * sequencer.coverage.max(1.0)) as u64,
            JobInput::File { .. } => DEFAULT_RESERVATION_BYTES,
        }
    }
}

/// The slot a finished job's outcome lands in; [`JobHandle::join`] blocks on
/// it.
#[derive(Debug, Default)]
pub(crate) struct JobShared {
    pub(crate) outcome: Mutex<Option<Result<AssemblyOutput, PakmanError>>>,
    pub(crate) done: Condvar,
}

impl JobShared {
    pub(crate) fn finish(&self, outcome: Result<AssemblyOutput, PakmanError>) {
        *self.outcome.lock().expect("job outcome lock poisoned") = Some(outcome);
        self.done.notify_all();
    }
}

/// Client-side handle to a submitted job: progress events, cancellation, and
/// the final outcome.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) cancel: CancelToken,
    pub(crate) events: Receiver<JobEvent>,
    pub(crate) shared: std::sync::Arc<JobShared>,
}

impl JobHandle {
    /// The server-assigned id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cooperative cancellation. The job observes the flag at its
    /// next checkpoint (a stage boundary or the top of a compaction
    /// iteration), unwinds, and resolves to [`PakmanError::Cancelled`]; a job
    /// still queued at admission never starts. Idempotent.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The job's progress-event stream. Events accumulate until read; after
    /// the terminal event (`Done`/`Failed`/`Cancelled`) the channel closes.
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.events
    }

    /// Drains every event currently queued without blocking.
    pub fn drain_events(&self) -> Vec<JobEvent> {
        self.events.try_iter().collect()
    }

    /// Blocks until the job reaches a terminal state and returns its outcome.
    /// A cancelled job returns [`PakmanError::Cancelled`].
    ///
    /// # Errors
    ///
    /// The job's failure, when it did not complete.
    pub fn join(self) -> Result<AssemblyOutput, PakmanError> {
        let mut slot = self
            .shared
            .outcome
            .lock()
            .expect("job outcome lock poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .shared
                .done
                .wait(slot)
                .expect("job outcome lock poisoned");
        }
    }
}
