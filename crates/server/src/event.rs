//! The per-job progress-event stream.

use nmp_pak_pakman::{CompactionProfile, ProgressObserver, ShardingTelemetry, SpillTelemetry};
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use crate::job::JobId;

/// Condensed result of a finished job, carried by [`JobEvent::Done`].
///
/// The telemetry fields are the pipeline's own artifacts
/// ([`CompactionProfile`], [`ShardingTelemetry`], [`SpillTelemetry`]) so an
/// event consumer sees exactly what a one-shot caller would read off
/// [`nmp_pak_pakman::AssemblyOutput`].
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Number of contigs assembled.
    pub contig_count: usize,
    /// Total assembled bases.
    pub total_length: usize,
    /// The N50 metric.
    pub n50: usize,
    /// Per-iteration compaction profile.
    pub compaction_profile: CompactionProfile,
    /// Sharded-execution telemetry, when the job ran sharded.
    pub sharding: Option<ShardingTelemetry>,
    /// External-memory counting telemetry, when the job spilled.
    pub spill: Option<SpillTelemetry>,
}

/// One event on a job's progress stream, in submission-to-terminal order:
/// `Submitted`, `Admitted`, then interleaved `StageStarted` /
/// `CompactionIteration` / `ContigWritten`, closed by exactly one terminal
/// event (`Done`, `Failed`, or `Cancelled`).
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job entered the server's queue.
    Submitted {
        /// The server-assigned id.
        id: JobId,
    },
    /// Admission control reserved the job's bytes in the shared ledger; the
    /// job is now schedulable.
    Admitted {
        /// Bytes reserved in the global [`nmp_pak_pakman::MemoryBudget`]
        /// ledger until the job terminates.
        reserved_bytes: u64,
    },
    /// A pipeline stage is starting on some worker.
    StageStarted {
        /// Checkpoint name, e.g. `"stage D (iterative compaction)"`.
        stage: &'static str,
    },
    /// One Iterative Compaction iteration is starting.
    CompactionIteration {
        /// Zero-based iteration index.
        iteration: usize,
        /// MacroNodes still alive entering the iteration.
        alive_nodes: usize,
    },
    /// A contig was emitted by the walk stage.
    ContigWritten {
        /// Zero-based contig index (longest first).
        index: usize,
        /// Contig length in bases.
        length: usize,
    },
    /// Terminal: the job completed; the full output is available via
    /// [`crate::JobHandle::join`].
    Done {
        /// Condensed result and telemetry (boxed: it dwarfs the other
        /// variants).
        summary: Box<JobSummary>,
    },
    /// Terminal: the job failed.
    Failed {
        /// Rendered error.
        error: String,
    },
    /// Terminal: the job observed its cancellation flag.
    Cancelled {
        /// The checkpoint that observed the flag.
        at: String,
    },
}

/// Sender half of a job's event stream; dropped events (receiver gone) are
/// ignored — a client that drops its handle's receiver just stops listening.
#[derive(Debug)]
pub(crate) struct EventSink {
    tx: Mutex<Sender<JobEvent>>,
}

impl EventSink {
    pub(crate) fn new(tx: Sender<JobEvent>) -> EventSink {
        EventSink { tx: Mutex::new(tx) }
    }

    pub(crate) fn emit(&self, event: JobEvent) {
        let _ = self
            .tx
            .lock()
            .expect("event sender lock poisoned")
            .send(event);
    }
}

/// Forwards pipeline progress callbacks onto a job's event stream (the bridge
/// from [`ProgressObserver`] to [`JobEvent`]).
impl ProgressObserver for EventSink {
    fn stage_started(&self, stage: &'static str) {
        self.emit(JobEvent::StageStarted { stage });
    }

    fn compaction_iteration(&self, iteration: usize, alive_nodes: usize) {
        self.emit(JobEvent::CompactionIteration {
            iteration,
            alive_nodes,
        });
    }
}
