//! Priority queues for admission and for runnable stage-steps.
//!
//! Both queues order by `(priority, submission order)`: the highest priority
//! class first, FIFO within a class. The ready queue holds *steps* (one stage
//! of one job), which is what lets the shared worker pool interleave stages of
//! different jobs instead of running each job to completion.

use std::collections::BinaryHeap;

use crate::job::{JobId, JobPriority};

/// Heap key: higher priority wins, then earlier submission (`seq`) wins.
#[derive(Debug, PartialEq, Eq)]
struct StepKey {
    priority: JobPriority,
    seq: u64,
    job: JobId,
}

impl Ord for StepKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for StepKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runnable stage-steps, popped best-first by the worker pool.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    heap: BinaryHeap<StepKey>,
}

impl ReadyQueue {
    pub(crate) fn push(&mut self, job: JobId, priority: JobPriority, seq: u64) {
        self.heap.push(StepKey { priority, seq, job });
    }

    pub(crate) fn pop(&mut self) -> Option<JobId> {
        self.heap.pop().map(|key| key.job)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Jobs waiting for admission, examined strictly best-first: admission never
/// lets a smaller low-priority job jump a blocked high-priority one (no
/// bypass, so a saturated ledger cannot starve the head of the queue).
#[derive(Debug, Default)]
pub(crate) struct PendingQueue {
    heap: BinaryHeap<StepKey>,
}

impl PendingQueue {
    pub(crate) fn push(&mut self, job: JobId, priority: JobPriority, seq: u64) {
        self.heap.push(StepKey { priority, seq, job });
    }

    /// The next job admission would consider, without removing it.
    pub(crate) fn peek(&self) -> Option<JobId> {
        self.heap.peek().map(|key| key.job)
    }

    /// Removes the job admission just committed to (the current best).
    pub(crate) fn pop(&mut self) -> Option<JobId> {
        self.heap.pop().map(|key| key.job)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_orders_by_priority_then_fifo() {
        let mut queue = ReadyQueue::default();
        queue.push(JobId(0), JobPriority::Normal, 0);
        queue.push(JobId(1), JobPriority::High, 1);
        queue.push(JobId(2), JobPriority::Normal, 2);
        queue.push(JobId(3), JobPriority::Low, 3);
        queue.push(JobId(4), JobPriority::High, 4);
        let order: Vec<JobId> = std::iter::from_fn(|| queue.pop()).collect();
        assert_eq!(
            order,
            vec![JobId(1), JobId(4), JobId(0), JobId(2), JobId(3)]
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn pending_queue_peek_matches_pop() {
        let mut queue = PendingQueue::default();
        queue.push(JobId(7), JobPriority::Low, 0);
        queue.push(JobId(8), JobPriority::High, 1);
        assert_eq!(queue.peek(), Some(JobId(8)));
        assert_eq!(queue.pop(), Some(JobId(8)));
        assert_eq!(queue.pop(), Some(JobId(7)));
        assert!(queue.is_empty());
    }
}
