//! The job registry: per-job state owned by the scheduler.
//!
//! A job advances through [`JobPhase`] one stage-step at a time. The phase
//! *owns* the inter-stage artifact (drained reads, front artifact, compacted
//! graph), so a worker executing a step takes the phase out of the record,
//! computes the next artifact, and writes the next phase back — no artifact is
//! ever shared between threads, and a job's memory is dropped the moment it
//! terminates.

use nmp_pak_genome::SequencingRead;
use nmp_pak_pakman::{CancelToken, CompactArtifact, FrontArtifact, PakmanConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::event::EventSink;
use crate::job::{JobId, JobInput, JobPriority, JobShared};

/// Where a job is in its lifecycle; non-terminal phases own the artifact the
/// next stage consumes.
#[derive(Debug)]
pub(crate) enum JobPhase {
    /// Waiting for admission; not yet charged to the ledger.
    Queued {
        /// The submitted input, handed to ingestion at admission.
        input: JobInput,
    },
    /// Admitted; the next step materializes the reads.
    Ingest {
        /// The submitted input.
        input: JobInput,
    },
    /// Reads resident; the next step runs stages A–C.
    Front {
        /// The materialized read set.
        reads: Vec<SequencingRead>,
        /// Ingestion wall-clock, charged to stage A's timing.
        ingest: Duration,
    },
    /// Front half done; the next step runs stage D.
    Compact {
        /// Stages A–C artifact (boxed: artifacts dwarf the other variants).
        front: Box<FrontArtifact>,
    },
    /// Compaction done; the next step runs stage E and finishes.
    Walk {
        /// Stage D artifact (boxed, as above).
        mid: Box<CompactArtifact>,
    },
    /// A worker currently holds this job's artifact and is executing a step.
    Running,
}

/// One registered job.
#[derive(Debug)]
pub(crate) struct JobRecord {
    pub(crate) priority: JobPriority,
    /// Submission sequence number (FIFO tiebreak inside a priority class).
    pub(crate) seq: u64,
    pub(crate) config: PakmanConfig,
    /// Bytes charged to the server ledger at admission.
    pub(crate) reservation: u64,
    /// `true` once the reservation has been charged (and must be released).
    pub(crate) admitted: bool,
    pub(crate) cancel: CancelToken,
    pub(crate) sink: Arc<EventSink>,
    pub(crate) shared: Arc<JobShared>,
    pub(crate) phase: JobPhase,
}

/// The registry: jobs are inserted at submission and removed at their
/// terminal transition, so `is_empty` means "no job anywhere in flight".
pub(crate) type Registry = HashMap<JobId, JobRecord>;
