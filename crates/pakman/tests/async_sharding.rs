//! The async schedule's verified-equivalent contract: dropping the all-shards
//! thread barrier may reorder work arbitrarily, but the *outputs* — final
//! contigs, assembly statistics, the counted-kmer stream — must be
//! byte-identical to the lock-step engine, and the mailbox flush ledger (what
//! the network model charges) must match flush for flush. Only scheduling
//! telemetry (per-round times, per-iteration stats, the trace) may differ.
//!
//! The sweeps pin `compaction_node_threshold: 0` so both engines compact all
//! the way to the fixed point (the async engine honors any threshold against
//! the global census at wave boundaries, exactly like lock-step — zero just
//! maximizes the amount of compaction the equivalence covers).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig, SequencingRead};
use nmp_pak_pakman::{
    AssemblyOutput, AssemblyPipeline, BatchAssembler, BatchSchedule, CancelToken, CompactionMode,
    MemoryBudget, PakmanAssembler, PakmanConfig, PakmanError, ProgressObserver, RunControl,
    ShardConfig, ShardSchedule,
};

const SHARD_SWEEP: [usize; 4] = [1, 2, 7, 32];
const THREAD_SWEEP: [usize; 3] = [1, 4, 8];

fn simulated_reads(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
    let genome = ReferenceGenome::builder()
        .length(length)
        .seed(seed)
        .build()
        .unwrap();
    ReadSimulator::new(SequencerConfig {
        coverage,
        substitution_error_rate: 0.001,
        seed: seed + 1,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .unwrap()
}

fn config(
    shards: usize,
    threads: usize,
    mode: CompactionMode,
    schedule: ShardSchedule,
) -> PakmanConfig {
    PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 0,
        threads,
        compaction_mode: mode,
        shard_schedule: schedule,
        shards: ShardConfig {
            shard_count: shards,
        },
        ..PakmanConfig::default()
    }
}

fn assemble(reads: &[SequencingRead], config: PakmanConfig) -> AssemblyOutput {
    PakmanAssembler::new(config).assemble(reads).unwrap()
}

/// The outputs the verified-equivalent contract covers (everything except
/// scheduling telemetry).
fn assert_equivalent(run: &AssemblyOutput, reference: &AssemblyOutput, what: &str) {
    assert_eq!(run.contigs, reference.contigs, "contigs diverged: {what}");
    assert_eq!(run.stats, reference.stats, "stats diverged: {what}");
    assert_eq!(
        run.kmer_stats, reference.kmer_stats,
        "k-mer stats diverged: {what}"
    );
    assert_eq!(
        run.compaction.initial_nodes, reference.compaction.initial_nodes,
        "{what}"
    );
    assert_eq!(
        run.compaction.final_nodes, reference.compaction.final_nodes,
        "{what}"
    );
    assert_eq!(
        run.compaction.total_transfers, reference.compaction.total_transfers,
        "the schedule must not change what is transferred: {what}"
    );
    assert!(run.compaction.converged, "{what}");
}

#[test]
fn async_matches_lockstep_across_shards_threads_and_modes() {
    let reads = simulated_reads(8_000, 25.0, 0x54A2D);
    for mode in [CompactionMode::FullScan, CompactionMode::Frontier] {
        let reference = assemble(&reads, config(1, 1, mode, ShardSchedule::Lockstep));
        assert!(!reference.contigs.is_empty());
        for shards in SHARD_SWEEP {
            for threads in THREAD_SWEEP {
                let run = assemble(&reads, config(shards, threads, mode, ShardSchedule::Async));
                let what = format!("shards = {shards}, threads = {threads}, mode = {mode:?}");
                assert_equivalent(&run, &reference, &what);
                if shards > 1 {
                    let telemetry = run.sharding.expect("sharded runs record telemetry");
                    assert_eq!(telemetry.shard_count, shards, "{what}");
                    // Async records one round-time row per shard, each with at
                    // least the initial full scan.
                    assert_eq!(telemetry.round_nanos.len(), shards, "{what}");
                    assert!(
                        telemetry.round_nanos.iter().all(|r| !r.is_empty()),
                        "every shard runs at least one round: {what}"
                    );
                }
            }
        }
    }
}

#[test]
fn async_flush_ledger_matches_the_lockstep_byte_matrix() {
    // The network model charges the measured mailbox traffic; the schedule
    // must not change it. Per-flush bytes must sum to exactly the lock-step
    // engine's shard→shard byte matrix, lane for lane.
    let reads = simulated_reads(8_000, 25.0, 0x54A2D);
    for shards in [2usize, 7, 32] {
        let lockstep = assemble(
            &reads,
            config(shards, 4, CompactionMode::Frontier, ShardSchedule::Lockstep),
        )
        .sharding
        .unwrap();
        let async_run = assemble(
            &reads,
            config(shards, 4, CompactionMode::Frontier, ShardSchedule::Async),
        )
        .sharding
        .unwrap();

        assert_eq!(
            async_run.route_bytes, lockstep.route_bytes,
            "byte matrix diverged at shards = {shards}"
        );
        // Waves are global iterations, so the per-flush ledgers are not just
        // conserved in aggregate — they are identical record for record.
        assert_eq!(
            async_run.flushes, lockstep.flushes,
            "flush ledger diverged at shards = {shards}"
        );
        assert_eq!(
            async_run.checked_per_shard, lockstep.checked_per_shard,
            "predicate work diverged at shards = {shards}"
        );
        // Each engine's per-flush ledger fully accounts for its matrix…
        for telemetry in [&lockstep, &async_run] {
            assert_eq!(
                telemetry.total_flush_bytes(),
                telemetry.total_route_bytes(),
                "flushes must account every routed byte: shards = {shards}"
            );
            let mut per_lane = vec![0u64; shards * shards];
            for flush in &telemetry.flushes {
                per_lane[flush.src * shards + flush.dst] += flush.bytes;
            }
            assert_eq!(per_lane, telemetry.route_bytes, "shards = {shards}");
        }
        // …and the aggregate per-iteration view stays consistent either way.
        assert_eq!(
            async_run.total_mailbox_bytes(),
            lockstep.total_mailbox_bytes(),
            "shards = {shards}"
        );
        assert_eq!(
            async_run.total_transfers(),
            lockstep.total_transfers(),
            "shards = {shards}"
        );
    }
}

#[test]
fn async_honors_threshold_and_iteration_cap_like_lockstep() {
    // Mid-run stops exercise the apply-only finishing wave: lock-step applies
    // its last mailbox before leaving the loop, and the async engine must land
    // exactly the same flushes before reporting done.
    let reads = simulated_reads(8_000, 25.0, 0x54A2D);
    for threshold in [50usize, 400] {
        let mut reference = config(7, 4, CompactionMode::Frontier, ShardSchedule::Lockstep);
        reference.compaction_node_threshold = threshold;
        let mut run = config(7, 4, CompactionMode::Frontier, ShardSchedule::Async);
        run.compaction_node_threshold = threshold;
        assert_equivalent(
            &assemble(&reads, run),
            &assemble(&reads, reference),
            &format!("threshold = {threshold}"),
        );
    }
    let mut reference = config(7, 4, CompactionMode::FullScan, ShardSchedule::Lockstep);
    reference.max_compaction_iterations = 3;
    let mut run = config(7, 4, CompactionMode::FullScan, ShardSchedule::Async);
    run.max_compaction_iterations = 3;
    let reference = assemble(&reads, reference);
    let run = assemble(&reads, run);
    assert!(
        !reference.compaction.converged,
        "3 iterations must not reach the fixed point"
    );
    assert_eq!(run.contigs, reference.contigs, "capped contigs diverged");
    assert_eq!(
        run.compaction.final_nodes, reference.compaction.final_nodes,
        "capped final census diverged"
    );
    assert!(!run.compaction.converged);
}

#[test]
fn async_zero_kmer_shards_match_lockstep() {
    // Far more shards than k-mers: most shards start (and stay) empty, so
    // their workers go quiescent immediately. Output must still match.
    let reads = simulated_reads(2_000, 8.0, 0xE0E0);
    let small_config = |schedule: ShardSchedule, shards: usize| PakmanConfig {
        k: 15,
        min_kmer_count: 1,
        compaction_node_threshold: 0,
        threads: 4,
        shard_schedule: schedule,
        shards: ShardConfig {
            shard_count: shards,
        },
        ..PakmanConfig::default()
    };
    let reference = assemble(&reads, small_config(ShardSchedule::Lockstep, 1));
    let run = assemble(&reads, small_config(ShardSchedule::Async, 4096));
    assert_equivalent(&run, &reference, "shards = 4096 (mostly empty)");
    let telemetry = run.sharding.unwrap();
    assert!(
        telemetry.initial_alive_per_shard.contains(&0),
        "with 4096 shards over a tiny graph, some shard owns zero k-mers"
    );
}

#[test]
fn async_under_pipelined_batches_matches_sequential_lockstep() {
    // The async engine stacked under the k-deep pipelined batch scheduler must
    // still reproduce the fully conservative configuration's contigs.
    let reads = simulated_reads(8_000, 25.0, 0xBA7C5);
    let reference = BatchAssembler::with_schedule(
        config(1, 1, CompactionMode::Frontier, ShardSchedule::Lockstep),
        0.25,
        BatchSchedule::Sequential,
    )
    .assemble(&reads)
    .unwrap();
    assert!(reference.batch_compaction.len() >= 2);

    let pipelined = BatchAssembler::with_schedule(
        config(7, 4, CompactionMode::Frontier, ShardSchedule::Async),
        0.25,
        BatchSchedule::Pipelined {
            depth: 3,
            max_inflight_bytes: None,
        },
    )
    .assemble(&reads)
    .unwrap();
    assert_eq!(pipelined.contigs, reference.contigs, "contigs diverged");
    assert_eq!(pipelined.stats, reference.stats, "stats diverged");
    assert_eq!(
        pipelined.batch_sharding.len(),
        pipelined.batch_compaction.len(),
        "every sharded batch surfaces telemetry"
    );
}

/// Cancels the run from inside the engine's own progress callback, so the
/// flag goes up while async rounds and mailbox flushes are in flight.
struct CancelAfter {
    token: CancelToken,
    after: usize,
    seen: AtomicUsize,
}

impl ProgressObserver for CancelAfter {
    fn compaction_iteration(&self, _iteration: usize, _alive_nodes: usize) {
        if self.seen.fetch_add(1, Ordering::AcqRel) + 1 == self.after {
            self.token.cancel();
        }
    }
}

#[test]
fn cancel_mid_async_flush_drains_the_ledger() {
    let reads = simulated_reads(20_000, 15.0, 0xCA9CE1);
    let pipeline =
        AssemblyPipeline::new(config(7, 4, CompactionMode::Frontier, ShardSchedule::Async))
            .unwrap();

    let token = CancelToken::new();
    let observer = CancelAfter {
        token: token.clone(),
        after: 3,
        seen: AtomicUsize::new(0),
    };
    let ledger = Arc::new(MemoryBudget::unbounded());
    let control = RunControl::with_cancel(token)
        .observed_by(&observer)
        .with_ledger(&ledger);

    let err = pipeline
        .run_controlled(&reads, &control)
        .expect_err("cancelled mid-compaction must not complete");
    match err {
        PakmanError::Cancelled { at } => {
            assert!(
                at.starts_with("async"),
                "cancellation raised inside the async engine must be observed \
                 at an async checkpoint, got {at:?}"
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(ledger.peak_bytes() > 0, "the run charged real memory");
    assert_eq!(
        ledger.used(),
        0,
        "every in-flight flush and stage charge must be released on unwind"
    );
}
