//! Pipeline-level determinism: the entire assembly — contigs, quality statistics,
//! and compaction statistics — must be bit-identical at every thread count.
//!
//! The per-phase unit tests already check that k-mer counting and graph
//! construction are thread-count-invariant in isolation; this test catches the
//! ordering bugs those miss: a nondeterministic merge segment boundary, a
//! first-touch trace ordering that leaks into statistics, or a wiring order that
//! shifts with the parallel construction chunking.

use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig, SequencingRead};
use nmp_pak_pakman::{
    AssemblyOutput, BatchAssembler, BatchAssemblyOutput, BatchSchedule, CompactionMode,
    PakmanAssembler, PakmanConfig, ShardConfig, SpillConfig,
};

fn simulated_reads(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
    let genome = ReferenceGenome::builder()
        .length(length)
        .seed(seed)
        .build()
        .unwrap();
    ReadSimulator::new(SequencerConfig {
        coverage,
        substitution_error_rate: 0.001,
        seed: seed + 1,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .unwrap()
}

fn assemble(reads: &[SequencingRead], k: usize, threads: usize) -> AssemblyOutput {
    PakmanAssembler::new(PakmanConfig {
        k,
        min_kmer_count: 2,
        compaction_node_threshold: 10,
        threads,
        record_trace: false,
        ..PakmanConfig::default()
    })
    .assemble(reads)
    .unwrap()
}

#[test]
fn full_pipeline_is_bit_identical_across_thread_counts() {
    let reads = simulated_reads(10_000, 30.0, 0xD5EED);
    let reference = assemble(&reads, 21, 1);
    assert!(!reference.contigs.is_empty());

    for threads in [2, 4, 8] {
        let multi = assemble(&reads, 21, threads);
        assert_eq!(
            multi.contigs, reference.contigs,
            "contigs diverged at threads = {threads}"
        );
        assert_eq!(
            multi.stats, reference.stats,
            "assembly stats diverged at threads = {threads}"
        );
        assert_eq!(
            multi.kmer_stats, reference.kmer_stats,
            "k-mer stats diverged at threads = {threads}"
        );
        assert_eq!(
            multi.compaction, reference.compaction,
            "compaction stats diverged at threads = {threads}"
        );
    }
}

fn batched_config(threads: usize) -> PakmanConfig {
    PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 10,
        threads,
        record_trace: true,
        ..PakmanConfig::default()
    }
}

fn assemble_batched(
    reads: &[SequencingRead],
    threads: usize,
    schedule: BatchSchedule,
) -> BatchAssemblyOutput {
    BatchAssembler::with_schedule(batched_config(threads), 0.25, schedule)
        .assemble(reads)
        .unwrap()
}

fn assert_batch_outputs_identical(a: &BatchAssemblyOutput, b: &BatchAssemblyOutput, what: &str) {
    assert_eq!(a.contigs, b.contigs, "contigs diverged: {what}");
    assert_eq!(a.stats, b.stats, "assembly stats diverged: {what}");
    assert_eq!(
        a.batch_compaction, b.batch_compaction,
        "per-batch compaction stats diverged: {what}"
    );
    assert_eq!(
        a.batch_traces, b.batch_traces,
        "per-batch traces diverged: {what}"
    );
}

#[test]
fn spilled_counting_is_bit_identical_to_in_memory_across_threads_and_shards() {
    // The external-memory counting path (64 KiB resident budget — tiny, forcing
    // repeated evictions and multi-run merges) must reproduce the unconstrained
    // in-memory assembly bit for bit at every thread count and shard count. The
    // wave boundaries, eviction schedule, and k-way read-back merge are all
    // value-ordered, so nothing downstream may observe the budget.
    let reads = simulated_reads(10_000, 30.0, 0x5B11);
    let config_for = |threads: usize, shards: usize, spill: SpillConfig| PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 10,
        threads,
        record_trace: false,
        shards: ShardConfig {
            shard_count: shards,
        },
        spill,
        ..PakmanConfig::default()
    };
    let reference = PakmanAssembler::new(config_for(1, 1, SpillConfig::in_memory()))
        .assemble(&reads)
        .unwrap();
    assert!(!reference.contigs.is_empty());
    assert!(reference.spill.is_none(), "in-memory run reports no spill");

    for threads in [1, 4, 8] {
        for shards in [1, 8] {
            let spilled =
                PakmanAssembler::new(config_for(threads, shards, SpillConfig::bounded(64 * 1024)))
                    .assemble(&reads)
                    .unwrap();
            let what = format!("threads = {threads}, shards = {shards}");
            let telemetry = spilled.spill.expect("bounded run records telemetry");
            assert!(
                telemetry.bytes_spilled > 0,
                "{what}: the 64 KiB budget must force spilling"
            );
            assert!(
                telemetry.merge_passes >= 1,
                "{what}: read-back requires at least the final merge pass"
            );
            assert_eq!(
                spilled.contigs, reference.contigs,
                "contigs diverged: {what}"
            );
            assert_eq!(spilled.stats, reference.stats, "stats diverged: {what}");
            assert_eq!(
                spilled.kmer_stats, reference.kmer_stats,
                "k-mer stats diverged: {what}"
            );
            assert_eq!(
                spilled.compaction, reference.compaction,
                "compaction stats diverged: {what}"
            );
        }
    }
}

#[test]
fn streaming_scheduler_is_bit_identical_to_the_sequential_path() {
    // The overlapped scheduler runs stages A–C of batch i+1 concurrently with
    // stages D–E of batch i; no interleaving may change any output bit, at any
    // thread count, and both schedules must agree with the single-threaded
    // sequential reference.
    let reads = simulated_reads(10_000, 30.0, 0xBA7C);
    let reference = assemble_batched(&reads, 1, BatchSchedule::Sequential);
    assert!(!reference.contigs.is_empty());
    assert!(
        reference.batch_compaction.len() >= 2,
        "the scheduler test needs multiple batches"
    );
    assert_eq!(
        reference.batch_traces.len(),
        reference.batch_compaction.len()
    );

    for threads in [1, 2, 4, 8] {
        let sequential = assemble_batched(&reads, threads, BatchSchedule::Sequential);
        let overlapped = assemble_batched(&reads, threads, BatchSchedule::Overlapped);
        assert_batch_outputs_identical(
            &sequential,
            &reference,
            &format!("sequential at threads = {threads}"),
        );
        assert_batch_outputs_identical(
            &overlapped,
            &reference,
            &format!("overlapped at threads = {threads}"),
        );
    }
}

#[test]
fn pipelined_scheduler_is_bit_identical_to_the_sequential_path() {
    // The k-deep window runs the fronts of up to `depth` batches concurrently
    // with the back of the finishing batch; no interleaving, depth, byte
    // budget, or thread count may change any output bit.
    let reads = simulated_reads(10_000, 30.0, 0xBA7C);
    let reference = assemble_batched(&reads, 1, BatchSchedule::Sequential);
    assert!(reference.batch_compaction.len() >= 2);

    for threads in [1, 2, 4, 8] {
        let pipelined = assemble_batched(
            &reads,
            threads,
            BatchSchedule::Pipelined {
                depth: 3,
                max_inflight_bytes: None,
            },
        );
        assert_batch_outputs_identical(
            &pipelined,
            &reference,
            &format!("pipelined depth 3 at threads = {threads}"),
        );
    }
    // A byte budget can stall admission but never change the output.
    let budget = reads.iter().map(|r| r.len() as u64).sum::<u64>() / 2;
    let budgeted = assemble_batched(
        &reads,
        4,
        BatchSchedule::Pipelined {
            depth: 3,
            max_inflight_bytes: Some(budget),
        },
    );
    assert_batch_outputs_identical(&budgeted, &reference, "pipelined with byte budget");
}

#[test]
fn streamed_fastq_assembly_is_bounded_and_matches_in_memory() {
    use nmp_pak_genome::{fasta::write_fastq, FastaFastqSource, ReadChunk};
    use std::io::Cursor;

    // Serialize a read set to FASTQ text and assemble it back through the
    // streaming source, multi-batch, with a byte budget on the in-flight
    // window: the full read set must never be resident at once.
    let reads = simulated_reads(10_000, 30.0, 0xF00D);
    let mut fastq = Vec::new();
    write_fastq(&mut fastq, &reads).unwrap();

    // The streamed/planned comparison below requires identical batch
    // boundaries: count-based chunking (4 equal chunks) only matches
    // BatchPlan::by_fraction's remainder-first split when 4 divides the count.
    assert_eq!(
        reads.len() % 4,
        0,
        "pick a workload divisible into 4 batches"
    );
    let chunk_reads = reads.len() / 4;
    let chunk_bytes = ReadChunk::Borrowed(&reads[..chunk_reads]).approx_read_bytes();
    let total_bytes = ReadChunk::Borrowed(&reads[..]).approx_read_bytes();
    let budget = 2 * chunk_bytes;

    let assembler = BatchAssembler::with_schedule(
        batched_config(4),
        0.25,
        BatchSchedule::Pipelined {
            depth: 3,
            max_inflight_bytes: Some(budget),
        },
    );
    let streamed = assembler
        .assemble_source(FastaFastqSource::fastq(Cursor::new(fastq)).with_chunk_reads(chunk_reads))
        .unwrap();
    assert_eq!(streamed.batch_compaction.len(), 4);

    // Bounded ingestion: the high-water mark respects the budget (plus at most
    // one staged chunk) and stays well below the whole read set. The FASTQ
    // reads lack simulation provenance, so allow a small accounting delta.
    assert!(
        streamed.peak_inflight_read_bytes <= budget + chunk_bytes,
        "peak {} vs budget {budget}",
        streamed.peak_inflight_read_bytes
    );
    assert!(
        streamed.peak_inflight_read_bytes < total_bytes,
        "peak {} should be below the whole set {total_bytes}",
        streamed.peak_inflight_read_bytes
    );

    // The streamed assembly matches the in-memory path over the same batches:
    // FASTQ round-tripping preserves ids and sequences, and batch boundaries
    // (4 × chunk_reads) equal the 0.25-fraction plan.
    let in_memory = assembler.assemble(&reads).unwrap();
    assert_eq!(streamed.contigs, in_memory.contigs);
    assert_eq!(streamed.stats, in_memory.stats);
    assert_eq!(streamed.batch_compaction, in_memory.batch_compaction);
    assert_eq!(streamed.batch_traces, in_memory.batch_traces);
}

#[test]
fn frontier_compaction_is_bit_identical_to_full_scan() {
    // The frontier-driven P1 re-evaluates only nodes whose neighbourhood changed;
    // a full scan re-evaluates everything. Both must produce the same
    // CompactionStats, the same CompactionTrace, and the same contigs — at every
    // thread count — or the frontier invariant (DESIGN.md) is broken.
    let reads = simulated_reads(10_000, 30.0, 0xF207);
    let assemble_mode = |threads: usize, mode: CompactionMode| {
        PakmanAssembler::new(PakmanConfig {
            k: 21,
            min_kmer_count: 2,
            compaction_node_threshold: 10,
            threads,
            record_trace: true,
            compaction_mode: mode,
            ..PakmanConfig::default()
        })
        .assemble(&reads)
        .unwrap()
    };
    let reference = assemble_mode(1, CompactionMode::FullScan);
    assert!(!reference.contigs.is_empty());
    assert!(reference.compaction.iteration_count() > 1);

    for threads in [1, 2, 4, 8] {
        for mode in [CompactionMode::FullScan, CompactionMode::Frontier] {
            let run = assemble_mode(threads, mode);
            let what = format!("{mode:?} at threads = {threads}");
            assert_eq!(run.contigs, reference.contigs, "contigs diverged: {what}");
            assert_eq!(run.stats, reference.stats, "stats diverged: {what}");
            assert_eq!(
                run.compaction, reference.compaction,
                "compaction stats diverged: {what}"
            );
            assert_eq!(run.trace, reference.trace, "trace diverged: {what}");
        }
    }
}

#[test]
fn frontier_checks_strictly_fewer_nodes_than_full_scan() {
    // The profile is the work ledger behind the frontier's speedup claim: after
    // the iteration-0 full scan, every later iteration must evaluate strictly
    // fewer predicates than the alive-node census a full scan would pay.
    let reads = simulated_reads(10_000, 30.0, 0xF207);
    let output = PakmanAssembler::new(PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 10,
        threads: 4,
        compaction_mode: CompactionMode::Frontier,
        ..PakmanConfig::default()
    })
    .assemble(&reads)
    .unwrap();
    let profile = &output.compaction_profile;
    assert!(profile.iterations.len() > 1, "need a multi-iteration run");
    assert_eq!(
        profile.iterations[0].checked_nodes, profile.iterations[0].alive_nodes,
        "iteration 0 is a full scan"
    );
    for it in &profile.iterations[1..] {
        assert!(
            it.checked_nodes < it.alive_nodes,
            "iteration {}: frontier checked {} of {} alive nodes",
            it.iteration,
            it.checked_nodes,
            it.alive_nodes
        );
    }
}

#[test]
fn frontier_batched_pipelined_schedule_matches_full_scan_sequential() {
    // The frontier compactor composed with the k-deep batch scheduler: the
    // stacked fast paths must still reproduce the fully conservative
    // configuration (sequential schedule, full-scan P1) bit for bit.
    let reads = simulated_reads(10_000, 30.0, 0xBA7C);
    let config_for = |threads: usize, mode: CompactionMode| PakmanConfig {
        compaction_mode: mode,
        ..batched_config(threads)
    };
    let reference = BatchAssembler::with_schedule(
        config_for(1, CompactionMode::FullScan),
        0.25,
        BatchSchedule::Sequential,
    )
    .assemble(&reads)
    .unwrap();
    assert!(reference.batch_compaction.len() >= 2);

    for threads in [1, 2, 4, 8] {
        let pipelined = BatchAssembler::with_schedule(
            config_for(threads, CompactionMode::Frontier),
            0.25,
            BatchSchedule::Pipelined {
                depth: 3,
                max_inflight_bytes: None,
            },
        )
        .assemble(&reads)
        .unwrap();
        assert_batch_outputs_identical(
            &pipelined,
            &reference,
            &format!("frontier pipelined depth 3 at threads = {threads}"),
        );
    }
}

#[test]
fn recorded_traces_are_identical_across_thread_counts() {
    // The compaction trace is replayed by the memory-system simulators, so its
    // event streams must not depend on the thread count either.
    let reads = simulated_reads(4_000, 20.0, 0xACE5);
    let trace_for = |threads: usize| {
        PakmanAssembler::new(PakmanConfig {
            k: 17,
            min_kmer_count: 2,
            compaction_node_threshold: 10,
            threads,
            record_trace: true,
            ..PakmanConfig::default()
        })
        .assemble(&reads)
        .unwrap()
        .trace
        .expect("trace requested")
    };
    let reference = trace_for(1);
    for threads in [2, 8] {
        assert_eq!(
            trace_for(threads),
            reference,
            "trace diverged at threads = {threads}"
        );
    }
}
