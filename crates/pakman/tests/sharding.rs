//! Sharded-execution determinism: the owner-computes decomposition must be
//! invisible in every output bit. For every shard count and thread count —
//! including under the k-deep pipelined batch schedule — contigs, assembly and
//! compaction statistics, and the recorded access trace must equal the
//! single-graph reference exactly; only the telemetry (where work happened,
//! what crossed shards) may differ.

use nmp_pak_genome::{ReadSimulator, ReferenceGenome, SequencerConfig, SequencingRead};
use nmp_pak_pakman::{
    AssemblyOutput, BatchAssembler, BatchSchedule, PakmanAssembler, PakmanConfig, ShardConfig,
};

const SHARD_SWEEP: [usize; 4] = [1, 2, 7, 32];
const THREAD_SWEEP: [usize; 3] = [1, 4, 8];

fn simulated_reads(length: usize, coverage: f64, seed: u64) -> Vec<SequencingRead> {
    let genome = ReferenceGenome::builder()
        .length(length)
        .seed(seed)
        .build()
        .unwrap();
    ReadSimulator::new(SequencerConfig {
        coverage,
        substitution_error_rate: 0.001,
        seed: seed + 1,
        ..SequencerConfig::default()
    })
    .simulate(&genome)
    .unwrap()
}

fn config(shards: usize, threads: usize) -> PakmanConfig {
    PakmanConfig {
        k: 21,
        min_kmer_count: 2,
        compaction_node_threshold: 10,
        threads,
        record_trace: true,
        shards: ShardConfig {
            shard_count: shards,
        },
        ..PakmanConfig::default()
    }
}

fn assemble(reads: &[SequencingRead], shards: usize, threads: usize) -> AssemblyOutput {
    PakmanAssembler::new(config(shards, threads))
        .assemble(reads)
        .unwrap()
}

#[test]
fn sharded_assembly_is_bit_identical_across_shard_and_thread_counts() {
    let reads = simulated_reads(8_000, 25.0, 0x54A2D);
    let reference = assemble(&reads, 1, 1);
    assert!(!reference.contigs.is_empty());
    assert!(
        reference.sharding.is_none(),
        "shard_count 1 stays single-graph"
    );

    for shards in SHARD_SWEEP {
        for threads in THREAD_SWEEP {
            let run = assemble(&reads, shards, threads);
            let what = format!("shards = {shards}, threads = {threads}");
            assert_eq!(run.contigs, reference.contigs, "contigs diverged: {what}");
            assert_eq!(run.stats, reference.stats, "stats diverged: {what}");
            assert_eq!(
                run.kmer_stats, reference.kmer_stats,
                "k-mer stats diverged: {what}"
            );
            assert_eq!(
                run.compaction, reference.compaction,
                "compaction stats diverged: {what}"
            );
            assert_eq!(run.trace, reference.trace, "trace diverged: {what}");
            if shards > 1 {
                let telemetry = run.sharding.expect("sharded runs record telemetry");
                assert_eq!(telemetry.shard_count, shards);
                assert_eq!(
                    telemetry.initial_alive_per_shard.iter().sum::<usize>(),
                    reference.compaction.initial_nodes,
                    "{what}"
                );
                assert_eq!(
                    telemetry.total_transfers(),
                    reference.compaction.total_transfers,
                    "every transfer goes through the mailbox: {what}"
                );
            }
        }
    }
}

#[test]
fn sharding_telemetry_is_deterministic() {
    // Telemetry is derived data, so it must be identical across thread counts
    // for a fixed shard count (where work lands depends on ownership, never on
    // scheduling).
    let reads = simulated_reads(8_000, 25.0, 0x54A2D);
    let reference = assemble(&reads, 7, 1).sharding.unwrap();
    for threads in [4usize, 8] {
        let telemetry = assemble(&reads, 7, threads).sharding.unwrap();
        assert_eq!(
            telemetry, reference,
            "telemetry diverged at threads = {threads}"
        );
    }
    // Sharded runs move real traffic across shards.
    assert!(reference.total_mailbox_bytes() > 0);
    assert!(reference.cross_shard_fraction() > 0.0);
}

#[test]
fn sharded_batched_pipelined_schedule_matches_single_graph_sequential() {
    // The stacked fast paths — owner-computes sharding composed with the k-deep
    // overlapped batch scheduler — must still reproduce the fully conservative
    // configuration (single graph, sequential schedule, one thread) bit for bit.
    let reads = simulated_reads(8_000, 25.0, 0xBA7C5);
    let reference = BatchAssembler::with_schedule(config(1, 1), 0.25, BatchSchedule::Sequential)
        .assemble(&reads)
        .unwrap();
    assert!(reference.batch_compaction.len() >= 2);

    for shards in [2usize, 7] {
        for threads in [1usize, 4] {
            let pipelined = BatchAssembler::with_schedule(
                config(shards, threads),
                0.25,
                BatchSchedule::Pipelined {
                    depth: 3,
                    max_inflight_bytes: None,
                },
            )
            .assemble(&reads)
            .unwrap();
            let what = format!("shards = {shards}, threads = {threads}");
            assert_eq!(
                pipelined.contigs, reference.contigs,
                "contigs diverged: {what}"
            );
            assert_eq!(pipelined.stats, reference.stats, "stats diverged: {what}");
            assert_eq!(
                pipelined.batch_compaction, reference.batch_compaction,
                "per-batch compaction diverged: {what}"
            );
            assert_eq!(
                pipelined.batch_traces, reference.batch_traces,
                "per-batch traces diverged: {what}"
            );
            // Every sharded batch surfaces its telemetry, in batch-index order.
            assert_eq!(
                pipelined.batch_sharding.len(),
                pipelined.batch_compaction.len(),
                "missing per-batch telemetry: {what}"
            );
            assert!(pipelined
                .batch_sharding
                .iter()
                .all(|t| t.shard_count == shards));
            assert!(reference.batch_sharding.is_empty());
        }
    }
}

#[test]
fn zero_kmer_shards_are_harmless_at_pipeline_level() {
    // A workload far smaller than the shard count: many shards own zero
    // k-mers. The run must warn (not panic) and still match the single-graph
    // output exactly.
    let reads = simulated_reads(2_000, 8.0, 0xE0E0);
    let small_config = |shards: usize| PakmanConfig {
        k: 15,
        min_kmer_count: 1,
        compaction_node_threshold: 0,
        threads: 2,
        record_trace: true,
        shards: ShardConfig {
            shard_count: shards,
        },
        ..PakmanConfig::default()
    };
    let reference = PakmanAssembler::new(small_config(1))
        .assemble(&reads)
        .unwrap();
    let sharded = PakmanAssembler::new(small_config(4096))
        .assemble(&reads)
        .unwrap();
    assert_eq!(sharded.contigs, reference.contigs);
    assert_eq!(sharded.stats, reference.stats);
    assert_eq!(sharded.compaction, reference.compaction);
    assert_eq!(sharded.trace, reference.trace);
    let telemetry = sharded.sharding.unwrap();
    assert_eq!(telemetry.shard_count, 4096);
    assert!(
        telemetry.initial_alive_per_shard.contains(&0),
        "with 4096 shards over a tiny graph, some shard owns zero k-mers"
    );
}
