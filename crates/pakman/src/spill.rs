//! External-memory spill machinery for the bucket-major k-mer counter.
//!
//! When counting runs under a [`crate::config::SpillConfig`] byte budget, the
//! counter flushes its largest resident buckets to disk as **sorted
//! packed-`u64` runs** and streams them back at the end through a k-way merge
//! fused with the same run-length count + prune as the in-memory path, so the
//! counted output is bit-identical at any budget (see DESIGN.md, "External
//! memory: spilled k-mer counting").
//!
//! # On-disk format
//!
//! A [`SpillStore`] owns one temporary directory holding one file per **disk
//! partition**. A k-mer belongs to the partition of its *owner* (k-1)-mer under
//! the frozen [`nmp_pak_genome::shard_of_packed`] hash — the same hash that
//! assigns MacroNodes to shards — so spill partitions align with shard
//! ownership for free (partition `p` holds exactly the k-mers shard `p` will
//! consume during construction). Each partition file is a sequence of
//! self-framing runs:
//!
//! ```text
//! run := count: u64 LE | count × (packed k-mer: u64 LE, ascending)
//! ```
//!
//! Framing is validated on read-back: a header that overruns the file, a short
//! read, or an out-of-order value yields [`PakmanError::Spill`] instead of a
//! silently wrong assembly.

use crate::error::PakmanError;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Telemetry of one external-memory counting run (recorded whenever
/// [`crate::config::SpillConfig`] engages the spill path, even if the workload
/// never actually overflowed the budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillTelemetry {
    /// The configured resident-byte budget.
    pub budget_bytes: u64,
    /// Total bytes written to spill files, including intermediate merge-pass
    /// output (0 when the workload fit the budget).
    pub bytes_spilled: u64,
    /// Number of sorted runs written across all partitions.
    pub runs_written: u64,
    /// k-way merge passes over spilled runs: intermediate fan-in reductions
    /// plus the final fused count+prune pass (0 when nothing spilled).
    pub merge_passes: u32,
    /// High-water mark of resident extracted k-mer bytes, as accounted by the
    /// counter's [`crate::memory::MemoryBudget`].
    pub peak_resident_bytes: u64,
    /// Number of owner-hash disk partitions (the shard count).
    pub partitions: usize,
}

/// One sorted run inside a partition file.
#[derive(Debug, Clone)]
pub(crate) struct Run {
    partition: usize,
    path: PathBuf,
    /// Byte offset of the run header within the file.
    offset: u64,
    /// Number of packed k-mers in the run.
    len: u64,
}

/// Aggregate I/O counters a [`SpillStore`] hands back when consumed.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpillIoStats {
    pub(crate) bytes_spilled: u64,
    pub(crate) runs_written: u64,
    pub(crate) merge_passes: u32,
}

/// Unique suffix for spill directories, so concurrent counters in one process
/// (e.g. pipelined batch fronts) never collide.
static SPILL_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn io_err(context: &str, path: &Path, err: std::io::Error) -> PakmanError {
    PakmanError::Spill {
        message: format!("{context} {}: {err}", path.display()),
    }
}

/// The owner-hash disk partition of a packed k-mer: the shard of its prefix
/// (k-1)-mer, exactly as [`crate::kmer_count::partition_counted_by_owner`]
/// assigns counted k-mers to shards.
#[inline]
fn partition_of(packed: u64, partitions: usize) -> usize {
    nmp_pak_genome::shard_of_packed(packed >> 2, partitions)
}

/// A temporary on-disk store of sorted spill runs, one file per owner-hash
/// partition. The backing directory is removed when the store is dropped.
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
    partitions: usize,
    runs: Vec<Run>,
    io: SpillIoStats,
}

impl SpillStore {
    /// Creates the store's temporary directory under [`std::env::temp_dir`].
    pub(crate) fn create(partitions: usize) -> Result<SpillStore, PakmanError> {
        let partitions = partitions.max(1);
        let dir = std::env::temp_dir().join(format!(
            "nmp-pak-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating spill directory", &dir, e))?;
        Ok(SpillStore {
            dir,
            partitions,
            runs: Vec::new(),
            io: SpillIoStats::default(),
        })
    }

    /// `true` once at least one run has been written.
    pub(crate) fn has_runs(&self) -> bool {
        !self.runs.is_empty()
    }

    fn partition_path(&self, partition: usize) -> PathBuf {
        self.dir.join(format!("part-{partition}.runs"))
    }

    /// Flushes one spill event: the selected resident buckets, which the caller
    /// passes **in ascending bucket order** so their concatenation is one
    /// globally sorted stream. The stream is split by owner hash and appended
    /// to each partition file as one new sorted run.
    pub(crate) fn flush_buckets(&mut self, buckets: &[&Vec<u64>]) -> Result<(), PakmanError> {
        debug_assert!(
            buckets
                .windows(2)
                .all(|w| w[0].last().zip(w[1].first()).is_none_or(|(a, b)| a <= b)),
            "flushed buckets must arrive in ascending value order"
        );
        let mut sizes = vec![0u64; self.partitions];
        for bucket in buckets {
            for &value in bucket.iter() {
                sizes[partition_of(value, self.partitions)] += 1;
            }
        }
        for (partition, &size) in sizes.iter().enumerate() {
            if size == 0 {
                continue;
            }
            let path = self.partition_path(partition);
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("opening spill partition", &path, e))?;
            let offset = file
                .metadata()
                .map_err(|e| io_err("inspecting spill partition", &path, e))?
                .len();
            let mut writer = BufWriter::new(file);
            writer
                .write_all(&size.to_le_bytes())
                .map_err(|e| io_err("writing run header to", &path, e))?;
            for bucket in buckets {
                for &value in bucket.iter() {
                    if partition_of(value, self.partitions) == partition {
                        writer
                            .write_all(&value.to_le_bytes())
                            .map_err(|e| io_err("writing run to", &path, e))?;
                    }
                }
            }
            writer
                .flush()
                .map_err(|e| io_err("flushing run to", &path, e))?;
            self.runs.push(Run {
                partition,
                path,
                offset,
                len: size,
            });
            self.io.runs_written += 1;
            self.io.bytes_spilled += 8 + size * 8;
        }
        Ok(())
    }

    /// Reduces every partition to at most `fan_in` runs by k-way merging its
    /// oldest runs into new (still sorted, still partition-local) runs appended
    /// to the same file. Intermediate merges never count or prune — only the
    /// final fused pass does — so duplicates survive until then and the counted
    /// output cannot depend on how many passes ran.
    fn reduce_runs(&mut self, fan_in: usize) -> Result<(), PakmanError> {
        let fan_in = fan_in.max(2);
        for partition in 0..self.partitions {
            loop {
                let indices: Vec<usize> = self
                    .runs
                    .iter()
                    .enumerate()
                    .filter(|(_, run)| run.partition == partition)
                    .map(|(i, _)| i)
                    .take(fan_in)
                    .collect();
                if indices.len() < fan_in
                    || self
                        .runs
                        .iter()
                        .filter(|r| r.partition == partition)
                        .count()
                        <= fan_in
                {
                    break;
                }
                let merged_len: u64 = indices.iter().map(|&i| self.runs[i].len).sum();
                let mut cursors = indices
                    .iter()
                    .map(|&i| RunCursor::open(&self.runs[i]))
                    .collect::<Result<Vec<_>, _>>()?;

                let path = self.partition_path(partition);
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_err("opening spill partition", &path, e))?;
                let offset = file
                    .metadata()
                    .map_err(|e| io_err("inspecting spill partition", &path, e))?
                    .len();
                let mut writer = BufWriter::new(file);
                writer
                    .write_all(&merged_len.to_le_bytes())
                    .map_err(|e| io_err("writing run header to", &path, e))?;
                let mut write_failure = None;
                kway_merge(&mut cursors, |value| {
                    if write_failure.is_none() {
                        if let Err(e) = writer.write_all(&value.to_le_bytes()) {
                            write_failure = Some(io_err("writing merged run to", &path, e));
                        }
                    }
                })?;
                if let Some(err) = write_failure {
                    return Err(err);
                }
                writer
                    .flush()
                    .map_err(|e| io_err("flushing merged run to", &path, e))?;

                // Retire the inputs (descending index so removals stay valid)
                // and register the merged run at the back of the queue.
                for &i in indices.iter().rev() {
                    self.runs.remove(i);
                }
                self.runs.push(Run {
                    partition,
                    path,
                    offset,
                    len: merged_len,
                });
                self.io.runs_written += 1;
                self.io.bytes_spilled += 8 + merged_len * 8;
                self.io.merge_passes += 1;
            }
        }
        Ok(())
    }

    /// Opens cursors over every remaining run, reducing each partition to at
    /// most `fan_in` runs first. The caller drives the final fused merge; the
    /// final pass is counted here so the telemetry always reports ≥ 1 pass when
    /// anything spilled.
    pub(crate) fn into_cursors(
        mut self,
        fan_in: usize,
    ) -> Result<(Vec<RunCursor>, SpillIoStats, SpillStore), PakmanError> {
        self.reduce_runs(fan_in)?;
        self.io.merge_passes += 1;
        let cursors = self
            .runs
            .iter()
            .map(RunCursor::open)
            .collect::<Result<Vec<_>, _>>()?;
        let io = self.io;
        // Hand the store back so its directory outlives the cursors.
        Ok((cursors, io, self))
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort cleanup; a leaked temp dir is not worth failing a run.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Buffered reader over one sorted run, validating framing and ordering.
#[derive(Debug)]
pub(crate) struct RunCursor {
    reader: BufReader<File>,
    path: PathBuf,
    remaining: u64,
    last: Option<u64>,
}

impl RunCursor {
    /// Opens the run, validating its header against the descriptor and the
    /// file's actual size.
    pub(crate) fn open(run: &Run) -> Result<RunCursor, PakmanError> {
        let file = File::open(&run.path).map_err(|e| io_err("opening spill run", &run.path, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("inspecting spill run", &run.path, e))?
            .len();
        let mut reader = BufReader::with_capacity(16 * 1024, file);
        reader
            .seek(SeekFrom::Start(run.offset))
            .map_err(|e| io_err("seeking spill run in", &run.path, e))?;
        let mut header = [0u8; 8];
        reader
            .read_exact(&mut header)
            .map_err(|e| io_err("reading run header from", &run.path, e))?;
        let count = u64::from_le_bytes(header);
        if count != run.len {
            return Err(PakmanError::Spill {
                message: format!(
                    "corrupt run header in {}: expected {} k-mers, found {count}",
                    run.path.display(),
                    run.len
                ),
            });
        }
        let end = run.offset + 8 + count.saturating_mul(8);
        if end > file_len {
            return Err(PakmanError::Spill {
                message: format!(
                    "truncated spill run in {}: needs {end} bytes, file has {file_len}",
                    run.path.display()
                ),
            });
        }
        Ok(RunCursor {
            reader,
            path: run.path.clone(),
            remaining: count,
            last: None,
        })
    }

    /// The next packed k-mer, or `None` at the end of the run.
    pub(crate) fn next(&mut self) -> Result<Option<u64>, PakmanError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut buf = [0u8; 8];
        self.reader
            .read_exact(&mut buf)
            .map_err(|e| io_err("reading spill run from", &self.path, e))?;
        let value = u64::from_le_bytes(buf);
        if self.last.is_some_and(|last| value < last) {
            return Err(PakmanError::Spill {
                message: format!(
                    "corrupt spill run in {}: values out of order ({} after {})",
                    self.path.display(),
                    value,
                    self.last.expect("checked above")
                ),
            });
        }
        self.last = Some(value);
        self.remaining -= 1;
        Ok(Some(value))
    }
}

/// K-way merges the sorted cursors, feeding the globally ascending value
/// stream to `emit`. Ties are broken by cursor index, which only affects the
/// order duplicates are emitted in — invisible after run-length counting.
pub(crate) fn kway_merge(
    cursors: &mut [RunCursor],
    mut emit: impl FnMut(u64),
) -> Result<(), PakmanError> {
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        BinaryHeap::with_capacity(cursors.len());
    for (i, cursor) in cursors.iter_mut().enumerate() {
        if let Some(value) = cursor.next()? {
            heap.push(std::cmp::Reverse((value, i)));
        }
    }
    while let Some(std::cmp::Reverse((value, i))) = heap.pop() {
        emit(value);
        if let Some(next) = cursors[i].next()? {
            heap.push(std::cmp::Reverse((next, i)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_bucket(values: &[u64]) -> Vec<u64> {
        let mut v = values.to_vec();
        v.sort_unstable();
        v
    }

    fn drain(cursors: &mut [RunCursor]) -> Result<Vec<u64>, PakmanError> {
        let mut out = Vec::new();
        kway_merge(cursors, |v| out.push(v))?;
        Ok(out)
    }

    #[test]
    fn round_trips_one_flush_through_the_merge() {
        let mut store = SpillStore::create(4).unwrap();
        let bucket = sorted_bucket(&[9, 1, 5, 5, 3, 7, 1]);
        store.flush_buckets(&[&bucket]).unwrap();
        assert!(store.has_runs());
        let (mut cursors, io, _store) = store.into_cursors(16).unwrap();
        assert_eq!(io.merge_passes, 1);
        assert!(io.bytes_spilled > 0);
        assert_eq!(
            drain(&mut cursors).unwrap(),
            sorted_bucket(&[9, 1, 5, 5, 3, 7, 1])
        );
    }

    #[test]
    fn multiple_flushes_merge_back_sorted_across_partitions() {
        let mut store = SpillStore::create(3).unwrap();
        for chunk in [[4u64, 40, 400], [2, 20, 200], [6, 60, 600]] {
            let bucket = sorted_bucket(&chunk);
            store.flush_buckets(&[&bucket]).unwrap();
        }
        let (mut cursors, _, _store) = store.into_cursors(16).unwrap();
        let merged = drain(&mut cursors).unwrap();
        assert_eq!(merged, sorted_bucket(&[4, 40, 400, 2, 20, 200, 6, 60, 600]));
    }

    #[test]
    fn narrow_fan_in_forces_intermediate_passes_without_changing_the_stream() {
        let mut store = SpillStore::create(2).unwrap();
        let mut expected = Vec::new();
        for i in 0..10u64 {
            let bucket = sorted_bucket(&[i, i + 100, i + 100, i + 200]);
            expected.extend_from_slice(&bucket);
            store.flush_buckets(&[&bucket]).unwrap();
        }
        expected.sort_unstable();
        let (mut cursors, io, _store) = store.into_cursors(2).unwrap();
        assert!(
            io.merge_passes > 1,
            "10 runs over fan-in 2 must take intermediate passes, got {}",
            io.merge_passes
        );
        assert_eq!(drain(&mut cursors).unwrap(), expected);
    }

    #[test]
    fn partitions_follow_the_owner_hash() {
        let mut store = SpillStore::create(8).unwrap();
        let bucket = sorted_bucket(&(0..500u64).map(|i| i * 97).collect::<Vec<_>>());
        store.flush_buckets(&[&bucket]).unwrap();
        for run in &store.runs {
            let mut cursor = RunCursor::open(run).unwrap();
            while let Some(value) = cursor.next().unwrap() {
                assert_eq!(partition_of(value, 8), run.partition);
            }
        }
    }

    #[test]
    fn truncated_run_file_is_detected() {
        let mut store = SpillStore::create(1).unwrap();
        let bucket = sorted_bucket(&(0..64u64).collect::<Vec<_>>());
        store.flush_buckets(&[&bucket]).unwrap();
        let run = store.runs[0].clone();
        // Chop the tail off the payload.
        let file = OpenOptions::new().write(true).open(&run.path).unwrap();
        file.set_len(8 + 16).unwrap();
        let err = RunCursor::open(&run).unwrap_err();
        assert!(matches!(err, PakmanError::Spill { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_header_is_detected() {
        let mut store = SpillStore::create(1).unwrap();
        let bucket = sorted_bucket(&[1, 2, 3]);
        store.flush_buckets(&[&bucket]).unwrap();
        let run = store.runs[0].clone();
        let mut file = OpenOptions::new().write(true).open(&run.path).unwrap();
        file.seek(SeekFrom::Start(run.offset)).unwrap();
        file.write_all(&u64::MAX.to_le_bytes()).unwrap();
        let err = RunCursor::open(&run).unwrap_err();
        assert!(err.to_string().contains("corrupt run header"), "{err}");
    }

    #[test]
    fn out_of_order_payload_is_detected() {
        let mut store = SpillStore::create(1).unwrap();
        let bucket = sorted_bucket(&[10, 20, 30]);
        store.flush_buckets(&[&bucket]).unwrap();
        let run = store.runs[0].clone();
        // Overwrite the middle value with something smaller than its predecessor.
        let mut file = OpenOptions::new().write(true).open(&run.path).unwrap();
        file.seek(SeekFrom::Start(run.offset + 8 + 8)).unwrap();
        file.write_all(&1u64.to_le_bytes()).unwrap();
        let mut cursor = RunCursor::open(&run).unwrap();
        assert_eq!(cursor.next().unwrap(), Some(10));
        let err = cursor.next().unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn store_drop_removes_the_spill_directory() {
        let store = SpillStore::create(2).unwrap();
        let dir = store.dir.clone();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
