//! The PaK-graph: the distributed de Bruijn graph expressed over MacroNodes
//! (assembly step C of Fig. 2).

use crate::kmer_count::CountedKmer;
use crate::macronode::MacroNode;
use crate::par::{parallel_merge_round, radix_sort_pairs};

use nmp_pak_genome::{Base, Kmer};

/// Sorted-rank slot index: maps a packed (k-1)-mer to its slot by binary search
/// over the ascending slot order the graph layout already guarantees, instead of
/// hashing every lookup (the seed paid SipHash on every TransferNode delivery).
///
/// A radix prefix table over the top bits of the packed key narrows each binary
/// search to one bucket — the "static MacroNode→DIMM mapping table" of §4.2 in
/// miniature. The structure is immutable after construction (invalidation clears
/// slots, never moves them), so lookups are lock-free and `Sync` for the parallel
/// compaction stages.
#[derive(Debug, Clone, Default)]
struct RankIndex {
    /// Packed (k-1)-mer of every slot, ascending; the position *is* the slot index.
    keys: Vec<u64>,
    /// `starts[p]..starts[p + 1]` is the key range whose top `bits` bits equal `p`.
    starts: Vec<u32>,
    /// Number of leading key bits indexing the prefix table.
    bits: u32,
    /// Total significant bits of a packed key (`2 * (k-1)`).
    key_bits: u32,
}

impl RankIndex {
    /// Builds the index over `keys`, which must be ascending packed (k-1)-mers of
    /// `k1_len` bases each.
    fn build(keys: Vec<u64>, k1_len: usize) -> RankIndex {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let key_bits = (2 * k1_len) as u32;
        // Size the prefix table to roughly one entry per key, capped at 2^16
        // buckets (256 KiB of u32s) and at the key width itself.
        let log2_len = usize::BITS - keys.len().leading_zeros();
        let bits = key_bits.min(16).min(log2_len);
        let mut starts = vec![0u32; (1usize << bits) + 1];
        for &key in &keys {
            starts[(key >> (key_bits - bits)) as usize + 1] += 1;
        }
        for p in 1..starts.len() {
            starts[p] += starts[p - 1];
        }
        RankIndex {
            keys,
            starts,
            bits,
            key_bits,
        }
    }

    /// The slot whose key equals `packed`, if present.
    #[inline]
    fn rank_of(&self, packed: u64) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        // Callers guarantee `packed` is a (k-1)-mer of the graph's own length, so
        // it fits in `key_bits` bits (index_of's length guard enforces this).
        debug_assert_eq!(packed >> self.key_bits, 0);
        let bucket = (packed >> (self.key_bits - self.bits)) as usize;
        let lo = self.starts[bucket] as usize;
        let hi = self.starts[bucket + 1] as usize;
        self.keys[lo..hi]
            .binary_search(&packed)
            .ok()
            .map(|off| lo + off)
    }
}

/// The PaK-graph: every MacroNode keyed by its (k-1)-mer.
///
/// Nodes are stored in a slot vector ordered by ascending (k-1)-mer — the same layout
/// the paper assumes for its static MacroNode→DIMM mapping table ("MacroNodes are
/// stored in ascending (k-1)-mer order across DIMMs", §4.2). Invalidation during
/// compaction clears a slot but never reuses it (the paper postpones deletion until
/// compaction completes, §4.5), so slot indices are stable identifiers that the memory
/// traces and the hardware model can use as addresses.
///
/// Because the layout is sorted, the slot of a (k-1)-mer is its *rank*: lookups are
/// a bucketed binary search over packed `u64` keys ([`RankIndex`]) — no hashing and
/// no per-entry heap allocation on the compaction routing path. See `DESIGN.md`.
///
/// Nodes live inline in the slot vector (a `MacroNode` is one `Kmer` plus a `Vec`
/// handle, 40 bytes): there is no per-node pointer allocation to pay during
/// construction and no pointer chase during the parallel invalidation scan, which
/// is this implementation's reading of §4.5's "efficient memory management".
#[derive(Debug, Clone, Default)]
pub struct PakGraph {
    slots: Vec<Option<MacroNode>>,
    index: RankIndex,
    k: usize,
}

impl PakGraph {
    /// Builds the PaK-graph from counted k-mers (MacroNode construction and wiring),
    /// parallelized over `threads` worker threads.
    ///
    /// Every k-mer `b₀ b₁ … b_{k-1}` with count `c` contributes:
    /// * prefix `b₀` (count `c`) to the node of its suffix (k-1)-mer `b₁ … b_{k-1}`, and
    /// * suffix `b_{k-1}` (count `c`) to the node of its prefix (k-1)-mer `b₀ … b_{k-2}`
    ///
    /// exactly as in Fig. 3(b).
    ///
    /// The build is a linear single pass over the sorted counted k-mers: the
    /// suffix-extension stream is consumed in place (its node key `packed >> 2`
    /// inherits the input order), the prefix-extension stream is materialized into
    /// per-thread vectors, sorted, and merged, and one merge-scan over both streams
    /// emits the MacroNodes in ascending (k-1)-mer order. The output is bit-identical
    /// at every thread count.
    pub fn from_counted_kmers(counted: &[CountedKmer], k: usize, threads: usize) -> PakGraph {
        debug_assert!(k >= 2, "k = {k} must be at least 2 to form (k-1)-mers");
        let k1_len = k - 1;
        let threads = threads.clamp(1, counted.len().max(1));

        // The prefix-extension stream: one record per k-mer, its suffix (k-1)-mer
        // key and first base packed into a single machine word (`key << 2 | base`,
        // unique per record) with the count as payload. Built per thread into
        // pre-allocated vectors (§4.5 (a)+(b)), radix-sorted, then merged pairwise
        // in parallel.
        let k1_shift = 2 * k1_len;
        let k1_mask = (1u64 << k1_shift) - 1;
        let chunk_size = counted.len().div_ceil(threads).max(1);
        let mut runs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chunk in counted.chunks(chunk_size) {
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(u64, u64)> = Vec::with_capacity(chunk.len());
                    for ck in chunk {
                        let packed = ck.kmer.packed();
                        let first_base = packed >> k1_shift;
                        local.push((((packed & k1_mask) << 2) | first_base, ck.count as u64));
                    }
                    radix_sort_pairs(&mut local, k1_shift as u32 + 2);
                    local
                }));
            }
            for handle in handles {
                runs.push(handle.join().expect("prefix-record worker panicked"));
            }
        });
        while runs.len() > 1 {
            runs = parallel_merge_round(runs);
        }
        let prefix_records = runs.pop().unwrap_or_default();

        // Merge-scan both streams into nodes, split across threads at node-key
        // boundaries so each segment builds a disjoint, contiguous slot range.
        let cuts = node_split_points(&prefix_records, counted, threads);
        let mut segments: Vec<(Vec<u64>, Vec<Option<MacroNode>>)> =
            Vec::with_capacity(cuts.len() - 1);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(cuts.len() - 1);
            for w in cuts.windows(2) {
                let pr = &prefix_records[w[0].0..w[1].0];
                let sf = &counted[w[0].1..w[1].1];
                handles.push(scope.spawn(move || build_segment(pr, sf, k1_len)));
            }
            for handle in handles {
                segments.push(handle.join().expect("node-build worker panicked"));
            }
        });

        let total: usize = segments.iter().map(|(keys, _)| keys.len()).sum();
        let mut keys = Vec::with_capacity(total);
        let mut slots = Vec::with_capacity(total);
        for (seg_keys, seg_slots) in segments {
            keys.extend(seg_keys);
            slots.extend(seg_slots);
        }
        PakGraph {
            slots,
            index: RankIndex::build(keys, k1_len),
            k,
        }
    }

    /// Builds a graph directly from its sorted parts: `keys[i]` is the packed
    /// (k-1)-mer of `slots[i]`, ascending. Crate-internal — the sharded builder
    /// assembles per-shard graphs from pre-partitioned streams, and the sharded
    /// compactor reconstitutes the global graph (dead slots included) without
    /// re-sorting.
    pub(crate) fn from_parts(keys: Vec<u64>, slots: Vec<Option<MacroNode>>, k: usize) -> PakGraph {
        debug_assert!(k >= 2, "k = {k} must be at least 2 to form (k-1)-mers");
        debug_assert_eq!(keys.len(), slots.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        PakGraph {
            slots,
            index: RankIndex::build(keys, k - 1),
            k,
        }
    }

    /// The packed (k-1)-mer key of every slot, ascending (the slot order).
    /// Crate-internal: the sharded layer derives its global rank mapping from
    /// the per-shard key vectors.
    pub(crate) fn slot_keys(&self) -> &[u64] {
        &self.index.keys
    }

    /// Builds a graph from already-constructed MacroNodes (used when merging batches).
    /// Nodes are re-sorted into ascending (k-1)-mer order.
    pub fn from_nodes(mut nodes: Vec<MacroNode>, k: usize) -> PakGraph {
        debug_assert!(k >= 2, "k = {k} must be at least 2 to form (k-1)-mers");
        nodes.sort_by_key(MacroNode::k1mer);
        let mut keys = Vec::with_capacity(nodes.len());
        let mut slots = Vec::with_capacity(nodes.len());
        for node in nodes {
            keys.push(node.k1mer().packed());
            slots.push(Some(node));
        }
        PakGraph {
            slots,
            index: RankIndex::build(keys, k - 1),
            k,
        }
    }

    /// The k-mer length this graph was built for (the (k-1)-mers are one shorter).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of slots ever allocated (alive + invalidated).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of alive (non-invalidated) MacroNodes.
    pub fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` if the graph has no alive nodes.
    pub fn is_empty(&self) -> bool {
        self.alive_count() == 0
    }

    /// The slot index of the node with the given (k-1)-mer, if it is alive.
    pub fn index_of(&self, k1mer: &Kmer) -> Option<usize> {
        if k1mer.k() + 1 != self.k {
            return None;
        }
        let idx = self.index.rank_of(k1mer.packed())?;
        self.slots[idx].as_ref().map(|_| idx)
    }

    /// `true` if a node with this (k-1)-mer is alive.
    pub fn contains(&self, k1mer: &Kmer) -> bool {
        self.index_of(k1mer).is_some()
    }

    /// The alive node at `slot`, if any.
    pub fn node(&self, slot: usize) -> Option<&MacroNode> {
        self.slots.get(slot)?.as_ref()
    }

    /// Mutable access to the alive node at `slot`, if any.
    pub fn node_mut(&mut self, slot: usize) -> Option<&mut MacroNode> {
        self.slots.get_mut(slot)?.as_mut()
    }

    /// Mutable view of the raw slot vector. Crate-internal: the parallel P3
    /// update splits this into disjoint contiguous destination shards
    /// (`split_at_mut`) so scoped threads can apply TransferNodes to different
    /// slot ranges concurrently without locks.
    pub(crate) fn slots_mut(&mut self) -> &mut [Option<MacroNode>] {
        &mut self.slots
    }

    /// The alive node with the given (k-1)-mer.
    pub fn node_by_k1mer(&self, k1mer: &Kmer) -> Option<&MacroNode> {
        self.node(self.index_of(k1mer)?)
    }

    /// Invalidates (removes) the node at `slot`, returning it. The slot is left empty;
    /// physical deletion is deferred, matching §4.5.
    pub fn invalidate(&mut self, slot: usize) -> Option<MacroNode> {
        self.slots.get_mut(slot)?.take()
    }

    /// Iterates over `(slot, node)` for every alive node.
    pub fn iter_alive(&self) -> impl Iterator<Item = (usize, &MacroNode)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (i, n)))
    }

    /// Slot indices of all alive nodes.
    pub fn alive_slots(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    /// Sum of [`MacroNode::size_bytes`] over alive nodes.
    pub fn total_size_bytes(&self) -> usize {
        self.iter_alive().map(|(_, n)| n.size_bytes()).sum()
    }

    /// Collects the alive nodes into a vector (consuming the graph).
    pub fn into_nodes(self) -> Vec<MacroNode> {
        self.slots.into_iter().flatten().collect()
    }

    /// Consumes the graph into its raw slot vector (dead slots included).
    /// Crate-internal: the sharded layer stitches per-shard slot vectors back
    /// into the exact global layout.
    pub(crate) fn into_slots(self) -> Vec<Option<MacroNode>> {
        self.slots
    }

    /// Total number of graph edges (distinct suffix extensions over alive nodes).
    pub fn edge_count(&self) -> usize {
        self.iter_alive()
            .map(|(_, n)| n.suffix_extensions().len())
            .sum()
    }
}

/// Splits the node-build merge-scan over `prefix_records` (keyed by `.0 >> 2`)
/// and the suffix stream `counted` (keyed by `kmer.packed() >> 2`) into up to
/// `parts` segments cut at node-key boundaries, so no (k-1)-mer's records straddle
/// two segments and concatenating the per-segment outputs in order reproduces the
/// serial scan exactly, whatever the thread count.
fn node_split_points(
    prefix_records: &[(u64, u64)],
    counted: &[CountedKmer],
    parts: usize,
) -> Vec<(usize, usize)> {
    let suffix_key = |ck: &CountedKmer| ck.kmer.packed() >> 2;
    let mut cuts = vec![(0usize, 0usize)];
    if parts > 1 {
        let splitters: Vec<u64> = if prefix_records.len() >= counted.len() {
            (1..parts)
                .map(|s| s * prefix_records.len() / parts)
                .filter(|&i| i > 0 && i < prefix_records.len())
                .map(|i| prefix_records[i].0 >> 2)
                .collect()
        } else {
            (1..parts)
                .map(|s| s * counted.len() / parts)
                .filter(|&i| i > 0 && i < counted.len())
                .map(|i| suffix_key(&counted[i]))
                .collect()
        };
        let mut last = None;
        for key in splitters {
            if last == Some(key) {
                continue;
            }
            last = Some(key);
            let cut = (
                prefix_records.partition_point(|r| r.0 >> 2 < key),
                counted.partition_point(|ck| suffix_key(ck) < key),
            );
            if cut != *cuts.last().expect("cuts is non-empty") {
                cuts.push(cut);
            }
        }
    }
    cuts.push((prefix_records.len(), counted.len()));
    cuts
}

/// Builds the MacroNodes of one node-key segment: a linear merge-scan over the
/// sorted prefix-extension records and the suffix-extension stream, accumulating
/// per-base counts in fixed `[u32; 4]` arrays (no map, no per-entry allocation).
/// Crate-internal: the sharded builder runs one segment per shard over the
/// owner-partitioned streams.
pub(crate) fn build_segment(
    prefix_records: &[(u64, u64)],
    counted: &[CountedKmer],
    k1_len: usize,
) -> (Vec<u64>, Vec<Option<MacroNode>>) {
    let suffix_key = |ck: &CountedKmer| ck.kmer.packed() >> 2;
    let mut keys = Vec::with_capacity(prefix_records.len().max(counted.len()));
    let mut slots: Vec<Option<MacroNode>> = Vec::with_capacity(keys.capacity());

    let (mut i, mut j) = (0usize, 0usize);
    while i < prefix_records.len() || j < counted.len() {
        let key = match (prefix_records.get(i), counted.get(j)) {
            (Some(&(rec, _)), Some(ck)) => (rec >> 2).min(suffix_key(ck)),
            (Some(&(rec, _)), None) => rec >> 2,
            (None, Some(ck)) => suffix_key(ck),
            (None, None) => unreachable!("loop condition guarantees one side remains"),
        };

        let mut prefixes = [0u32; 4];
        while let Some(&(rec, count)) = prefix_records.get(i) {
            if rec >> 2 != key {
                break;
            }
            prefixes[(rec & 0b11) as usize] += count as u32;
            i += 1;
        }
        let mut suffixes = [0u32; 4];
        while let Some(ck) = counted.get(j) {
            if suffix_key(ck) != key {
                break;
            }
            suffixes[(ck.kmer.packed() & 0b11) as usize] += ck.count;
            j += 1;
        }

        let nonzero = |counts: &[u32; 4]| counts.iter().filter(|&&c| c > 0).count();
        let node = if nonzero(&prefixes) == 1 && nonzero(&suffixes) == 1 {
            // 1-in / 1-out chain node: skip the general wiring machinery.
            let (pb, pc) = first_extension(prefixes);
            let (sb, sc) = first_extension(suffixes);
            MacroNode::single_through(Kmer::from_packed(key, k1_len), pb, pc, sb, sc)
        } else {
            MacroNode::from_extensions(
                Kmer::from_packed(key, k1_len),
                extension_list(prefixes),
                extension_list(suffixes),
            )
        };
        keys.push(key);
        slots.push(Some(node));
    }
    (keys, slots)
}

/// The single nonzero entry of a per-base accumulator (caller guarantees there is
/// exactly one).
fn first_extension(counts: [u32; 4]) -> (Base, u32) {
    for (code, &count) in counts.iter().enumerate() {
        if count > 0 {
            return (Base::from_code(code as u8), count);
        }
    }
    unreachable!("caller checked for exactly one nonzero extension")
}

/// Converts per-base accumulator counts into the `(Base, count)` list
/// [`MacroNode::from_extensions`] expects, in ascending base-code order — the same
/// order the k-mers contributing each extension appear in the sorted counted
/// stream, which keeps the wiring (and therefore the whole pipeline) bit-identical
/// to a one-kmer-at-a-time build.
fn extension_list(counts: [u32; 4]) -> Vec<(Base, u32)> {
    let mut out = Vec::with_capacity(counts.iter().filter(|&&c| c > 0).count());
    for (code, &count) in counts.iter().enumerate() {
        if count > 0 {
            out.push((Base::from_code(code as u8), count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::{DnaString, SequencingRead};

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k, 1)
    }

    #[test]
    fn single_kmer_creates_two_macronodes() {
        // Fig. 3(b): k-mer GTTAC creates node TTAC (prefix G) and node GTTA (suffix C).
        let graph = graph_from_reads(&["GTTAC"], 5);
        assert_eq!(graph.alive_count(), 2);
        let gtta = graph
            .node_by_k1mer(&Kmer::from_ascii("GTTA").unwrap())
            .expect("GTTA node exists");
        assert_eq!(gtta.suffix_extensions()[0].0.to_string(), "C");
        let ttac = graph
            .node_by_k1mer(&Kmer::from_ascii("TTAC").unwrap())
            .expect("TTAC node exists");
        assert_eq!(ttac.prefix_extensions()[0].0.to_string(), "G");
    }

    #[test]
    fn linear_read_creates_chain_of_nodes() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        // (k-1)-mers: ACGT, CGTA, GTAC, TACC, ACCT, CCTG → 6 nodes.
        assert_eq!(graph.alive_count(), 6);
        // Interior nodes have exactly one predecessor and one successor.
        let interior = graph
            .node_by_k1mer(&Kmer::from_ascii("GTAC").unwrap())
            .unwrap();
        assert_eq!(interior.predecessor_k1mers().len(), 1);
        assert_eq!(interior.successor_k1mers().len(), 1);
    }

    #[test]
    fn slots_are_in_ascending_k1mer_order() {
        let graph = graph_from_reads(&["ACGTACCTGTTGAC"], 6);
        let k1mers: Vec<Kmer> = graph.iter_alive().map(|(_, n)| n.k1mer()).collect();
        for pair in k1mers.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // index_of agrees with slot positions.
        for (slot, node) in graph.iter_alive() {
            assert_eq!(graph.index_of(&node.k1mer()), Some(slot));
        }
    }

    #[test]
    fn construction_is_identical_across_thread_counts() {
        let reads = &[
            "ACGTACCTGATCAGTTGCAACGGTTACCAGT",
            "GGGCCCAAATTTACGTAGACGTACCTGATCA",
        ];
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 7,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        let reference = PakGraph::from_counted_kmers(&counted, 7, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = PakGraph::from_counted_kmers(&counted, 7, threads);
            assert_eq!(parallel.slot_count(), reference.slot_count());
            for slot in 0..reference.slot_count() {
                assert_eq!(
                    parallel.node(slot),
                    reference.node(slot),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn lookups_reject_wrong_length_k1mers() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        // A 3-mer that prefixes an existing 4-mer key must not alias it.
        assert!(!graph.contains(&Kmer::from_ascii("ACG").unwrap()));
        assert!(!graph.contains(&Kmer::from_ascii("ACGTA").unwrap()));
    }

    #[test]
    fn branching_read_creates_multi_extension_node() {
        // Two reads diverging after GTCA: GTCAT and GTCAG (plus shared AGTCA context).
        let graph = graph_from_reads(&["AGTCAT", "AGTCAG"], 5);
        let node = graph
            .node_by_k1mer(&Kmer::from_ascii("GTCA").unwrap())
            .unwrap();
        assert_eq!(node.suffix_extensions().len(), 2);
        assert_eq!(node.prefix_extensions().len(), 1);
        assert_eq!(node.prefix_extensions()[0].1, 2);
    }

    #[test]
    fn invalidate_clears_slot_but_keeps_layout() {
        let mut graph = graph_from_reads(&["ACGTACCTG"], 5);
        let total_slots = graph.slot_count();
        let victim = graph.alive_slots()[2];
        let removed = graph.invalidate(victim).expect("node existed");
        assert_eq!(graph.alive_count(), 5);
        assert_eq!(graph.slot_count(), total_slots);
        assert!(graph.node(victim).is_none());
        assert!(!graph.contains(&removed.k1mer()));
        // Double invalidation returns None.
        assert!(graph.invalidate(victim).is_none());
    }

    #[test]
    fn from_nodes_round_trips() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        let k = graph.k();
        let count = graph.alive_count();
        let rebuilt = PakGraph::from_nodes(graph.into_nodes(), k);
        assert_eq!(rebuilt.alive_count(), count);
        let k1mers: Vec<Kmer> = rebuilt.iter_alive().map(|(_, n)| n.k1mer()).collect();
        for pair in k1mers.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn size_and_edge_statistics() {
        let graph = graph_from_reads(&["ACGTACCTGAC", "ACGTACCTGAC"], 5);
        assert!(graph.total_size_bytes() > 0);
        assert!(graph.edge_count() > 0);
        assert!(!graph.is_empty());
    }

    #[test]
    fn rank_index_handles_empty_and_dense_key_sets() {
        let empty = RankIndex::build(Vec::new(), 4);
        assert_eq!(empty.rank_of(0), None);
        assert!(empty.keys.is_empty());

        // Every even 2-mer key: buckets are dense and misses sit between hits.
        let keys: Vec<u64> = (0..16).filter(|k| k % 2 == 0).collect();
        let index = RankIndex::build(keys, 2);
        for key in 0..16u64 {
            if key % 2 == 0 {
                assert_eq!(index.rank_of(key), Some(key as usize / 2));
            } else {
                assert_eq!(index.rank_of(key), None);
            }
        }
    }
}
