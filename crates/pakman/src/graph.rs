//! The PaK-graph: the distributed de Bruijn graph expressed over MacroNodes
//! (assembly step C of Fig. 2).

use crate::kmer_count::CountedKmer;
use crate::macronode::MacroNode;
use std::collections::BTreeMap;
use std::collections::HashMap;

use nmp_pak_genome::{Base, Kmer};

/// The PaK-graph: every MacroNode keyed by its (k-1)-mer.
///
/// Nodes are stored in a slot vector ordered by ascending (k-1)-mer — the same layout
/// the paper assumes for its static MacroNode→DIMM mapping table ("MacroNodes are
/// stored in ascending (k-1)-mer order across DIMMs", §4.2). Invalidation during
/// compaction clears a slot but never reuses it (the paper postpones deletion until
/// compaction completes, §4.5), so slot indices are stable identifiers that the memory
/// traces and the hardware model can use as addresses.
///
/// Following §4.5's "efficient memory management", nodes are boxed so the map stores
/// pointers rather than values, avoiding struct copies when nodes are moved.
#[derive(Debug, Clone, Default)]
pub struct PakGraph {
    slots: Vec<Option<Box<MacroNode>>>,
    index: HashMap<Kmer, usize>,
    k: usize,
}

impl PakGraph {
    /// Builds the PaK-graph from counted k-mers (MacroNode construction and wiring).
    ///
    /// Every k-mer `b₀ b₁ … b_{k-1}` with count `c` contributes:
    /// * prefix `b₀` (count `c`) to the node of its suffix (k-1)-mer `b₁ … b_{k-1}`, and
    /// * suffix `b_{k-1}` (count `c`) to the node of its prefix (k-1)-mer `b₀ … b_{k-2}`
    ///
    /// exactly as in Fig. 3(b).
    pub fn from_counted_kmers(counted: &[CountedKmer], k: usize) -> PakGraph {
        // Accumulate single-base extensions per (k-1)-mer.
        #[derive(Default)]
        struct Pending {
            prefixes: Vec<(Base, u32)>,
            suffixes: Vec<(Base, u32)>,
        }
        fn bump(list: &mut Vec<(Base, u32)>, base: Base, count: u32) {
            match list.iter_mut().find(|(b, _)| *b == base) {
                Some((_, c)) => *c += count,
                None => list.push((base, count)),
            }
        }

        let mut pending: BTreeMap<Kmer, Pending> = BTreeMap::new();
        for ck in counted {
            let kmer = ck.kmer;
            let prefix_node = kmer.prefix_k1();
            let suffix_node = kmer.suffix_k1();
            bump(
                &mut pending.entry(suffix_node).or_default().prefixes,
                kmer.first_base(),
                ck.count,
            );
            bump(
                &mut pending.entry(prefix_node).or_default().suffixes,
                kmer.last_base(),
                ck.count,
            );
        }

        // BTreeMap iteration order is ascending (k-1)-mer order: slot index == rank.
        let mut slots = Vec::with_capacity(pending.len());
        let mut index = HashMap::with_capacity(pending.len());
        for (k1mer, p) in pending {
            let node = MacroNode::from_extensions(k1mer, p.prefixes, p.suffixes);
            index.insert(k1mer, slots.len());
            slots.push(Some(Box::new(node)));
        }
        PakGraph { slots, index, k }
    }

    /// Builds a graph from already-constructed MacroNodes (used when merging batches).
    /// Nodes are re-sorted into ascending (k-1)-mer order.
    pub fn from_nodes(mut nodes: Vec<MacroNode>, k: usize) -> PakGraph {
        nodes.sort_by_key(MacroNode::k1mer);
        let mut slots = Vec::with_capacity(nodes.len());
        let mut index = HashMap::with_capacity(nodes.len());
        for node in nodes {
            index.insert(node.k1mer(), slots.len());
            slots.push(Some(Box::new(node)));
        }
        PakGraph { slots, index, k }
    }

    /// The k-mer length this graph was built for (the (k-1)-mers are one shorter).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of slots ever allocated (alive + invalidated).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of alive (non-invalidated) MacroNodes.
    pub fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` if the graph has no alive nodes.
    pub fn is_empty(&self) -> bool {
        self.alive_count() == 0
    }

    /// The slot index of the node with the given (k-1)-mer, if it is alive.
    pub fn index_of(&self, k1mer: &Kmer) -> Option<usize> {
        let idx = *self.index.get(k1mer)?;
        self.slots[idx].as_ref().map(|_| idx)
    }

    /// `true` if a node with this (k-1)-mer is alive.
    pub fn contains(&self, k1mer: &Kmer) -> bool {
        self.index_of(k1mer).is_some()
    }

    /// The alive node at `slot`, if any.
    pub fn node(&self, slot: usize) -> Option<&MacroNode> {
        self.slots.get(slot)?.as_deref()
    }

    /// Mutable access to the alive node at `slot`, if any.
    pub fn node_mut(&mut self, slot: usize) -> Option<&mut MacroNode> {
        self.slots.get_mut(slot)?.as_deref_mut()
    }

    /// The alive node with the given (k-1)-mer.
    pub fn node_by_k1mer(&self, k1mer: &Kmer) -> Option<&MacroNode> {
        self.node(self.index_of(k1mer)?)
    }

    /// Invalidates (removes) the node at `slot`, returning it. The slot is left empty;
    /// physical deletion is deferred, matching §4.5.
    pub fn invalidate(&mut self, slot: usize) -> Option<Box<MacroNode>> {
        self.slots.get_mut(slot)?.take()
    }

    /// Iterates over `(slot, node)` for every alive node.
    pub fn iter_alive(&self) -> impl Iterator<Item = (usize, &MacroNode)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|n| (i, n)))
    }

    /// Slot indices of all alive nodes.
    pub fn alive_slots(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    /// Sum of [`MacroNode::size_bytes`] over alive nodes.
    pub fn total_size_bytes(&self) -> usize {
        self.iter_alive().map(|(_, n)| n.size_bytes()).sum()
    }

    /// Collects the alive nodes into a vector (consuming the graph).
    pub fn into_nodes(self) -> Vec<MacroNode> {
        self.slots.into_iter().flatten().map(|b| *b).collect()
    }

    /// Total number of graph edges (distinct suffix extensions over alive nodes).
    pub fn edge_count(&self) -> usize {
        self.iter_alive()
            .map(|(_, n)| n.suffix_extensions().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use nmp_pak_genome::{DnaString, SequencingRead};

    fn graph_from_reads(reads: &[&str], k: usize) -> PakGraph {
        let reads: Vec<SequencingRead> = reads
            .iter()
            .enumerate()
            .map(|(i, s)| SequencingRead::new(format!("r{i}"), s.parse::<DnaString>().unwrap()))
            .collect();
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig { k, min_count: 1, threads: 1 },
        )
        .unwrap();
        PakGraph::from_counted_kmers(&counted, k)
    }

    #[test]
    fn single_kmer_creates_two_macronodes() {
        // Fig. 3(b): k-mer GTTAC creates node TTAC (prefix G) and node GTTA (suffix C).
        let graph = graph_from_reads(&["GTTAC"], 5);
        assert_eq!(graph.alive_count(), 2);
        let gtta = graph
            .node_by_k1mer(&Kmer::from_ascii("GTTA").unwrap())
            .expect("GTTA node exists");
        assert_eq!(gtta.suffix_extensions()[0].0.to_string(), "C");
        let ttac = graph
            .node_by_k1mer(&Kmer::from_ascii("TTAC").unwrap())
            .expect("TTAC node exists");
        assert_eq!(ttac.prefix_extensions()[0].0.to_string(), "G");
    }

    #[test]
    fn linear_read_creates_chain_of_nodes() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        // (k-1)-mers: ACGT, CGTA, GTAC, TACC, ACCT, CCTG → 6 nodes.
        assert_eq!(graph.alive_count(), 6);
        // Interior nodes have exactly one predecessor and one successor.
        let interior = graph
            .node_by_k1mer(&Kmer::from_ascii("GTAC").unwrap())
            .unwrap();
        assert_eq!(interior.predecessor_k1mers().len(), 1);
        assert_eq!(interior.successor_k1mers().len(), 1);
    }

    #[test]
    fn slots_are_in_ascending_k1mer_order() {
        let graph = graph_from_reads(&["ACGTACCTGTTGAC"], 6);
        let k1mers: Vec<Kmer> = graph.iter_alive().map(|(_, n)| n.k1mer()).collect();
        for pair in k1mers.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // index_of agrees with slot positions.
        for (slot, node) in graph.iter_alive() {
            assert_eq!(graph.index_of(&node.k1mer()), Some(slot));
        }
    }

    #[test]
    fn branching_read_creates_multi_extension_node() {
        // Two reads diverging after GTCA: GTCAT and GTCAG (plus shared AGTCA context).
        let graph = graph_from_reads(&["AGTCAT", "AGTCAG"], 5);
        let node = graph
            .node_by_k1mer(&Kmer::from_ascii("GTCA").unwrap())
            .unwrap();
        assert_eq!(node.suffix_extensions().len(), 2);
        assert_eq!(node.prefix_extensions().len(), 1);
        assert_eq!(node.prefix_extensions()[0].1, 2);
    }

    #[test]
    fn invalidate_clears_slot_but_keeps_layout() {
        let mut graph = graph_from_reads(&["ACGTACCTG"], 5);
        let total_slots = graph.slot_count();
        let victim = graph.alive_slots()[2];
        let removed = graph.invalidate(victim).expect("node existed");
        assert_eq!(graph.alive_count(), 5);
        assert_eq!(graph.slot_count(), total_slots);
        assert!(graph.node(victim).is_none());
        assert!(!graph.contains(&removed.k1mer()));
        // Double invalidation returns None.
        assert!(graph.invalidate(victim).is_none());
    }

    #[test]
    fn from_nodes_round_trips() {
        let graph = graph_from_reads(&["ACGTACCTG"], 5);
        let k = graph.k();
        let count = graph.alive_count();
        let rebuilt = PakGraph::from_nodes(graph.into_nodes(), k);
        assert_eq!(rebuilt.alive_count(), count);
        let k1mers: Vec<Kmer> = rebuilt.iter_alive().map(|(_, n)| n.k1mer()).collect();
        for pair in k1mers.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn size_and_edge_statistics() {
        let graph = graph_from_reads(&["ACGTACCTGAC", "ACGTACCTGAC"], 5);
        assert!(graph.total_size_bytes() > 0);
        assert!(graph.edge_count() > 0);
        assert!(!graph.is_empty());
    }
}
