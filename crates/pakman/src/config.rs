//! Assembler configuration.

use crate::error::PakmanError;
use nmp_pak_genome::kmer::MAX_K;
use serde::{Deserialize, Serialize};

/// Which P1 scan strategy Iterative Compaction uses.
///
/// Both modes are **bit-identical** — statistics, trace, and contigs — at every
/// thread count; they differ only in how much work stage P1 performs. See the
/// "frontier invariant" section of DESIGN.md for why skipping clean nodes cannot
/// change any output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CompactionMode {
    /// Re-evaluate the invalidation predicate for every alive node every
    /// iteration — the pre-frontier behaviour, kept as a benchmark baseline and
    /// an equivalence cross-check.
    FullScan,
    /// After iteration 0's full scan, re-evaluate only nodes whose neighbourhood
    /// could have changed: the destinations of the previous iteration's
    /// TransferNodes (every other alive node's through-paths are untouched, so
    /// its cached "not a target" verdict still stands).
    #[default]
    Frontier,
}

/// How the sharded compaction engine schedules shard iterations.
///
/// [`ShardSchedule::Lockstep`] keeps the original barrier semantics: every
/// shard runs iteration *i* before any shard starts iteration *i + 1*, and the
/// full outcome — statistics, trace, telemetry — is bit-identical to the
/// single-graph engine. [`ShardSchedule::Async`] drops the thread barrier:
/// shards run as queued tasks over a worker pool, each advancing its own wave
/// counter and flushing mailbox lanes as soon as its P3 finishes, with wave
/// completion counted through a shared ledger instead of joined — so quiescent
/// shards cost O(1) per wave and a straggler no longer serializes the pool
/// through per-phase joins. Async output follows the *verified-equivalent*
/// contract (see DESIGN.md): final contigs, the compacted graph, statistics
/// and the mailbox flush ledger are byte-identical to lock-step (transfers are
/// applied at wave boundaries in canonical global-slot order), while
/// scheduling telemetry (per-iteration stats, the profile, per-round timing)
/// is allowed to differ. `compaction_node_threshold` and the iteration cap are
/// applied against the global census at wave boundaries, exactly as under the
/// barrier. Trace recording (`record_trace`) forces lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShardSchedule {
    /// Barriered iterations; bit-identical to the single-graph engine.
    #[default]
    Lockstep,
    /// Per-shard iteration counters with eager mailbox flushes; final output
    /// verified equivalent to lock-step, per-iteration telemetry may differ.
    Async,
}

/// Sharded subgraph execution knob: how many owner-computes shards the
/// PaK-graph is partitioned into.
///
/// Every (k-1)-mer has one *owner* shard (a stable hash of its packed code,
/// [`nmp_pak_genome::shard_of_packed`]); construction and compaction run
/// per-shard with boundary traffic exchanged through the inter-shard mailbox
/// once per iteration. Output is **bit-identical** to single-graph execution at
/// every shard count — sharding changes where work happens, never what it
/// computes. A shard maps onto one NMP channel in the hardware model, so the
/// natural production value is the channel count ([`ShardConfig::per_channel`];
/// the paper's system has 8 channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of owner-computes shards. `1` keeps the monolithic single-graph
    /// execution path; values above 1 route construction and compaction through
    /// the sharded engine.
    pub shard_count: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::single()
    }
}

impl ShardConfig {
    /// The default number of NMP channels (Table 2's 8-channel system), the
    /// natural shard count for channel-mapped execution.
    pub const DEFAULT_CHANNELS: usize = 8;

    /// Single-graph execution (no sharding).
    pub fn single() -> Self {
        ShardConfig { shard_count: 1 }
    }

    /// One shard per NMP channel for `channels` channels (clamped to ≥ 1).
    pub fn per_channel(channels: usize) -> Self {
        ShardConfig {
            shard_count: channels.max(1),
        }
    }

    /// One shard per channel of the paper's default 8-channel system.
    pub fn default_channels() -> Self {
        ShardConfig::per_channel(Self::DEFAULT_CHANNELS)
    }

    /// `true` when the sharded execution engine is engaged.
    pub fn is_sharded(&self) -> bool {
        self.shard_count > 1
    }

    /// Validates the shard configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] for a zero shard count. A shard
    /// count exceeding the number of alive MacroNodes is *not* an error —
    /// some shards simply own zero nodes — but the sharded builder emits a
    /// warning, since those shards (channels) sit idle.
    pub fn validate(&self) -> Result<(), PakmanError> {
        if self.shard_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "shard count must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// External-memory k-mer counting knob: the byte budget the bucket-major
/// counter's resident value-partitioned buckets may occupy before the largest
/// buckets are flushed to disk as sorted packed-`u64` runs.
///
/// Spill files are partitioned by the frozen
/// [`nmp_pak_genome::shard_of_packed`] owner hash — the same hash that assigns
/// MacroNodes to shards — so on-disk partitions align with shard ownership for
/// free. Counting with any budget is **bit-identical** to in-memory counting:
/// the read-back is a k-way merge of sorted runs fused with the identical
/// run-length count + prune, so spilling changes where the bytes live, never
/// what is counted. The budget is accounted through the same
/// [`crate::memory::MemoryBudget`] machinery as the batch scheduler's
/// `max_inflight_bytes` window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpillConfig {
    /// Byte budget for the counter's resident buckets. `None` keeps counting
    /// fully in memory (the default); `Some(bytes)` engages the spill path,
    /// which flushes the largest buckets once the resident extracted k-mers
    /// exceed the budget.
    pub max_resident_bytes: Option<u64>,
    /// Maximum number of sorted runs fused per k-way merge pass during
    /// read-back; partitions holding more runs are reduced by intermediate
    /// merge passes first.
    pub merge_fan_in: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig::in_memory()
    }
}

impl SpillConfig {
    /// Default merge fan-in: wide enough that a toy workload merges in one
    /// pass, narrow enough that cursor buffers stay cache-friendly.
    pub const DEFAULT_MERGE_FAN_IN: usize = 16;

    /// Fully in-memory counting (no spill).
    pub fn in_memory() -> Self {
        SpillConfig {
            max_resident_bytes: None,
            merge_fan_in: Self::DEFAULT_MERGE_FAN_IN,
        }
    }

    /// External-memory counting under a resident-byte budget.
    pub fn bounded(max_resident_bytes: u64) -> Self {
        SpillConfig {
            max_resident_bytes: Some(max_resident_bytes),
            merge_fan_in: Self::DEFAULT_MERGE_FAN_IN,
        }
    }

    /// `true` when the external-memory counting path is engaged.
    pub fn is_bounded(&self) -> bool {
        self.max_resident_bytes.is_some()
    }

    /// Validates the spill configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] for a zero-byte budget or a merge
    /// fan-in below 2. A budget far smaller than the workload is *not* an
    /// error — the counter simply spills every extraction wave.
    pub fn validate(&self) -> Result<(), PakmanError> {
        if self.max_resident_bytes == Some(0) {
            return Err(PakmanError::InvalidConfig {
                message: "spill budget must be positive (use None for in-memory counting)"
                    .to_string(),
            });
        }
        if self.merge_fan_in < 2 {
            return Err(PakmanError::InvalidConfig {
                message: format!("merge fan-in {} must be at least 2", self.merge_fan_in),
            });
        }
        Ok(())
    }
}

/// Configuration for the PaKman assembly pipeline.
///
/// The defaults follow the paper's setup (Table 2): k = 32 with 100 bp reads, a
/// compaction termination threshold of 100 000 MacroNodes (scaled down here because the
/// synthetic workloads are smaller), and k-mers observed fewer than twice pruned as
/// sequencing errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PakmanConfig {
    /// k-mer length (2..=32). The paper uses 32.
    pub k: usize,
    /// k-mers seen fewer than this many times are discarded as sequencing errors.
    pub min_kmer_count: u32,
    /// Iterative Compaction stops once the number of alive MacroNodes drops below this
    /// threshold (the paper uses 100 000 for the human genome; scale to the workload).
    pub compaction_node_threshold: usize,
    /// Hard cap on compaction iterations (safety net; the paper's run converges in 219).
    pub max_compaction_iterations: usize,
    /// Number of worker threads for the parallel phases. `1` disables threading.
    pub threads: usize,
    /// Stage-P1 scan strategy for Iterative Compaction (frontier-driven by
    /// default; output is bit-identical either way).
    pub compaction_mode: CompactionMode,
    /// Owner-computes sharding of the PaK-graph (see [`ShardConfig`]). The
    /// default is single-graph execution; any shard count produces bit-identical
    /// output.
    pub shards: ShardConfig,
    /// Iteration scheduling for the sharded compaction engine (see
    /// [`ShardSchedule`]). Lock-step (the default) is bit-identical to the
    /// single-graph engine; async drops the barrier and is verified equivalent
    /// on final output. Ignored when `shards.shard_count == 1`.
    pub shard_schedule: ShardSchedule,
    /// External-memory k-mer counting budget (see [`SpillConfig`]). The default
    /// is fully in-memory counting; any budget produces bit-identical output.
    pub spill: SpillConfig,
    /// Record a [`crate::trace::CompactionTrace`] during Iterative Compaction so the
    /// memory-system simulators can replay it.
    pub record_trace: bool,
    /// Minimum contig length to report.
    pub min_contig_length: usize,
}

impl Default for PakmanConfig {
    fn default() -> Self {
        PakmanConfig {
            k: 32,
            min_kmer_count: 2,
            compaction_node_threshold: 100,
            max_compaction_iterations: 10_000,
            threads: 4,
            compaction_mode: CompactionMode::default(),
            shards: ShardConfig::default(),
            shard_schedule: ShardSchedule::default(),
            spill: SpillConfig::default(),
            record_trace: false,
            min_contig_length: 0,
        }
    }
}

impl PakmanConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if k is outside `2..=32`, the thread
    /// count is zero, or the iteration cap is zero.
    pub fn validate(&self) -> Result<(), PakmanError> {
        if self.k < 2 || self.k > MAX_K {
            return Err(PakmanError::InvalidConfig {
                message: format!("k = {} must lie in 2..={MAX_K}", self.k),
            });
        }
        if self.threads == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "thread count must be at least 1".to_string(),
            });
        }
        if self.max_compaction_iterations == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "max compaction iterations must be at least 1".to_string(),
            });
        }
        if self.min_kmer_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "minimum k-mer count must be at least 1".to_string(),
            });
        }
        self.shards.validate()?;
        self.spill.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_follows_paper_parameters() {
        let cfg = PakmanConfig::default();
        assert_eq!(cfg.k, 32);
        assert_eq!(cfg.compaction_mode, CompactionMode::Frontier);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(PakmanConfig {
            k: 1,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            k: 33,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            threads: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            max_compaction_iterations: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            min_kmer_count: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn shard_config_rejects_zero_and_clamps_channels() {
        assert!(ShardConfig { shard_count: 0 }.validate().is_err());
        assert!(PakmanConfig {
            shards: ShardConfig { shard_count: 0 },
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(ShardConfig::single().validate().is_ok());
        assert!(!ShardConfig::single().is_sharded());
        assert_eq!(ShardConfig::per_channel(0).shard_count, 1);
        assert_eq!(
            ShardConfig::default_channels().shard_count,
            ShardConfig::DEFAULT_CHANNELS
        );
        assert!(ShardConfig::default_channels().is_sharded());
        // The default configuration keeps the single-graph path.
        assert_eq!(PakmanConfig::default().shards, ShardConfig::single());
    }

    #[test]
    fn shard_schedule_defaults_to_lockstep() {
        assert_eq!(ShardSchedule::default(), ShardSchedule::Lockstep);
        assert_eq!(
            PakmanConfig::default().shard_schedule,
            ShardSchedule::Lockstep
        );
        let async_cfg = PakmanConfig {
            shard_schedule: ShardSchedule::Async,
            shards: ShardConfig::default_channels(),
            ..PakmanConfig::default()
        };
        assert!(async_cfg.validate().is_ok());
        assert_ne!(async_cfg, PakmanConfig::default());
    }

    #[test]
    fn spill_config_validates_budget_and_fan_in() {
        assert!(SpillConfig::in_memory().validate().is_ok());
        assert!(!SpillConfig::in_memory().is_bounded());
        assert!(SpillConfig::bounded(64 * 1024).validate().is_ok());
        assert!(SpillConfig::bounded(64 * 1024).is_bounded());
        assert!(SpillConfig::bounded(0).validate().is_err());
        assert!(SpillConfig {
            merge_fan_in: 1,
            ..SpillConfig::in_memory()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            spill: SpillConfig::bounded(0),
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        // The default configuration keeps the in-memory path.
        assert_eq!(PakmanConfig::default().spill, SpillConfig::in_memory());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = PakmanConfig {
            k: 21,
            threads: 8,
            ..PakmanConfig::default()
        };
        let json = serde_json_like(&cfg);
        assert!(json.contains("21"));
    }

    // serde_json is not in the dependency set; exercise Serialize via the Debug-stable
    // bincode-free path by checking the derive compiles and the struct is Copy.
    fn serde_json_like(cfg: &PakmanConfig) -> String {
        format!("{cfg:?}")
    }
}
