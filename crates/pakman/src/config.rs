//! Assembler configuration.

use crate::error::PakmanError;
use nmp_pak_genome::kmer::MAX_K;
use serde::{Deserialize, Serialize};

/// Which P1 scan strategy Iterative Compaction uses.
///
/// Both modes are **bit-identical** — statistics, trace, and contigs — at every
/// thread count; they differ only in how much work stage P1 performs. See the
/// "frontier invariant" section of DESIGN.md for why skipping clean nodes cannot
/// change any output bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CompactionMode {
    /// Re-evaluate the invalidation predicate for every alive node every
    /// iteration — the pre-frontier behaviour, kept as a benchmark baseline and
    /// an equivalence cross-check.
    FullScan,
    /// After iteration 0's full scan, re-evaluate only nodes whose neighbourhood
    /// could have changed: the destinations of the previous iteration's
    /// TransferNodes (every other alive node's through-paths are untouched, so
    /// its cached "not a target" verdict still stands).
    #[default]
    Frontier,
}

/// Configuration for the PaKman assembly pipeline.
///
/// The defaults follow the paper's setup (Table 2): k = 32 with 100 bp reads, a
/// compaction termination threshold of 100 000 MacroNodes (scaled down here because the
/// synthetic workloads are smaller), and k-mers observed fewer than twice pruned as
/// sequencing errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PakmanConfig {
    /// k-mer length (2..=32). The paper uses 32.
    pub k: usize,
    /// k-mers seen fewer than this many times are discarded as sequencing errors.
    pub min_kmer_count: u32,
    /// Iterative Compaction stops once the number of alive MacroNodes drops below this
    /// threshold (the paper uses 100 000 for the human genome; scale to the workload).
    pub compaction_node_threshold: usize,
    /// Hard cap on compaction iterations (safety net; the paper's run converges in 219).
    pub max_compaction_iterations: usize,
    /// Number of worker threads for the parallel phases. `1` disables threading.
    pub threads: usize,
    /// Stage-P1 scan strategy for Iterative Compaction (frontier-driven by
    /// default; output is bit-identical either way).
    pub compaction_mode: CompactionMode,
    /// Record a [`crate::trace::CompactionTrace`] during Iterative Compaction so the
    /// memory-system simulators can replay it.
    pub record_trace: bool,
    /// Minimum contig length to report.
    pub min_contig_length: usize,
}

impl Default for PakmanConfig {
    fn default() -> Self {
        PakmanConfig {
            k: 32,
            min_kmer_count: 2,
            compaction_node_threshold: 100,
            max_compaction_iterations: 10_000,
            threads: 4,
            compaction_mode: CompactionMode::default(),
            record_trace: false,
            min_contig_length: 0,
        }
    }
}

impl PakmanConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::InvalidConfig`] if k is outside `2..=32`, the thread
    /// count is zero, or the iteration cap is zero.
    pub fn validate(&self) -> Result<(), PakmanError> {
        if self.k < 2 || self.k > MAX_K {
            return Err(PakmanError::InvalidConfig {
                message: format!("k = {} must lie in 2..={MAX_K}", self.k),
            });
        }
        if self.threads == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "thread count must be at least 1".to_string(),
            });
        }
        if self.max_compaction_iterations == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "max compaction iterations must be at least 1".to_string(),
            });
        }
        if self.min_kmer_count == 0 {
            return Err(PakmanError::InvalidConfig {
                message: "minimum k-mer count must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_follows_paper_parameters() {
        let cfg = PakmanConfig::default();
        assert_eq!(cfg.k, 32);
        assert_eq!(cfg.compaction_mode, CompactionMode::Frontier);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(PakmanConfig {
            k: 1,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            k: 33,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            threads: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            max_compaction_iterations: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
        assert!(PakmanConfig {
            min_kmer_count: 0,
            ..PakmanConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = PakmanConfig {
            k: 21,
            threads: 8,
            ..PakmanConfig::default()
        };
        let json = serde_json_like(&cfg);
        assert!(json.contains("21"));
    }

    // serde_json is not in the dependency set; exercise Serialize via the Debug-stable
    // bincode-free path by checking the derive compiles and the struct is Copy.
    fn serde_json_like(cfg: &PakmanConfig) -> String {
        format!("{cfg:?}")
    }
}
