//! Crate-internal parallel primitives for the packed-u64 hot path (§4.5 of the
//! paper: parallel sort and merge over pre-allocated per-thread buffers).
//!
//! Both the k-mer counter (step B) and the MacroNode builder (step C) produce
//! per-thread sorted runs of packed machine words and need them merged into one
//! globally sorted stream. The helpers here do that with scoped threads and no
//! external dependencies:
//!
//! * [`parallel_merge_round`] merges runs pairwise, one scoped thread per pair;
//! * [`merge_two`] is the sequential two-run merge used inside a round (and by
//!   the k-mer counter's per-bucket pairwise merges, whose *final* merge is fused
//!   with the run-length count);
//! * [`radix_sort_pairs`] orders the construction records by their packed key.

/// Digit width of the LSD radix sorts (2048 buckets ≈ 16 KiB of counters — small
/// enough to live in cache, wide enough that a 42-bit packed 21-mer sorts in 4
/// passes).
const RADIX_DIGIT_BITS: u32 = 11;
const RADIX_BUCKETS: usize = 1 << RADIX_DIGIT_BITS;

/// Radix-sorts `(key, payload)` pairs by the low `significant_bits` bits of the
/// key. Keys must be unique (the construction records are — one per k-mer side),
/// so the result is a total order independent of the input permutation.
pub(crate) fn radix_sort_pairs(data: &mut Vec<(u64, u64)>, significant_bits: u32) {
    if data.len() < 2 * RADIX_BUCKETS {
        data.sort_unstable();
        return;
    }
    let passes = significant_bits.div_ceil(RADIX_DIGIT_BITS).max(1);
    let mut buf: Vec<(u64, u64)> = vec![(0, 0); data.len()];
    for pass in 0..passes {
        let shift = pass * RADIX_DIGIT_BITS;
        let mut pos = [0usize; RADIX_BUCKETS];
        for &(key, _) in data.iter() {
            pos[(key >> shift) as usize & (RADIX_BUCKETS - 1)] += 1;
        }
        let mut sum = 0usize;
        for p in pos.iter_mut() {
            let count = *p;
            *p = sum;
            sum += count;
        }
        for &pair in data.iter() {
            let d = (pair.0 >> shift) as usize & (RADIX_BUCKETS - 1);
            buf[pos[d]] = pair;
            pos[d] += 1;
        }
        std::mem::swap(data, &mut buf);
    }
}

/// Merges two sorted runs into one sorted vector (stable: ties take from `a` first).
pub(crate) fn merge_two<T: Ord + Copy>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One parallel merge round: adjacent runs are merged pairwise, each pair on its
/// own scoped thread; an odd run is carried over unmerged.
pub(crate) fn parallel_merge_round<T: Ord + Copy + Send>(runs: Vec<Vec<T>>) -> Vec<Vec<T>> {
    if runs.len() <= 1 {
        return runs;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(runs.len() / 2);
        let mut carried = None;
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => handles.push(scope.spawn(move || merge_two(a, b))),
                None => carried = Some(a),
            }
        }
        let mut next: Vec<Vec<T>> = handles
            .into_iter()
            .map(|h| h.join().expect("merge worker panicked"))
            .collect();
        next.extend(carried);
        next
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sort_pairs_matches_comparison_sort() {
        // Pseudo-random 42-bit keys, enough of them to clear the fallback gate.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & ((1 << 42) - 1)
        };
        let mut pairs: Vec<(u64, u64)> = (0..10_000u64).map(|i| (next(), i)).collect();
        let mut expected = pairs.clone();
        expected.sort_unstable();
        radix_sort_pairs(&mut pairs, 42);
        // Keys may collide in this synthetic stream; compare keys only, which is
        // what the sort guarantees (real construction records have unique keys).
        assert_eq!(
            pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
            expected.iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn radix_sort_pairs_small_input_falls_back() {
        let mut data = vec![(5u64, 0u64), (3, 1), (4, 2), (1, 3), (2, 4)];
        radix_sort_pairs(&mut data, 42);
        assert_eq!(
            data.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn merge_two_is_a_stable_union() {
        let merged = merge_two(vec![1u64, 3, 5, 5], vec![2, 3, 4]);
        assert_eq!(merged, vec![1, 2, 3, 3, 4, 5, 5]);
        assert_eq!(merge_two(Vec::<u64>::new(), vec![7]), vec![7]);
        assert_eq!(merge_two(vec![7u64], Vec::new()), vec![7]);
    }

    #[test]
    fn parallel_round_halves_run_count() {
        let runs: Vec<Vec<u64>> = (0..7)
            .map(|i| (0..20).map(|x| x * 7 + i).collect())
            .collect();
        let mut runs = runs;
        while runs.len() > 1 {
            runs = parallel_merge_round(runs);
        }
        let expected: Vec<u64> = {
            let mut v: Vec<u64> = (0..7)
                .flat_map(|i| (0..20).map(move |x| x * 7 + i))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(runs.pop().unwrap(), expected);
    }
}
