//! Cooperative run control: cancellation, progress observation, and a shared
//! memory ledger for multi-tenant execution.
//!
//! [`crate::PakmanConfig`] is `Copy + Serialize` — a pure description of *what*
//! to assemble — so everything about *who is watching this particular run* lives
//! here instead: a [`CancelToken`] polled at stage boundaries and between
//! compaction iterations, a [`ProgressObserver`] that streams stage/iteration
//! events out (the job server turns these into `JobEvent`s), and an optional
//! global [`MemoryBudget`] ledger that per-run budgets are chained into.
//!
//! The controlled entry points ([`crate::compact_controlled`],
//! [`crate::compact_sharded_controlled`], the `*_controlled` pipeline methods)
//! are bit-identical to their uncontrolled twins when the token never fires:
//! control is observation plus early exit, never a change to the computation.

use crate::error::PakmanError;
use crate::memory::MemoryBudget;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheap, cloneable cancellation flag shared between a controller and a run.
///
/// Cancellation is cooperative: the run polls [`CancelToken::check`] at
/// well-defined checkpoints (stage boundaries, tops of compaction iterations,
/// batch-window admissions) and unwinds with [`PakmanError::Cancelled`] naming
/// the checkpoint that observed the flag. Work already completed is simply
/// dropped; no partial output escapes.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Polls the flag at the checkpoint named `at`.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::Cancelled`] carrying `at` once the token has
    /// been cancelled.
    pub fn check(&self, at: &str) -> Result<(), PakmanError> {
        if self.is_cancelled() {
            Err(PakmanError::Cancelled { at: at.to_string() })
        } else {
            Ok(())
        }
    }
}

/// Receiver of progress callbacks from a controlled run.
///
/// Callbacks arrive from whichever thread is executing the stage, so
/// implementations must be `Sync`; they should also be cheap — the compaction
/// loop fires [`ProgressObserver::compaction_iteration`] once per iteration on
/// the critical path. All methods default to no-ops.
pub trait ProgressObserver: Sync {
    /// A pipeline stage is about to run (e.g. `"stage B (k-mer counting)"`).
    fn stage_started(&self, stage: &'static str) {
        let _ = stage;
    }

    /// A compaction iteration is about to run with `alive_nodes` MacroNodes
    /// still live. Fires for both the single-graph and sharded engines.
    fn compaction_iteration(&self, iteration: usize, alive_nodes: usize) {
        let (_, _) = (iteration, alive_nodes);
    }
}

/// No-op observer used when a controlled entry point runs unobserved.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ProgressObserver for NullObserver {}

/// The control plane for one run: cancellation + observation + shared ledger.
///
/// Borrowed (`&RunControl`) across every stage and scoped worker thread of the
/// run. [`RunControl::default`] is the null control — never cancelled,
/// unobserved, no shared ledger — under which every controlled entry point is
/// bit-identical to its uncontrolled twin.
#[derive(Default)]
pub struct RunControl<'a> {
    /// Cancellation flag polled at checkpoints.
    pub cancel: CancelToken,
    /// Progress sink, if anyone is listening.
    pub observer: Option<&'a dyn ProgressObserver>,
    /// Global memory ledger; when present, every per-run [`MemoryBudget`]
    /// (batch window, spill budget) is chained into it via
    /// [`RunControl::adopt`], so host-wide pressure stalls and spills exactly
    /// like local pressure.
    pub ledger: Option<&'a Arc<MemoryBudget>>,
}

impl fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("cancel", &self.cancel)
            .field("observer", &self.observer.map(|_| "dyn ProgressObserver"))
            .field("ledger", &self.ledger)
            .finish()
    }
}

impl<'a> RunControl<'a> {
    /// Control with the given cancellation token and no observer/ledger.
    pub fn with_cancel(cancel: CancelToken) -> RunControl<'a> {
        RunControl {
            cancel,
            ..RunControl::default()
        }
    }

    /// Attaches a progress observer.
    pub fn observed_by(mut self, observer: &'a dyn ProgressObserver) -> RunControl<'a> {
        self.observer = Some(observer);
        self
    }

    /// Chains this run's memory budgets into `ledger` (see
    /// [`RunControl::adopt`]).
    pub fn with_ledger(mut self, ledger: &'a Arc<MemoryBudget>) -> RunControl<'a> {
        self.ledger = Some(ledger);
        self
    }

    /// Polls the cancellation token at the checkpoint named `at`.
    ///
    /// # Errors
    ///
    /// Returns [`PakmanError::Cancelled`] once the run has been cancelled.
    pub fn check(&self, at: &str) -> Result<(), PakmanError> {
        self.cancel.check(at)
    }

    /// Notifies the observer (if any) that `stage` is starting.
    pub fn stage_started(&self, stage: &'static str) {
        if let Some(observer) = self.observer {
            observer.stage_started(stage);
        }
    }

    /// Notifies the observer (if any) of a compaction iteration.
    pub fn compaction_iteration(&self, iteration: usize, alive_nodes: usize) {
        if let Some(observer) = self.observer {
            observer.compaction_iteration(iteration, alive_nodes);
        }
    }

    /// Chains a per-run budget into the global ledger, when one is attached;
    /// otherwise returns the budget unchanged. Budget decisions never change
    /// output bits (they only add stalls or spills), so adoption preserves the
    /// determinism contract.
    pub fn adopt(&self, budget: MemoryBudget) -> MemoryBudget {
        match self.ledger {
            Some(parent) => budget.with_parent(Arc::clone(parent)),
            None => budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.check("anywhere").is_ok());
        let peer = token.clone();
        peer.cancel();
        assert!(token.is_cancelled());
        match token.check("stage D (compaction)") {
            Err(PakmanError::Cancelled { at }) => assert_eq!(at, "stage D (compaction)"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn null_control_never_cancels_and_adopts_verbatim() {
        let control = RunControl::default();
        assert!(control.check("x").is_ok());
        let budget = control.adopt(MemoryBudget::bounded(10));
        budget.charge(99);
        assert!(budget.is_over());
        assert_eq!(budget.capacity(), Some(10));
    }

    #[test]
    fn ledger_adoption_chains_budgets() {
        let global = Arc::new(MemoryBudget::bounded(100));
        let control = RunControl::default().with_ledger(&global);
        let child = control.adopt(MemoryBudget::unbounded());
        child.charge(150);
        assert_eq!(global.used(), 150);
        assert!(child.is_over());
    }

    #[test]
    fn observer_callbacks_are_forwarded() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counting {
            stages: AtomicUsize,
            iterations: AtomicUsize,
        }
        impl ProgressObserver for Counting {
            fn stage_started(&self, _stage: &'static str) {
                self.stages.fetch_add(1, Ordering::Relaxed);
            }
            fn compaction_iteration(&self, _iteration: usize, _alive: usize) {
                self.iterations.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counting = Counting::default();
        let control = RunControl::default().observed_by(&counting);
        control.stage_started("stage A (reads access)");
        control.compaction_iteration(0, 42);
        control.compaction_iteration(1, 17);
        assert_eq!(counting.stages.load(Ordering::Relaxed), 1);
        assert_eq!(counting.iterations.load(Ordering::Relaxed), 2);
    }
}
