//! Sharded subgraph execution: the owner-computes decomposition of the
//! PaK-graph, mapped one shard per NMP channel.
//!
//! Distributed PaKman partitions MacroNodes across MPI ranks by hashing each
//! (k-1)-mer and compacts the per-rank subgraphs mostly independently, with
//! boundary traffic exchanged via `MPI_Alltoallv` once per iteration. NMP-PaK's
//! scalability claim rests on the same decomposition mapped onto channels: each
//! channel's local memory holds one subgraph, and only TransferNodes whose
//! destination lives on another channel cross the inter-DIMM network. This
//! module is that execution model in software:
//!
//! * [`ShardedGraph`] — one [`PakGraph`] per shard (nodes assigned by the
//!   stable ownership hash [`nmp_pak_genome::shard_of_packed`]) plus the global
//!   rank mapping that ties local slots back to the single-graph slot space, so
//!   traces and statistics stay expressed in global slots;
//! * [`ShardedGraph::from_counted_kmers`] — shard-parallel construction from
//!   the owner-partitioned counted streams, with prefix-extension records
//!   exchanged to their owner at build time (the construction-time mailbox);
//! * [`compact_sharded`] — Iterative Compaction with P1/P2/P3 running
//!   per-shard and a batched, slot-ordered [`ShardMailbox`] exchanged **once
//!   per iteration** for cross-shard TransferNodes;
//! * [`ShardingTelemetry`] — the measured per-shard load and inter-shard
//!   traffic the hardware models consume instead of assuming uniformity.
//!
//! **Determinism contract.** Sharding changes *where* work executes, never what
//! it computes: contigs, statistics, and the recorded trace are bit-identical
//! to the single-graph path at every shard count and thread count. The
//! load-bearing facts are (1) ownership is a pure function of the (k-1)-mer,
//! (2) each node is fully assembled on its owner (all of a key's extension
//! contributions are routed there), (3) the mailbox is a stable partition of
//! the canonical transfer stream, so per-destination delivery order equals the
//! serial order, and (4) every reduction (histogram, counts) is order-free and
//! every ordered artifact (trace events, dirty set) is re-serialized from the
//! canonical global-slot order.

use crate::compaction::{
    apply_transfer, assemble_trace_checks, fold_census, fold_transfers,
    is_invalidation_target_with, remove_sorted, CompactionOutcome, CompactionProfile,
    CompactionStats, IterationProfile, IterationStats, SizeHistogram,
};
use crate::config::{CompactionMode, PakmanConfig};
use crate::control::RunControl;
use crate::error::PakmanError;
use crate::graph::{build_segment, PakGraph};
use crate::kmer_count::{partition_counted_by_owner, CountedKmer};
use crate::macronode::MacroNode;
use crate::par::radix_sort_pairs;
use crate::trace::{CompactionTrace, IterationTrace, NodeCheck, UpdateEvent};
use crate::transfer::{ShardMailbox, TransferNode};
use nmp_pak_genome::{shard_of_packed, Kmer};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One shard's built parts: slot keys (ascending) and the slot vector.
type ShardParts = (Vec<u64>, Vec<Option<MacroNode>>);

/// The PaK-graph split into owner-computes shards, with the global rank mapping
/// that keeps every externally visible artifact (traces, statistics, the
/// compacted output graph) in single-graph slot coordinates.
#[derive(Debug, Clone)]
pub struct ShardedGraph {
    /// One subgraph per shard; local slots ascend in (k-1)-mer order.
    shards: Vec<PakGraph>,
    /// Packed (k-1)-mer of every global slot, ascending — identical to the
    /// single-graph slot layout.
    global_keys: Vec<u64>,
    /// Global slot → (owner shard, local slot).
    route: Vec<(u32, u32)>,
    /// Per shard: local slot → global slot (ascending, since local key order is
    /// a subsequence of the global key order).
    global_slots: Vec<Vec<u32>>,
    /// k-mer length the graph was built for.
    k: usize,
}

impl ShardedGraph {
    /// Builds the sharded graph from the sorted counted k-mer stream:
    /// owner-partitioned per-shard streams, a construction-time exchange of
    /// prefix-extension records to their owner shard, and one merge-scan build
    /// per shard (shard-parallel over up to `threads` workers).
    ///
    /// Every node comes out bit-identical to [`PakGraph::from_counted_kmers`]'s
    /// — all of a (k-1)-mer's extension contributions are routed to its owner —
    /// and the global slot layout (ascending keys over the union) is identical
    /// too. A shard count of 1 delegates to the single-graph builder outright.
    ///
    /// Warns (without panicking) when there are more shards than MacroNodes:
    /// the surplus shards own zero nodes and the corresponding channels idle.
    pub fn from_counted_kmers(
        counted: &[CountedKmer],
        k: usize,
        shard_count: usize,
        threads: usize,
    ) -> ShardedGraph {
        let shard_count = shard_count.max(1);
        if shard_count == 1 {
            return ShardedGraph::from_single(PakGraph::from_counted_kmers(counted, k, threads));
        }
        debug_assert!(k >= 2, "k = {k} must be at least 2 to form (k-1)-mers");
        let k1_len = k - 1;
        let k1_shift = (2 * k1_len) as u32;
        let k1_mask = (1u64 << k1_shift) - 1;

        // Owner-partitioned suffix streams: counted k-mers grouped by the owner
        // of their prefix (k-1)-mer (the node receiving the suffix extension).
        let suffix_streams = partition_counted_by_owner(counted, shard_count);

        // The construction-time exchange: prefix-extension records belong to
        // the *suffix* (k-1)-mer's owner, which is in general a different shard
        // than the k-mer's own — the same all-to-all pattern the compaction
        // mailbox batches per iteration.
        let mut sizes = vec![0usize; shard_count];
        for ck in counted {
            sizes[shard_of_packed(ck.kmer.packed() & k1_mask, shard_count)] += 1;
        }
        let mut jobs: Vec<(usize, Vec<(u64, u64)>)> = sizes
            .iter()
            .enumerate()
            .map(|(s, &size)| (s, Vec::with_capacity(size)))
            .collect();
        for ck in counted {
            let packed = ck.kmer.packed();
            let key = packed & k1_mask;
            let record = (key << 2) | (packed >> k1_shift);
            jobs[shard_of_packed(key, shard_count)]
                .1
                .push((record, ck.count as u64));
        }

        // Shard-parallel build: each shard radix-sorts its received records and
        // runs the single-graph merge-scan over its two streams.
        let workers = threads.clamp(1, shard_count);
        let per_worker = shard_count.div_ceil(workers);
        let mut parts: Vec<Option<ShardParts>> = (0..shard_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in jobs.chunks_mut(per_worker) {
                let suffix_streams = &suffix_streams;
                handles.push(scope.spawn(move || {
                    let mut built = Vec::with_capacity(chunk.len());
                    for (shard, records) in chunk.iter_mut() {
                        radix_sort_pairs(records, k1_shift + 2);
                        built.push((
                            *shard,
                            build_segment(records, &suffix_streams[*shard], k1_len),
                        ));
                    }
                    built
                }));
            }
            for handle in handles {
                for (shard, part) in handle.join().expect("shard build worker panicked") {
                    parts[shard] = Some(part);
                }
            }
        });

        let mut shards = Vec::with_capacity(shard_count);
        for part in parts {
            let (keys, slots) = part.expect("every shard was built");
            shards.push(PakGraph::from_parts(keys, slots, k));
        }
        ShardedGraph::from_shards(shards, k)
    }

    /// Wraps an already-built single graph as a one-shard sharded graph (the
    /// identity mapping). Used by the `shard_count == 1` fast path and the
    /// overhead benchmark, which runs the full sharded engine over one shard.
    pub fn from_single(graph: PakGraph) -> ShardedGraph {
        let n = graph.slot_count();
        let k = graph.k();
        debug_assert!(n <= u32::MAX as usize);
        ShardedGraph {
            global_keys: graph.slot_keys().to_vec(),
            route: (0..n as u32).map(|local| (0, local)).collect(),
            global_slots: vec![(0..n as u32).collect()],
            shards: vec![graph],
            k,
        }
    }

    /// Assembles the global rank mapping over per-shard graphs (ascending
    /// merge of the per-shard key sequences).
    fn from_shards(shards: Vec<PakGraph>, k: usize) -> ShardedGraph {
        let shard_count = shards.len();
        let total: usize = shards.iter().map(PakGraph::slot_count).sum();
        debug_assert!(total <= u32::MAX as usize);
        if shard_count > total {
            eprintln!(
                "warning: {shard_count} shards over {total} MacroNodes — \
                 {unowned} shard(s) own zero k-mers and their channels idle",
                unowned = shard_count - total
            );
        }
        // Merge the per-shard key sequences into the global ascending order by
        // radix-sorting (key, shard/local) pairs — keys are globally unique, so
        // this is a total order and runs in O(total) passes.
        let key_bits = (2 * (k - 1)) as u32;
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(total);
        for (shard, graph) in shards.iter().enumerate() {
            for (local, &key) in graph.slot_keys().iter().enumerate() {
                pairs.push((key, ((shard as u64) << 32) | local as u64));
            }
        }
        radix_sort_pairs(&mut pairs, key_bits);
        let mut global_keys = Vec::with_capacity(total);
        let mut route = Vec::with_capacity(total);
        let mut global_slots: Vec<Vec<u32>> = shards
            .iter()
            .map(|g| Vec::with_capacity(g.slot_count()))
            .collect();
        for &(key, packed_route) in &pairs {
            let shard = (packed_route >> 32) as usize;
            let local = packed_route as u32;
            global_slots[shard].push(global_keys.len() as u32);
            route.push((shard as u32, local));
            global_keys.push(key);
        }
        debug_assert!(global_keys.windows(2).all(|w| w[0] < w[1]));
        ShardedGraph {
            shards,
            global_keys,
            route,
            global_slots,
            k,
        }
    }

    /// The k-mer length this graph was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The subgraph of shard `shard`.
    pub fn shard(&self, shard: usize) -> &PakGraph {
        &self.shards[shard]
    }

    /// Total number of global slots (alive + invalidated).
    pub fn global_slot_count(&self) -> usize {
        self.route.len()
    }

    /// The owner shard of global slot `slot`.
    #[inline]
    pub fn shard_of_global(&self, slot: usize) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        self.route[slot].0 as usize
    }

    /// Total alive MacroNodes across all shards.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().map(PakGraph::alive_count).sum()
    }

    /// Alive MacroNodes per shard — the per-channel residency the hardware
    /// model reads as measured (not assumed) load.
    pub fn per_shard_alive(&self) -> Vec<usize> {
        self.shards.iter().map(PakGraph::alive_count).collect()
    }

    /// The alive node at global slot `slot`, if any.
    ///
    /// The one-shard fast paths here and below skip the route/ownership
    /// indirection when the mapping is the identity, keeping the sharded
    /// engine's single-shard overhead within the benchmark gate.
    #[inline]
    pub fn node_global(&self, slot: usize) -> Option<&MacroNode> {
        if self.shards.len() == 1 {
            return self.shards[0].node(slot);
        }
        let (shard, local) = self.route[slot];
        self.shards[shard as usize].node(local as usize)
    }

    /// Invalidates the node at global slot `slot` on its owner shard.
    pub fn invalidate_global(&mut self, slot: usize) -> Option<MacroNode> {
        if self.shards.len() == 1 {
            return self.shards[0].invalidate(slot);
        }
        let (shard, local) = self.route[slot];
        self.shards[shard as usize].invalidate(local as usize)
    }

    /// `true` if a node with this (k-1)-mer is alive — resolved on its owner
    /// shard, exactly as a PE would consult its channel's mapping table.
    #[inline]
    pub fn contains(&self, k1mer: &Kmer) -> bool {
        if self.shards.len() == 1 {
            return self.shards[0].contains(k1mer);
        }
        self.shards[shard_of_packed(k1mer.packed(), self.shards.len())].contains(k1mer)
    }

    /// The global slot of the alive node with this (k-1)-mer, if any.
    pub fn index_of_global(&self, k1mer: &Kmer) -> Option<usize> {
        let shard = shard_of_packed(k1mer.packed(), self.shards.len());
        let local = self.shards[shard].index_of(k1mer)?;
        Some(self.global_slots[shard][local] as usize)
    }

    /// Reassembles the single global graph (dead slots included), preserving
    /// the exact single-graph slot layout so downstream consumers — the walk,
    /// batch merging, the memory-trace layout — see an identical structure.
    pub fn into_global_graph(self) -> PakGraph {
        let ShardedGraph {
            shards,
            global_keys,
            route,
            k,
            ..
        } = self;
        let mut shard_slots: Vec<Vec<Option<MacroNode>>> =
            shards.into_iter().map(PakGraph::into_slots).collect();
        let mut slots = Vec::with_capacity(route.len());
        for &(shard, local) in &route {
            slots.push(shard_slots[shard as usize][local as usize].take());
        }
        PakGraph::from_parts(global_keys, slots, k)
    }
}

/// Mailbox traffic of one compaction iteration (the per-iteration exchange).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxIterationStats {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// TransferNodes routed through the mailbox.
    pub transfers: usize,
    /// TransferNodes whose destination shard differed from their source shard.
    pub cross_shard_transfers: usize,
    /// Total payload bytes routed.
    pub bytes: u64,
    /// Payload bytes that crossed shards (the inter-channel traffic).
    pub cross_shard_bytes: u64,
}

/// Measured per-shard load and inter-shard traffic of one sharded run — the
/// telemetry the `nmphw` channel model and the PANDA cost model consume instead
/// of assuming uniform work and uniform traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingTelemetry {
    /// Number of shards the run executed with.
    pub shard_count: usize,
    /// Alive MacroNodes per shard before compaction.
    pub initial_alive_per_shard: Vec<usize>,
    /// Alive MacroNodes per shard after compaction.
    pub final_alive_per_shard: Vec<usize>,
    /// P1 invalidation predicates evaluated per shard across the run — the
    /// per-channel compute load.
    pub checked_per_shard: Vec<u64>,
    /// Per-iteration mailbox traffic.
    pub mailbox: Vec<MailboxIterationStats>,
    /// Whole-run shard→shard payload bytes, flattened
    /// `source * shard_count + destination`.
    pub route_bytes: Vec<u64>,
}

impl ShardingTelemetry {
    /// Per-shard load imbalance: max over mean of the per-shard P1 work
    /// (falls back to the initial residency when no predicate ran). 1.0 means
    /// perfectly balanced; the hardware model multiplies its
    /// perfectly-parallel critical path by this factor.
    ///
    /// The mean runs over *working* shards only, matching the channel model's
    /// convention (`nmphw::ChannelLoadStats::imbalance` excludes idle
    /// channels): a shard that owns zero k-mers reflects over-partitioning,
    /// not skew among the lanes that actually execute in lock-step.
    pub fn load_imbalance(&self) -> f64 {
        let ratio = |counts: &[u64]| -> Option<f64> {
            let working: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
            let total: u64 = working.iter().sum();
            if working.is_empty() || total == 0 {
                return None;
            }
            let mean = total as f64 / working.len() as f64;
            let max = working.iter().copied().max().unwrap_or(0) as f64;
            Some(max / mean)
        };
        let residency: Vec<u64> = self
            .initial_alive_per_shard
            .iter()
            .map(|&n| n as u64)
            .collect();
        ratio(&self.checked_per_shard)
            .or_else(|| ratio(&residency))
            .unwrap_or(1.0)
    }

    /// Total TransferNodes routed across the run.
    pub fn total_transfers(&self) -> usize {
        self.mailbox.iter().map(|m| m.transfers).sum()
    }

    /// Total mailbox payload bytes across the run.
    pub fn total_mailbox_bytes(&self) -> u64 {
        self.mailbox.iter().map(|m| m.bytes).sum()
    }

    /// Total payload bytes that crossed shards across the run.
    pub fn total_cross_shard_bytes(&self) -> u64 {
        self.mailbox.iter().map(|m| m.cross_shard_bytes).sum()
    }

    /// Fraction of mailbox bytes that crossed shards (0 when nothing moved).
    pub fn cross_shard_fraction(&self) -> f64 {
        let total = self.total_mailbox_bytes();
        if total == 0 {
            return 0.0;
        }
        self.total_cross_shard_bytes() as f64 / total as f64
    }

    /// Bytes routed from shard `src` to shard `dst` across the run.
    pub fn routed_bytes(&self, src: usize, dst: usize) -> u64 {
        self.route_bytes[src * self.shard_count + dst]
    }
}

/// Runs Iterative Compaction over the sharded graph: P1/P2/P3 execute
/// per-shard, cross-shard TransferNodes travel through a batched slot-ordered
/// [`ShardMailbox`] exchanged once per iteration, and the outcome — statistics,
/// trace, compacted nodes — is **bit-identical** to [`crate::compaction::compact`]
/// on the equivalent single graph, at every shard count, thread count, and
/// [`CompactionMode`].
pub fn compact_sharded(
    sharded: &mut ShardedGraph,
    config: &PakmanConfig,
) -> (CompactionOutcome, ShardingTelemetry) {
    compact_sharded_controlled(sharded, config, &RunControl::default())
        .expect("null control never cancels")
}

/// [`compact_sharded`] under a [`RunControl`]: the cancellation token is polled
/// at the top of every iteration (before the mailbox exchange, so no shard ever
/// sees a half-delivered iteration) and the observer gets one
/// `compaction_iteration` callback per iteration. Bit-identical to
/// [`compact_sharded`] under the default control.
///
/// # Errors
///
/// Returns [`PakmanError::Cancelled`] if the control's token fires between
/// iterations; the sharded graph is left mid-compaction and should be dropped.
pub fn compact_sharded_controlled(
    sharded: &mut ShardedGraph,
    config: &PakmanConfig,
    control: &RunControl<'_>,
) -> Result<(CompactionOutcome, ShardingTelemetry), PakmanError> {
    let shard_count = sharded.shard_count();
    let slot_count = sharded.global_slot_count();
    let initial_nodes = sharded.alive_count();
    let frontier = config.compaction_mode == CompactionMode::Frontier;

    let mut trace = config.record_trace.then(|| {
        let mut sizes = vec![0usize; slot_count];
        for (slot, size) in sizes.iter_mut().enumerate() {
            if let Some(node) = sharded.node_global(slot) {
                *size = node.size_bytes();
            }
        }
        CompactionTrace::new(slot_count, sizes)
    });

    let mut stats = CompactionStats {
        initial_nodes,
        final_nodes: initial_nodes,
        ..CompactionStats::default()
    };
    let mut profile = CompactionProfile::default();
    let mut telemetry = ShardingTelemetry {
        shard_count,
        initial_alive_per_shard: sharded.per_shard_alive(),
        final_alive_per_shard: Vec::new(),
        checked_per_shard: vec![0; shard_count],
        mailbox: Vec::new(),
        route_bytes: vec![0; shard_count * shard_count],
    };

    // Global-slot-indexed census state, mirroring the single-graph scratch.
    let mut alive_list: Vec<u32> = (0..slot_count as u32)
        .filter(|&slot| sharded.node_global(slot as usize).is_some())
        .collect();
    let mut alive = initial_nodes;
    let mut cached_size = vec![0usize; slot_count];
    let mut dirty = vec![false; slot_count];
    let mut dirty_list: Vec<usize> = Vec::new();
    let mut running_hist = SizeHistogram::new();
    let mut census_primed = false;

    let mut mailbox = ShardMailbox::new(shard_count);
    let mut recheck: Vec<usize> = Vec::new();
    let mut check_results: Vec<NodeCheck> = Vec::new();
    let mut invalidated: Vec<usize> = Vec::new();
    let mut transfers: Vec<(usize, TransferNode)> = Vec::new();
    let mut resolved: Vec<Option<usize>> = Vec::new();
    let mut matched: Vec<bool> = Vec::new();
    let mut touched = vec![false; slot_count];
    let mut touched_order: Vec<usize> = Vec::new();
    let mut checks: Vec<NodeCheck> = Vec::new();

    for iteration in 0..config.max_compaction_iterations {
        control.check("sharded compaction")?;
        let alive_before = alive;
        control.compaction_iteration(iteration, alive_before);
        if alive_before <= config.compaction_node_threshold {
            stats.converged = true;
            break;
        }

        // ---- Stage P1: per-shard invalidation checks over the global
        // frontier (read-only; neighbour lookups route to the owner shard) ----
        let p1_start = Instant::now();
        recheck.clear();
        if !frontier || iteration == 0 {
            recheck.extend(alive_list.iter().map(|&slot| slot as usize));
        } else {
            dirty_list.sort_unstable();
            for &slot in &dirty_list {
                dirty[slot] = false;
                recheck.push(slot);
            }
            dirty_list.clear();
        }
        run_sharded_checks(sharded, &recheck, config.threads, &mut check_results);
        for &slot in &recheck {
            telemetry.checked_per_shard[sharded.shard_of_global(slot)] += 1;
        }

        fold_census(
            &check_results,
            census_primed,
            &mut running_hist,
            &mut cached_size,
            &mut invalidated,
        );
        census_primed = true;
        let histogram = running_hist.clone();

        if trace.is_some() {
            assemble_trace_checks(
                &alive_list,
                &recheck,
                &check_results,
                &cached_size,
                &mut checks,
            );
        }
        let p1 = p1_start.elapsed();
        profile.iterations.push(IterationProfile {
            iteration,
            p1,
            p2: Duration::ZERO,
            p3: Duration::ZERO,
            checked_nodes: recheck.len(),
            alive_nodes: alive_before,
        });

        if invalidated.is_empty() {
            stats.iterations.push(IterationStats {
                iteration,
                alive_before,
                invalidated: 0,
                transfers: 0,
                unmatched_transfers: 0,
                histogram,
            });
            if let Some(trace) = trace.as_mut() {
                trace.iterations.push(IterationTrace {
                    checks: std::mem::take(&mut checks),
                    transfers: Vec::new(),
                    updates: Vec::new(),
                });
            }
            stats.converged = true;
            break;
        }

        // ---- Stage P2: per-shard TransferNode extraction (canonical
        // global-slot-major stream), then invalidation on the owner shards ----
        let p2_start = Instant::now();
        extract_sharded_transfers(sharded, &invalidated, config.threads, &mut transfers);
        for &slot in &invalidated {
            sharded.invalidate_global(slot);
            running_hist.unrecord(cached_size[slot]);
        }
        remove_sorted(&mut alive_list, &invalidated);
        alive -= invalidated.len();
        let p2 = p2_start.elapsed();

        // ---- The inter-shard mailbox: one batched exchange per iteration.
        // Stable partition of the canonical stream → slot-ordered delivery.
        let p3_start = Instant::now();
        mailbox.route(&transfers, |i| sharded.shard_of_global(transfers[i].0));
        telemetry.mailbox.push(MailboxIterationStats {
            iteration,
            transfers: mailbox.transfer_count(),
            cross_shard_transfers: mailbox.cross_shard_transfer_count(),
            bytes: mailbox.total_bytes(),
            cross_shard_bytes: mailbox.cross_shard_bytes(),
        });
        for (cell, routed) in telemetry.route_bytes.iter_mut().zip(mailbox.route_bytes()) {
            *cell += routed;
        }

        // ---- Stage P3: every destination shard drains its inbox in mailbox
        // (= canonical per-destination) order, resolving against its own rank
        // index and applying locally — shards in parallel, no locks.
        resolved.clear();
        resolved.resize(transfers.len(), None);
        matched.clear();
        matched.resize(transfers.len(), false);
        apply_mailbox(
            sharded,
            &mailbox,
            &transfers,
            config.threads,
            &mut resolved,
            &mut matched,
        );

        // ---- Canonical fold over the global stream: unmatched census,
        // first-touch update order, trace events, and the next frontier —
        // the exact fold the single-graph engine runs ([`fold_transfers`]).
        let fold = fold_transfers(
            &transfers,
            &resolved,
            &matched,
            frontier,
            trace.is_some(),
            &mut touched,
            &mut touched_order,
            &mut dirty,
            &mut dirty_list,
        );
        let unmatched = fold.unmatched;
        let transfer_events = fold.events;

        let updates: Vec<UpdateEvent> = if trace.is_some() {
            touched_order
                .iter()
                .map(|&dest_slot| UpdateEvent {
                    dest_slot,
                    size_bytes: sharded
                        .node_global(dest_slot)
                        .map(MacroNode::size_bytes)
                        .unwrap_or(0),
                })
                .collect()
        } else {
            Vec::new()
        };
        let p3 = p3_start.elapsed();
        if let Some(entry) = profile.iterations.last_mut() {
            entry.p2 = p2;
            entry.p3 = p3;
        }

        stats.total_transfers += transfers.len();
        stats.iterations.push(IterationStats {
            iteration,
            alive_before,
            invalidated: invalidated.len(),
            transfers: transfers.len(),
            unmatched_transfers: unmatched,
            histogram,
        });
        if let Some(trace) = trace.as_mut() {
            trace.iterations.push(IterationTrace {
                checks: std::mem::take(&mut checks),
                transfers: transfer_events,
                updates,
            });
        }
    }

    stats.final_nodes = sharded.alive_count();
    if stats.final_nodes <= config.compaction_node_threshold {
        stats.converged = true;
    }
    telemetry.final_alive_per_shard = sharded.per_shard_alive();
    Ok((
        CompactionOutcome {
            stats,
            trace,
            profile,
        },
        telemetry,
    ))
}

/// Evaluates the invalidation predicate for the global `slots` (ascending) on
/// their owner shards, writing position-aligned results — the sharded
/// equivalent of the single-graph `run_checks_into`.
fn run_sharded_checks(
    sharded: &ShardedGraph,
    slots: &[usize],
    threads: usize,
    results: &mut Vec<NodeCheck>,
) {
    results.clear();
    results.resize(
        slots.len(),
        NodeCheck {
            slot: 0,
            size_bytes: 0,
            invalidated: false,
        },
    );
    let check_one = |slot: usize| {
        let node = sharded.node_global(slot).expect("slot is alive");
        NodeCheck {
            slot,
            size_bytes: node.size_bytes(),
            invalidated: is_invalidation_target_with(|k1mer| sharded.contains(k1mer), node),
        }
    };
    let threads = threads.max(1).min(slots.len().max(1));
    if threads <= 1 || slots.len() < 64 {
        for (out, &slot) in results.iter_mut().zip(slots) {
            *out = check_one(slot);
        }
        return;
    }
    let chunk = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (out_chunk, slot_chunk) in results.chunks_mut(chunk).zip(slots.chunks(chunk)) {
            let check_one = &check_one;
            scope.spawn(move || {
                for (out, &slot) in out_chunk.iter_mut().zip(slot_chunk) {
                    *out = check_one(slot);
                }
            });
        }
    });
}

/// Extracts the TransferNodes of every invalidated global slot (ascending)
/// into the canonical global-slot-major stream, parallel over contiguous
/// chunks merged in order.
fn extract_sharded_transfers(
    sharded: &ShardedGraph,
    invalidated: &[usize],
    threads: usize,
    out: &mut Vec<(usize, TransferNode)>,
) {
    out.clear();
    let extract_one = |slot: usize, buffer: &mut Vec<(usize, TransferNode)>| {
        let node = sharded
            .node_global(slot)
            .expect("invalidated slot was alive");
        for path in node.paths() {
            if let Some((pred, succ)) = TransferNode::extract_pair(node, path) {
                buffer.push((slot, pred));
                buffer.push((slot, succ));
            }
        }
    };
    let threads = threads.max(1).min(invalidated.len().max(1));
    if threads <= 1 || invalidated.len() < 32 {
        for &slot in invalidated {
            extract_one(slot, out);
        }
        return;
    }
    let chunk = invalidated.len().div_ceil(threads);
    let mut buffers: Vec<Vec<(usize, TransferNode)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for slot_chunk in invalidated.chunks(chunk) {
            let extract_one = &extract_one;
            handles.push(scope.spawn(move || {
                let mut buffer = Vec::with_capacity(slot_chunk.len() * 2);
                for &slot in slot_chunk {
                    extract_one(slot, &mut buffer);
                }
                buffer
            }));
        }
        for handle in handles {
            buffers.push(handle.join().expect("extraction worker panicked"));
        }
    });
    for mut buffer in buffers {
        out.append(&mut buffer);
    }
}

/// Stage P3 proper: each destination shard applies its inbox in mailbox order
/// against its own subgraph (shard-parallel when threads allow), scattering the
/// resolved global destinations and matched flags back into canonical-stream
/// positions.
fn apply_mailbox(
    sharded: &mut ShardedGraph,
    mailbox: &ShardMailbox,
    transfers: &[(usize, TransferNode)],
    threads: usize,
    resolved: &mut [Option<usize>],
    matched: &mut [bool],
) {
    let apply_inbox = |shard_graph: &mut PakGraph, globals: &[u32], inbox: &[u32]| {
        let mut out: Vec<(Option<usize>, bool)> = Vec::with_capacity(inbox.len());
        for &index in inbox {
            let transfer = &transfers[index as usize].1;
            match shard_graph.index_of(&transfer.destination) {
                Some(local) => {
                    let node = shard_graph.node_mut(local).expect("destination is alive");
                    let did_match = apply_transfer(node, transfer);
                    out.push((Some(globals[local] as usize), did_match));
                }
                None => out.push((None, false)),
            }
        }
        out
    };

    let scatter = |inbox: &[u32],
                   out: Vec<(Option<usize>, bool)>,
                   resolved: &mut [Option<usize>],
                   matched: &mut [bool]| {
        for (&index, (dest, did_match)) in inbox.iter().zip(out) {
            resolved[index as usize] = dest;
            matched[index as usize] = did_match;
        }
    };

    if threads <= 1 || sharded.shards.len() == 1 {
        for (shard, shard_graph) in sharded.shards.iter_mut().enumerate() {
            let inbox = mailbox.inbox(shard);
            if inbox.is_empty() {
                continue;
            }
            let out = apply_inbox(shard_graph, &sharded.global_slots[shard], inbox);
            scatter(inbox, out, resolved, matched);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((shard, shard_graph), globals) in sharded
            .shards
            .iter_mut()
            .enumerate()
            .zip(&sharded.global_slots)
        {
            let inbox = mailbox.inbox(shard);
            if inbox.is_empty() {
                continue;
            }
            let apply_inbox = &apply_inbox;
            handles.push((
                inbox,
                scope.spawn(move || apply_inbox(shard_graph, globals, inbox)),
            ));
        }
        for (inbox, handle) in handles {
            let out = handle.join().expect("shard P3 worker panicked");
            scatter(inbox, out, resolved, matched);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::compact;
    use crate::kmer_count::{count_kmers, KmerCounterConfig};
    use crate::test_util::reads_for;
    use crate::walk::generate_contigs;

    fn counted_for(k: usize) -> Vec<CountedKmer> {
        let reads = reads_for(4_000, 15.0, 0x5A4D);
        count_kmers(
            &reads,
            KmerCounterConfig {
                k,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap()
        .0
    }

    fn cfg(threads: usize) -> PakmanConfig {
        PakmanConfig {
            k: 17,
            min_kmer_count: 1,
            compaction_node_threshold: 10,
            threads,
            record_trace: true,
            ..PakmanConfig::default()
        }
    }

    #[test]
    fn sharded_construction_matches_single_graph_node_for_node() {
        let counted = counted_for(17);
        let reference = PakGraph::from_counted_kmers(&counted, 17, 1);
        for shards in [1usize, 2, 7, 32] {
            let sharded = ShardedGraph::from_counted_kmers(&counted, 17, shards, 4);
            assert_eq!(sharded.global_slot_count(), reference.slot_count());
            assert_eq!(sharded.alive_count(), reference.alive_count());
            // Ownership is respected and the global mapping inverts correctly.
            for shard in 0..sharded.shard_count() {
                for (_, node) in sharded.shard(shard).iter_alive() {
                    assert_eq!(node.owner_shard(shards), shard);
                }
            }
            // The stitched global graph equals the reference slot for slot.
            let global = sharded.into_global_graph();
            for slot in 0..reference.slot_count() {
                assert_eq!(global.node(slot), reference.node(slot), "shards = {shards}");
            }
        }
    }

    #[test]
    fn sharded_compaction_is_bit_identical_to_single_graph() {
        let counted = counted_for(17);
        let mut reference_graph = PakGraph::from_counted_kmers(&counted, 17, 1);
        let reference = compact(&mut reference_graph, &cfg(1));

        for shards in [1usize, 2, 7, 32] {
            for threads in [1usize, 4] {
                let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, shards, threads);
                let (outcome, telemetry) = compact_sharded(&mut sharded, &cfg(threads));
                let what = format!("shards = {shards}, threads = {threads}");
                assert_eq!(outcome.stats, reference.stats, "stats diverged: {what}");
                assert_eq!(outcome.trace, reference.trace, "trace diverged: {what}");
                assert_eq!(telemetry.shard_count, shards);
                assert_eq!(
                    telemetry.initial_alive_per_shard.iter().sum::<usize>(),
                    reference.stats.initial_nodes
                );
                assert_eq!(
                    telemetry.final_alive_per_shard.iter().sum::<usize>(),
                    reference.stats.final_nodes
                );
                // Every transfer went through the mailbox.
                assert_eq!(telemetry.total_transfers(), reference.stats.total_transfers);
                let global = sharded.into_global_graph();
                for slot in 0..reference_graph.slot_count() {
                    assert_eq!(
                        global.node(slot),
                        reference_graph.node(slot),
                        "graph diverged at slot {slot}: {what}"
                    );
                }
                let contigs = generate_contigs(&global, 0);
                let reference_contigs = generate_contigs(&reference_graph, 0);
                assert_eq!(contigs, reference_contigs, "contigs diverged: {what}");
            }
        }
    }

    #[test]
    fn full_scan_mode_matches_too() {
        let counted = counted_for(17);
        let full_cfg = PakmanConfig {
            compaction_mode: CompactionMode::FullScan,
            ..cfg(2)
        };
        let mut reference_graph = PakGraph::from_counted_kmers(&counted, 17, 1);
        let reference = compact(&mut reference_graph, &full_cfg);
        let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, 5, 2);
        let (outcome, _) = compact_sharded(&mut sharded, &full_cfg);
        assert_eq!(outcome.stats, reference.stats);
        assert_eq!(outcome.trace, reference.trace);
        // A full scan checks every alive node on every iteration.
        for it in &outcome.profile.iterations {
            assert_eq!(it.checked_nodes, it.alive_nodes);
        }
    }

    #[test]
    fn cross_shard_traffic_appears_once_sharded() {
        let counted = counted_for(17);
        let mut sharded = ShardedGraph::from_counted_kmers(&counted, 17, 8, 2);
        let (_, telemetry) = compact_sharded(&mut sharded, &cfg(2));
        assert!(telemetry.total_mailbox_bytes() > 0);
        // With 8 hash-assigned shards most destinations live elsewhere (≈ 7/8).
        assert!(
            telemetry.cross_shard_fraction() > 0.5,
            "cross fraction = {}",
            telemetry.cross_shard_fraction()
        );
        // The route matrix is conserved against the per-iteration ledger.
        let matrix_total: u64 = telemetry.route_bytes.iter().sum();
        assert_eq!(matrix_total, telemetry.total_mailbox_bytes());
        assert!(telemetry.load_imbalance() >= 1.0);

        // One shard: everything stays local.
        let mut single = ShardedGraph::from_counted_kmers(&counted, 17, 1, 2);
        let (_, telemetry) = compact_sharded(&mut single, &cfg(2));
        assert_eq!(telemetry.total_cross_shard_bytes(), 0);
        assert_eq!(telemetry.cross_shard_fraction(), 0.0);
    }

    #[test]
    fn more_shards_than_nodes_warns_but_works() {
        // A tiny read set: far fewer (k-1)-mers than shards, so some shards own
        // zero k-mers. The build must warn (not panic) and stay bit-identical.
        let reads = crate::test_util::reads_from(&["ACGTACCTGATCAGT", "ACGTACCTGATCAGT"]);
        let (counted, _) = count_kmers(
            &reads,
            KmerCounterConfig {
                k: 7,
                min_count: 1,
                threads: 1,
            },
        )
        .unwrap();
        let reference = PakGraph::from_counted_kmers(&counted, 7, 1);
        let sharded = ShardedGraph::from_counted_kmers(&counted, 7, 64, 2);
        assert!(sharded.per_shard_alive().contains(&0));
        assert_eq!(sharded.alive_count(), reference.alive_count());
        let mut sharded = sharded;
        let mut reference = reference;
        let config = PakmanConfig {
            k: 7,
            min_kmer_count: 1,
            compaction_node_threshold: 0,
            threads: 2,
            record_trace: true,
            ..PakmanConfig::default()
        };
        let single_outcome = compact(&mut reference, &config);
        let (outcome, telemetry) = compact_sharded(&mut sharded, &config);
        assert_eq!(outcome.stats, single_outcome.stats);
        assert_eq!(outcome.trace, single_outcome.trace);
        assert_eq!(telemetry.shard_count, 64);
    }

    #[test]
    fn global_lookup_roundtrips() {
        let counted = counted_for(15);
        let sharded = ShardedGraph::from_counted_kmers(&counted, 15, 7, 2);
        for slot in 0..sharded.global_slot_count() {
            let node = sharded.node_global(slot).expect("freshly built: all alive");
            assert_eq!(sharded.index_of_global(&node.k1mer()), Some(slot));
            assert!(sharded.contains(&node.k1mer()));
            assert_eq!(
                sharded.shard_of_global(slot),
                node.owner_shard(sharded.shard_count())
            );
        }
    }
}
